//! # cachemap — computation mapping for multi-level storage cache hierarchies
//!
//! A Rust reproduction of *"Computation Mapping for Multi-Level Storage
//! Cache Hierarchies"* (Kandemir, Muralidhara, Karakoy, Son — HPDC 2010):
//! a compiler-directed scheme that assigns the parallel iterations of
//! I/O-intensive loop nests to the client nodes of a parallel storage
//! system so that its multi-level cache hierarchy (client L1 → I/O-node
//! L2 → storage-node L3) is shared *constructively*.
//!
//! This umbrella crate re-exports the workspace members —
//! [`polyhedral`], [`storage`], [`core`], [`workloads`], [`obs`],
//! [`service`], [`aio`], [`par`], and [`util`]. The per-crate one-line
//! tour lives in one place, the *Layout* table of `README.md`; each
//! member's own crate docs cover the details.
//!
//! ## Quickstart
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cachemap::prelude::*;
//!
//! // A toy out-of-core loop nest: for i { A[i] += B[i] } over a
//! // disk-resident pair of arrays.
//! let a = ArrayDecl::new("A", vec![1 << 14], 8);
//! let b = ArrayDecl::new("B", vec![1 << 14], 8);
//! let space = IterationSpace::rectangular(&[1 << 14]);
//! let nest = LoopNest::new(
//!     "axpy",
//!     space,
//!     vec![
//!         ArrayRef::read(1, vec![AffineExpr::var(0)]),
//!         ArrayRef::read(0, vec![AffineExpr::var(0)]),
//!         ArrayRef::write(0, vec![AffineExpr::var(0)]),
//!     ],
//! );
//! let program = Program::new("axpy", vec![a, b], vec![nest]);
//!
//! // Map it onto the Figure 7 platform and simulate.
//! let platform = PlatformConfig::tiny();
//! let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
//! let tree = HierarchyTree::from_config(&platform)?;
//! let mapper = Mapper::paper_defaults();
//! let mapped = mapper.map(&program, &data, &platform, &tree, Version::InterProcessor);
//! let report = Simulator::new(platform)?.run(&mapped)?;
//! assert!(report.l1.accesses() > 0);
//! # Ok(())
//! # }
//! ```

pub use cachemap_aio as aio;
pub use cachemap_core as core;
pub use cachemap_obs as obs;
pub use cachemap_par as par;
pub use cachemap_polyhedral as polyhedral;
pub use cachemap_service as service;
pub use cachemap_storage as storage;
pub use cachemap_util as util;
pub use cachemap_workloads as workloads;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use cachemap_core::cluster::{ClusterParams, Linkage};
    pub use cachemap_core::deps::DepStrategy;
    pub use cachemap_core::schedule::ScheduleParams;
    pub use cachemap_core::{Mapper, MapperConfig, Version};
    pub use cachemap_polyhedral::{
        AccessKind, AffineExpr, ArrayDecl, ArrayRef, DataSpace, IterationSpace, Loop, LoopNest,
        Program,
    };
    pub use cachemap_storage::{
        ClientOp, HierarchyTree, MappedProgram, PlatformConfig, SimReport, Simulator,
    };
    pub use cachemap_workloads::{Application, Scale};
}
