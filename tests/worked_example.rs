//! End-to-end check of the paper's Section 4.4 worked example through the
//! public API: Figure 8's tags and graph, Figure 9's clustering, and
//! Figure 17's final schedule.

use cachemap::core::cluster::{distribute, ClusterParams};
use cachemap::core::graph::SimilarityGraph;
use cachemap::core::schedule::{schedule, ScheduleParams};
use cachemap::core::tags::tag_nest;
use cachemap::prelude::*;

fn figure6() -> (Program, DataSpace) {
    let d: i64 = 4;
    let m = 12 * d;
    let a = ArrayDecl::new("A", vec![m], 8);
    let space = IterationSpace::new(vec![Loop::constant(0, m - 4 * d - 1)]);
    let refs = vec![
        ArrayRef::write(0, vec![AffineExpr::var(0)]),
        ArrayRef::read(0, vec![AffineExpr::var(0).with_mod(d)]),
        ArrayRef::read(0, vec![AffineExpr::var_plus(0, 4 * d)]),
        ArrayRef::read(0, vec![AffineExpr::var_plus(0, 2 * d)]),
    ];
    let program = Program::new(
        "figure6",
        vec![a],
        vec![LoopNest::new("figure6", space, refs)],
    );
    let data = DataSpace::new(&program.arrays, 8 * d as u64);
    (program, data)
}

#[test]
fn figure8_tags() {
    let (program, data) = figure6();
    let tagged = tag_nest(&program, 0, &data);
    let expected = [
        "101010000000",
        "110101000000",
        "101010100000",
        "100101010000",
        "100010101000",
        "100001010100",
        "100000101010",
        "100000010101",
    ];
    assert_eq!(tagged.chunks.len(), 8);
    for (chunk, want) in tagged.chunks.iter().zip(expected) {
        assert_eq!(chunk.tag.to_tag_string(), want);
        assert_eq!(chunk.len(), 4);
    }
}

#[test]
fn figure8_graph_weights() {
    let (program, data) = figure6();
    let tagged = tag_nest(&program, 0, &data);
    let g = SimilarityGraph::build(&tagged.chunks);
    // The ten highlighted edges: weight-3 chains and weight-2 skips in
    // each parity family.
    let expect3 = [(0, 2), (2, 4), (4, 6), (1, 3), (3, 5), (5, 7)];
    let expect2 = [(0, 4), (2, 6), (1, 5), (3, 7)];
    for (i, j) in expect3 {
        assert_eq!(g.weight(i, j), 3, "ω(γ{},γ{})", i + 1, j + 1);
    }
    for (i, j) in expect2 {
        assert_eq!(g.weight(i, j), 2, "ω(γ{},γ{})", i + 1, j + 1);
    }
    // Every cross-parity pair shares only chunk 0.
    for i in (0..8).step_by(2) {
        for j in (1..8).step_by(2) {
            assert_eq!(g.weight(i, j), 1, "cross-family ω(γ{},γ{})", i + 1, j + 1);
        }
    }
}

#[test]
fn figure9_clusters_and_figure17_schedule() {
    let (program, data) = figure6();
    let tagged = tag_nest(&program, 0, &data);
    let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
    let dist = distribute(&tagged.chunks, &tree, &ClusterParams::default());

    // Figure 9's clusters, as sets (client↔cluster pairing is symmetric).
    let sets: Vec<std::collections::BTreeSet<usize>> = dist
        .per_client
        .iter()
        .map(|items| items.iter().map(|i| i.chunk).collect())
        .collect();
    for want in [[0usize, 2], [4, 6], [1, 3], [5, 7]] {
        let want: std::collections::BTreeSet<usize> = want.into_iter().collect();
        assert!(sets.contains(&want), "missing cluster {want:?} in {sets:?}");
    }
    // One parity family per I/O node.
    let io0: std::collections::BTreeSet<usize> = sets[0].union(&sets[1]).copied().collect();
    assert!(io0.iter().all(|c| c % 2 == 0) || io0.iter().all(|c| c % 2 == 1));

    // Figure 17's orders (ascending within each family pair).
    let sched = schedule(&dist, &tagged.chunks, &tree, &ScheduleParams::default());
    let orders: Vec<Vec<usize>> = sched
        .per_client
        .iter()
        .map(|items| items.iter().map(|i| i.chunk).collect())
        .collect();
    for want in [vec![1, 3], vec![5, 7], vec![0, 2], vec![4, 6]] {
        assert!(
            orders.contains(&want),
            "missing order {want:?} in {orders:?}"
        );
    }
}

#[test]
fn mapped_example_simulates_with_better_locality_than_original() {
    let (program, data) = figure6();
    let platform = PlatformConfig::tiny();
    let tree = HierarchyTree::from_config(&platform).unwrap();
    let sim = Simulator::new(platform.clone()).unwrap();
    let mapper = Mapper::paper_defaults();

    let orig = sim
        .run(&mapper.map(&program, &data, &platform, &tree, Version::Original))
        .unwrap();
    let inter = sim
        .run(&mapper.map(
            &program,
            &data,
            &platform,
            &tree,
            Version::InterProcessorScheduled,
        ))
        .unwrap();
    assert_eq!(orig.l1.accesses(), inter.l1.accesses());
    // The whole point of the example: hierarchy-aware mapping converts
    // shared-cache interference into reuse.
    assert!(
        inter.io_latency_ns <= orig.io_latency_ns,
        "inter {} vs orig {}",
        inter.io_latency_ns,
        orig.io_latency_ns
    );
}
