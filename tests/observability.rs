//! Cross-crate observability properties: the engine's per-bucket metric
//! series must sum exactly to the aggregate [`SimReport`] counters (the
//! recorder calls are co-located with the stats updates, and these tests
//! keep them that way), and carrying a *disabled* recorder must leave
//! the simulation byte-for-byte identical — with and without faults.

use cachemap::obs::{
    validate_artifact, ArtifactMeta, Level, ObsArtifact, Recorder, SCHEMA_VERSION,
};
use cachemap::prelude::*;
use cachemap::storage::{DegradeLevel, FaultEvent, FaultPlan, TransientFaults};
use cachemap::util::check::{cases, Gen};
use cachemap::util::ToJson;

/// A random small affine nest (same shape as the `properties.rs`
/// generator, kept independent so the two files stay self-contained).
fn arb_program(g: &mut Gen) -> Program {
    let n0 = g.i64_in(2, 10);
    let n1 = g.i64_in(1, 8);
    let nreads = g.usize_in(1, 3);
    let off = g.i64_in(0, 4);
    let elems = (n0 + n1 + off + 8) * (n0 + n1 + off + 8);
    let arrays = vec![ArrayDecl::new("A", vec![elems], 8)];
    let pitch = n1 + off + 4;
    let space = IterationSpace::rectangular(&[n0, n1]);
    let mut refs = Vec::new();
    for r in 0..nreads {
        refs.push(ArrayRef::read(
            0,
            vec![AffineExpr::new(vec![pitch, 1], off + r as i64)],
        ));
    }
    refs.push(ArrayRef::write(0, vec![AffineExpr::new(vec![pitch, 1], 0)]));
    let nest = LoopNest::new("rand", space, refs).with_compute_us(1.0);
    Program::new("rand", arrays, vec![nest])
}

/// A random fault plan covering every degraded-mode code path the
/// recorder instruments: transient retries, an I/O-node crash (failover
/// events), and a cache shrink (degrade-time evictions).
fn arb_plan(g: &mut Gen, horizon: u64) -> FaultPlan {
    let mut plan = FaultPlan::new().with_transient(TransientFaults {
        rate_ppm: g.u64_in(0, 150_000) as u32,
        seed: g.u64_in(0, u64::MAX - 1),
    });
    let mut crashed_io = None;
    if g.bool() {
        let io = g.usize_in(0, 1);
        crashed_io = Some(io);
        plan = plan.with_event(FaultEvent::IoNodeCrash {
            io,
            at_ns: g.u64_in(1, horizon),
        });
    }
    if g.bool() {
        let level = g.choose(&[
            DegradeLevel::Client,
            DegradeLevel::Io,
            DegradeLevel::Storage,
        ]);
        // Degrading a crashed node's cache is rejected by plan
        // validation (`CrashDegradeOverlap`), so aim the I/O-level
        // degrade at the surviving sibling.
        let node = if level == DegradeLevel::Io && crashed_io == Some(0) {
            1
        } else {
            0
        };
        plan = plan.with_event(FaultEvent::CacheDegrade {
            level,
            node,
            at_ns: g.u64_in(1, horizon),
            capacity_chunks: 1,
        });
    }
    plan
}

fn setup(g: &mut Gen) -> (Program, PlatformConfig, MappedProgram, u64) {
    let program = arb_program(g);
    let mut platform = PlatformConfig::tiny();
    platform.chunk_bytes = g.choose(&[64u64, 128]);
    let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(&platform).unwrap();
    let mapper = Mapper::paper_defaults();
    let mapped = mapper.map(&program, &data, &platform, &tree, Version::InterProcessor);
    let horizon = Simulator::new(platform.clone())
        .unwrap()
        .run(&mapped)
        .unwrap()
        .exec_time_ns
        .max(2);
    (program, platform, mapped, horizon)
}

#[test]
fn bucket_series_sums_to_aggregate_report_under_faults() {
    cases(0x0B5_0001, 48, |g| {
        let (_program, platform, mapped, horizon) = setup(g);
        let plan = arb_plan(g, horizon);
        let sim = Simulator::new(platform.clone())
            .unwrap()
            .with_fault_plan(plan)
            .unwrap();
        let mut rec = Recorder::enabled(g.u64_in(1, horizon));
        let rep = sim.run_observed(&mapped, &mut rec).unwrap();
        let obs = rec.finish().expect("enabled recorder yields a snapshot");

        for (level, hm, tally) in [
            (Level::L1, &rep.l1, &rep.l1_evictions),
            (Level::L2, &rep.l2, &rep.l2_evictions),
            (Level::L3, &rep.l3, &rep.l3_evictions),
        ] {
            let total = obs.level_totals(level);
            assert_eq!(total.hits, hm.hits, "{level:?} hits");
            assert_eq!(total.misses, hm.misses, "{level:?} misses");
            assert_eq!(total.evictions, tally.evictions, "{level:?} evictions");
            assert_eq!(total.writebacks, tally.writebacks, "{level:?} writebacks");
        }

        // Every client access issues exactly one L1 access.
        let accesses: u64 = (0..platform.num_clients)
            .map(|c| obs.client_totals(c).accesses)
            .sum();
        assert_eq!(accesses, rep.l1.hits + rep.l1.misses, "client accesses");

        // Per-client I/O time buckets sum to the report's I/O tally.
        for c in 0..platform.num_clients {
            assert_eq!(
                obs.client_totals(c).io_ns,
                rep.per_client_io_ns[c],
                "client {c} io_ns"
            );
        }
    });
}

#[test]
fn disabled_recorder_is_bit_identical_under_faults() {
    cases(0x0B5_0002, 48, |g| {
        let (_program, platform, mapped, horizon) = setup(g);
        let plan = arb_plan(g, horizon);
        let sim = Simulator::new(platform.clone())
            .unwrap()
            .with_fault_plan(plan)
            .unwrap();
        let plain = sim.run(&mapped).unwrap().to_json().to_string_compact();
        let mut rec = Recorder::disabled();
        let observed = sim
            .run_observed(&mapped, &mut rec)
            .unwrap()
            .to_json()
            .to_string_compact();
        assert_eq!(
            plain, observed,
            "a disabled recorder must not disturb the run"
        );
        assert!(rec.finish().is_none(), "disabled recorder records nothing");
    });
}

#[test]
fn recorded_runs_export_schema_valid_prometheus_ready_artifacts() {
    cases(0x0B5_0003, 16, |g| {
        let (_program, platform, mapped, horizon) = setup(g);
        let plan = arb_plan(g, horizon);
        let sim = Simulator::new(platform.clone())
            .unwrap()
            .with_fault_plan(plan)
            .unwrap();
        let mut rec = Recorder::enabled(g.u64_in(1, horizon));
        sim.run_observed(&mapped, &mut rec).unwrap();
        let artifact = ObsArtifact {
            meta: ArtifactMeta {
                schema_version: SCHEMA_VERSION,
                label: "prop/inter".to_string(),
                clients: platform.num_clients,
                io_nodes: platform.num_io_nodes,
                storage_nodes: platform.num_storage_nodes,
                chunk_bytes: platform.chunk_bytes,
                policies: [
                    platform.policies[0].label().to_string(),
                    platform.policies[1].label().to_string(),
                    platform.policies[2].label().to_string(),
                ],
            },
            mapper: None,
            engine: rec.finish(),
        };

        let json_text = artifact.to_json().to_string_pretty();
        let json = cachemap::util::json::parse(&json_text).unwrap();
        validate_artifact(&json).expect("exported artifact matches the schema");
        let back = ObsArtifact::parse(&json_text).expect("round-trip");
        assert_eq!(
            back.to_json().to_string_compact(),
            artifact.to_json().to_string_compact()
        );

        let prom = artifact.to_prometheus();
        for needle in [
            "# TYPE cachemap_cache_hits_total counter",
            "level=\"l1\"",
            "node=\"0\"",
            "client=\"0\"",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
    });
}
