//! Cross-crate property-based tests: random small loop nests and
//! platforms, checking the mapper's end-to-end invariants.

use cachemap::prelude::*;
use proptest::prelude::*;

/// A random 1- or 2-deep affine nest over one or two arrays, kept small
/// enough that hundreds of cases run in seconds.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2i64..12,          // extent of loop 0
        1i64..10,          // extent of loop 1
        1usize..4,         // number of read refs
        0i64..5,           // offset spice
        proptest::bool::ANY, // second array?
    )
        .prop_map(|(n0, n1, nreads, off, two_arrays)| {
            let elems = (n0 + n1 + off + 8) * (n0 + n1 + off + 8);
            let mut arrays = vec![ArrayDecl::new("A", vec![elems], 8)];
            if two_arrays {
                arrays.push(ArrayDecl::new("B", vec![elems], 8));
            }
            let pitch = n1 + off + 4;
            let space = IterationSpace::rectangular(&[n0, n1]);
            let mut refs = Vec::new();
            for r in 0..nreads {
                let target = if two_arrays && r % 2 == 1 { 1 } else { 0 };
                refs.push(ArrayRef::read(
                    target,
                    vec![AffineExpr::new(vec![pitch, 1], off + r as i64)],
                ));
            }
            refs.push(ArrayRef::write(
                0,
                vec![AffineExpr::new(vec![pitch, 1], 0)],
            ));
            let nest = LoopNest::new("rand", space, refs).with_compute_us(1.0);
            Program::new("rand", arrays, vec![nest])
        })
}

fn tiny_platform(chunk_bytes: u64) -> PlatformConfig {
    let mut p = PlatformConfig::tiny();
    p.chunk_bytes = chunk_bytes;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_versions_issue_identical_access_multisets(
        program in arb_program(),
        chunk_bytes in prop_oneof![Just(64u64), Just(128), Just(256)],
    ) {
        let platform = tiny_platform(chunk_bytes);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform);
        let mapper = Mapper::paper_defaults();

        let mut multisets: Vec<Vec<(usize, bool)>> = Vec::new();
        for version in Version::ALL {
            let mapped = mapper.map(&program, &data, &platform, &tree, version);
            let mut all: Vec<(usize, bool)> = mapped
                .per_client
                .iter()
                .flatten()
                .filter_map(|op| match op {
                    ClientOp::Access { chunk, write } => Some((*chunk, *write)),
                    _ => None,
                })
                .collect();
            all.sort_unstable();
            multisets.push(all);
        }
        for w in multisets.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }

    #[test]
    fn inter_mapping_partitions_every_iteration(program in arb_program()) {
        let platform = tiny_platform(64);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform);
        let mapper = Mapper::paper_defaults();
        let mapped = mapper.map(&program, &data, &platform, &tree, Version::InterProcessor);
        let per_iter_accesses = program.nests[0].refs.len() as u64;
        prop_assert_eq!(
            mapped.total_accesses(),
            program.total_iterations() * per_iter_accesses
        );
    }

    #[test]
    fn simulation_statistics_are_self_consistent(program in arb_program()) {
        let platform = tiny_platform(64);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform);
        let mapper = Mapper::paper_defaults();
        let mapped = mapper.map(&program, &data, &platform, &tree, Version::InterProcessorScheduled);
        let rep = Simulator::new(platform.clone()).run(&mapped);

        // Hierarchy access funnel.
        prop_assert_eq!(rep.l1.accesses(), mapped.total_accesses());
        prop_assert_eq!(rep.l2.accesses(), rep.l1.misses);
        prop_assert_eq!(rep.l3.accesses(), rep.l2.misses);
        prop_assert_eq!(rep.disk_reads, rep.l3.misses);
        // Times are sane.
        let max_finish = *rep.per_client_finish_ns.iter().max().unwrap();
        prop_assert_eq!(rep.exec_time_ns, max_finish);
        let sum_io: u64 = rep.per_client_io_ns.iter().sum();
        prop_assert_eq!(rep.io_latency_ns, sum_io);
        for (f, io) in rep.per_client_finish_ns.iter().zip(&rep.per_client_io_ns) {
            prop_assert!(f >= io);
        }
    }

    #[test]
    fn balance_threshold_is_respected_up_to_granularity(program in arb_program()) {
        let platform = tiny_platform(64);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform);
        let tagged = cachemap::core::tags::tag_nest(&program, 0, &data);
        let dist = cachemap::core::cluster::distribute(
            &tagged.chunks,
            &tree,
            &ClusterParams::default(),
        );
        prop_assert_eq!(dist.total_iterations(), program.total_iterations());
        // With splitting available, no client should exceed the mean by
        // more than the compounded threshold plus one chunk of slack.
        let per = dist.iterations_per_client();
        let mean = per.iter().sum::<u64>() as f64 / per.len() as f64;
        let largest_chunk = tagged.chunks.iter().map(|c| c.len()).max().unwrap_or(0) as f64;
        let slack = mean * 0.45 + largest_chunk + 1.0;
        for &p in &per {
            prop_assert!(
                (p as f64) <= mean + slack,
                "client load {p} vs mean {mean} (slack {slack})"
            );
        }
    }
}
