//! Cross-crate property-based tests: random small loop nests and
//! platforms, checking the mapper's end-to-end invariants. Driven by the
//! in-repo deterministic harness (`cachemap_util::check`).

use cachemap::prelude::*;
use cachemap::storage::{FaultEvent, FaultPlan, TransientFaults};
use cachemap::util::check::{cases, Gen};
use cachemap::util::ToJson;

/// A random 1- or 2-deep affine nest over one or two arrays, kept small
/// enough that hundreds of cases run in seconds.
fn arb_program(g: &mut Gen) -> Program {
    let n0 = g.i64_in(2, 12);
    let n1 = g.i64_in(1, 10);
    let nreads = g.usize_in(1, 4);
    let off = g.i64_in(0, 5);
    let two_arrays = g.bool();
    let elems = (n0 + n1 + off + 8) * (n0 + n1 + off + 8);
    let mut arrays = vec![ArrayDecl::new("A", vec![elems], 8)];
    if two_arrays {
        arrays.push(ArrayDecl::new("B", vec![elems], 8));
    }
    let pitch = n1 + off + 4;
    let space = IterationSpace::rectangular(&[n0, n1]);
    let mut refs = Vec::new();
    for r in 0..nreads {
        let target = if two_arrays && r % 2 == 1 { 1 } else { 0 };
        refs.push(ArrayRef::read(
            target,
            vec![AffineExpr::new(vec![pitch, 1], off + r as i64)],
        ));
    }
    refs.push(ArrayRef::write(0, vec![AffineExpr::new(vec![pitch, 1], 0)]));
    let nest = LoopNest::new("rand", space, refs).with_compute_us(1.0);
    Program::new("rand", arrays, vec![nest])
}

fn tiny_platform(chunk_bytes: u64) -> PlatformConfig {
    let mut p = PlatformConfig::tiny();
    p.chunk_bytes = chunk_bytes;
    p
}

#[test]
fn all_versions_issue_identical_access_multisets() {
    cases(0xE2E_0001, 64, |g| {
        let program = arb_program(g);
        let chunk_bytes = g.choose(&[64u64, 128, 256]);
        let platform = tiny_platform(chunk_bytes);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let mapper = Mapper::paper_defaults();

        let mut multisets: Vec<Vec<(usize, bool)>> = Vec::new();
        for version in Version::ALL {
            let mapped = mapper.map(&program, &data, &platform, &tree, version);
            let mut all: Vec<(usize, bool)> = mapped
                .per_client
                .iter()
                .flatten()
                .filter_map(|op| match op {
                    ClientOp::Access { chunk, write } => Some((*chunk, *write)),
                    _ => None,
                })
                .collect();
            all.sort_unstable();
            multisets.push(all);
        }
        for w in multisets.windows(2) {
            assert_eq!(&w[0], &w[1]);
        }
    });
}

#[test]
fn inter_mapping_partitions_every_iteration() {
    cases(0xE2E_0002, 64, |g| {
        let program = arb_program(g);
        let platform = tiny_platform(64);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let mapper = Mapper::paper_defaults();
        let mapped = mapper.map(&program, &data, &platform, &tree, Version::InterProcessor);
        let per_iter_accesses = program.nests[0].refs.len() as u64;
        assert_eq!(
            mapped.total_accesses(),
            program.total_iterations() * per_iter_accesses
        );
    });
}

#[test]
fn simulation_statistics_are_self_consistent() {
    cases(0xE2E_0003, 64, |g| {
        let program = arb_program(g);
        let platform = tiny_platform(64);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let mapper = Mapper::paper_defaults();
        let mapped = mapper.map(
            &program,
            &data,
            &platform,
            &tree,
            Version::InterProcessorScheduled,
        );
        let rep = Simulator::new(platform.clone())
            .unwrap()
            .run(&mapped)
            .unwrap();

        // Hierarchy access funnel.
        assert_eq!(rep.l1.accesses(), mapped.total_accesses());
        assert_eq!(rep.l2.accesses(), rep.l1.misses);
        assert_eq!(rep.l3.accesses(), rep.l2.misses);
        assert_eq!(rep.disk_reads, rep.l3.misses);
        // Times are sane.
        let max_finish = *rep.per_client_finish_ns.iter().max().unwrap();
        assert_eq!(rep.exec_time_ns, max_finish);
        let sum_io: u64 = rep.per_client_io_ns.iter().sum();
        assert_eq!(rep.io_latency_ns, sum_io);
        for (f, io) in rep.per_client_finish_ns.iter().zip(&rep.per_client_io_ns) {
            assert!(f >= io);
        }
    });
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    cases(0xE2E_0005, 32, |g| {
        let program = arb_program(g);
        let platform = tiny_platform(64);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let mapper = Mapper::paper_defaults();
        let mapped = mapper.map(&program, &data, &platform, &tree, Version::InterProcessor);

        let base = Simulator::new(platform.clone())
            .unwrap()
            .run(&mapped)
            .unwrap();
        let empty = Simulator::new(platform.clone())
            .unwrap()
            .with_fault_plan(FaultPlan::new())
            .unwrap()
            .run(&mapped)
            .unwrap();
        assert_eq!(
            base.to_json().to_string_compact(),
            empty.to_json().to_string_compact(),
            "an empty fault plan must not perturb the simulation at all"
        );
    });
}

#[test]
fn same_seed_and_fault_plan_reproduce_the_report_byte_for_byte() {
    cases(0xE2E_0006, 32, |g| {
        let program = arb_program(g);
        let platform = tiny_platform(64);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let mapper = Mapper::paper_defaults();
        let mapped = mapper.map(&program, &data, &platform, &tree, Version::InterProcessor);
        let horizon = Simulator::new(platform.clone())
            .unwrap()
            .run(&mapped)
            .unwrap()
            .exec_time_ns
            .max(2);

        // A random plan: seeded transient errors, plus optionally an
        // I/O-node crash and a disk degradation mid-run.
        let mut plan = FaultPlan::new().with_transient(TransientFaults {
            rate_ppm: g.u64_in(0, 200_000) as u32,
            seed: g.u64_in(0, u64::MAX - 1),
        });
        if g.bool() {
            plan = plan.with_event(FaultEvent::IoNodeCrash {
                io: g.usize_in(0, 1),
                at_ns: g.u64_in(1, horizon),
            });
        }
        if g.bool() {
            plan = plan.with_event(FaultEvent::DiskDegrade {
                storage: 0,
                at_ns: g.u64_in(1, horizon),
                latency_factor: g.u64_in(2, 8) as u32,
            });
        }

        let run = |plan: FaultPlan| {
            Simulator::new(platform.clone())
                .unwrap()
                .with_fault_plan(plan)
                .unwrap()
                .run(&mapped)
                .unwrap()
                .to_json()
                .to_string_compact()
        };
        assert_eq!(
            run(plan.clone()),
            run(plan),
            "same seed + same fault plan must replay byte-for-byte"
        );
    });
}

#[test]
fn balance_threshold_is_respected_up_to_granularity() {
    cases(0xE2E_0004, 64, |g| {
        let program = arb_program(g);
        let platform = tiny_platform(64);
        let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let tagged = cachemap::core::tags::tag_nest(&program, 0, &data);
        let dist =
            cachemap::core::cluster::distribute(&tagged.chunks, &tree, &ClusterParams::default());
        assert_eq!(dist.total_iterations(), program.total_iterations());
        // With splitting available, no client should exceed the mean by
        // more than the compounded threshold plus one chunk of slack.
        let per = dist.iterations_per_client();
        let mean = per.iter().sum::<u64>() as f64 / per.len() as f64;
        let largest_chunk = tagged.chunks.iter().map(|c| c.len()).max().unwrap_or(0) as f64;
        let slack = mean * 0.45 + largest_chunk + 1.0;
        for &p in &per {
            assert!(
                (p as f64) <= mean + slack,
                "client load {p} vs mean {mean} (slack {slack})"
            );
        }
    });
}
