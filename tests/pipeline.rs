//! Full-pipeline integration tests over the evaluation suite (test
//! scale): every application × every version maps, lowers, and simulates;
//! all versions execute the same accesses; results are deterministic.

use cachemap::prelude::*;

fn platform() -> PlatformConfig {
    // Smaller caches so the test-scale datasets still exercise capacity
    // misses at every level.
    PlatformConfig::paper_default().with_cache_chunks(8, 16, 32)
}

#[test]
fn every_app_and_version_runs_end_to_end() {
    let platform = platform();
    let tree = HierarchyTree::from_config(&platform).unwrap();
    let sim = Simulator::new(platform.clone()).unwrap();
    let mapper = Mapper::paper_defaults();

    for app in cachemap::workloads::suite(Scale::Test) {
        let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
        let mut access_counts = Vec::new();
        for version in Version::ALL {
            let mapped = mapper.map(&app.program, &data, &platform, &tree, version);
            access_counts.push(mapped.total_accesses());
            let rep = sim.run(&mapped).unwrap();
            assert!(rep.l1.accesses() > 0, "{} {:?}", app.name, version);
            assert!(rep.exec_time_ns > 0, "{} {:?}", app.name, version);
            // L2 sees exactly the L1 misses; L3 exactly the L2 misses.
            assert_eq!(rep.l2.accesses(), rep.l1.misses, "{}", app.name);
            assert_eq!(rep.l3.accesses(), rep.l2.misses, "{}", app.name);
        }
        assert!(
            access_counts.windows(2).all(|w| w[0] == w[1]),
            "{}: versions must issue identical access counts: {access_counts:?}",
            app.name
        );
    }
}

#[test]
fn mapping_and_simulation_are_deterministic() {
    let platform = platform();
    let tree = HierarchyTree::from_config(&platform).unwrap();
    let sim = Simulator::new(platform.clone()).unwrap();
    let mapper = Mapper::paper_defaults();
    let app = cachemap::workloads::by_name("madbench2", Scale::Test).unwrap();
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);

    let m1 = mapper.map(
        &app.program,
        &data,
        &platform,
        &tree,
        Version::InterProcessorScheduled,
    );
    let m2 = mapper.map(
        &app.program,
        &data,
        &platform,
        &tree,
        Version::InterProcessorScheduled,
    );
    assert_eq!(m1, m2, "mapping must be deterministic");

    let r1 = sim.run(&m1).unwrap();
    let r2 = sim.run(&m1).unwrap();
    assert_eq!(r1.per_client_finish_ns, r2.per_client_finish_ns);
    assert_eq!(r1.io_latency_ns, r2.io_latency_ns);
}

#[test]
fn inter_processor_balances_iterations_within_threshold() {
    let platform = platform();
    let tree = HierarchyTree::from_config(&platform).unwrap();
    let mapper = Mapper::paper_defaults();
    for app in cachemap::workloads::suite(Scale::Test) {
        let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
        let mapped = mapper.map(
            &app.program,
            &data,
            &platform,
            &tree,
            Version::InterProcessor,
        );
        let per = mapped.accesses_per_client();
        let total: u64 = per.iter().sum();
        let mean = total as f64 / per.len() as f64;
        let max = *per.iter().max().unwrap() as f64;
        // 10% per level can compound down the three-level descent, plus
        // chunk granularity; anything beyond ~60% of the mean indicates
        // a balancing regression (the bug class we fixed during
        // calibration produced 200-300%).
        assert!(
            max <= mean * 1.6 + 8.0,
            "{}: per-client access imbalance: max {max} vs mean {mean:.1}",
            app.name
        );
    }
}

#[test]
fn multi_nest_apps_execute_nests_in_program_order() {
    // sar has two nests; per client, all range-pass accesses must come
    // before any azimuth-pass access (the mapper appends nest programs).
    let platform = platform();
    let tree = HierarchyTree::from_config(&platform).unwrap();
    let mapper = Mapper::paper_defaults();
    let app = cachemap::workloads::by_name("sar", Scale::Test).unwrap();
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
    let mapped = mapper.map(
        &app.program,
        &data,
        &platform,
        &tree,
        Version::InterProcessor,
    );

    // RAW (array 0) is only touched by the range pass; OUT (array 2)
    // only by azimuth. Track chunk id ranges.
    let raw_hi = data.array_base(0) + data.array_chunks(0);
    let out_lo = data.array_base(2);
    for (c, ops) in mapped.per_client.iter().enumerate() {
        let mut seen_azimuth = false;
        for op in ops {
            if let ClientOp::Access { chunk, .. } = op {
                if *chunk >= out_lo {
                    seen_azimuth = true;
                }
                if *chunk < raw_hi {
                    assert!(
                        !seen_azimuth,
                        "client {c}: range access after azimuth began"
                    );
                }
            }
        }
    }
}

#[test]
fn scheduled_version_keeps_the_distribution() {
    let platform = platform();
    let tree = HierarchyTree::from_config(&platform).unwrap();
    let mapper = Mapper::paper_defaults();
    let app = cachemap::workloads::by_name("hf", Scale::Test).unwrap();
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);

    let inter = mapper.map(
        &app.program,
        &data,
        &platform,
        &tree,
        Version::InterProcessor,
    );
    let sched = mapper.map(
        &app.program,
        &data,
        &platform,
        &tree,
        Version::InterProcessorScheduled,
    );
    // Same per-client access *multisets* (order may differ).
    for c in 0..platform.num_clients {
        let collect = |mp: &MappedProgram| {
            let mut v: Vec<(usize, bool)> = mp.per_client[c]
                .iter()
                .filter_map(|op| match op {
                    ClientOp::Access { chunk, write } => Some((*chunk, *write)),
                    _ => None,
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(collect(&inter), collect(&sched), "client {c}");
    }
}
