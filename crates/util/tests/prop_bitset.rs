//! Property tests for the tag bitset and count-vector algebra.

use cachemap_util::{BitSet, CountVec};
use proptest::prelude::*;

fn arb_bits(len: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..len, 0..len)
}

proptest! {
    #[test]
    fn count_ones_matches_set_semantics(bits in arb_bits(96)) {
        let set = BitSet::from_bits(96, bits.iter().copied());
        let unique: std::collections::BTreeSet<usize> = bits.into_iter().collect();
        prop_assert_eq!(set.count_ones() as usize, unique.len());
        prop_assert_eq!(set.iter_ones().collect::<Vec<_>>(),
                        unique.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn and_count_is_intersection_size(a in arb_bits(80), b in arb_bits(80)) {
        let sa = BitSet::from_bits(80, a.iter().copied());
        let sb = BitSet::from_bits(80, b.iter().copied());
        let ia: std::collections::BTreeSet<usize> = a.into_iter().collect();
        let ib: std::collections::BTreeSet<usize> = b.into_iter().collect();
        prop_assert_eq!(sa.and_count(&sb) as usize, ia.intersection(&ib).count());
        prop_assert_eq!(sa.and_count(&sb), sb.and_count(&sa));
        prop_assert_eq!(sa.intersects(&sb), ia.intersection(&ib).next().is_some());
    }

    #[test]
    fn hamming_is_symmetric_difference(a in arb_bits(70), b in arb_bits(70)) {
        let sa = BitSet::from_bits(70, a.iter().copied());
        let sb = BitSet::from_bits(70, b.iter().copied());
        let ia: std::collections::BTreeSet<usize> = a.into_iter().collect();
        let ib: std::collections::BTreeSet<usize> = b.into_iter().collect();
        prop_assert_eq!(sa.hamming(&sb) as usize, ia.symmetric_difference(&ib).count());
    }

    #[test]
    fn tag_string_roundtrip(bits in arb_bits(64)) {
        let set = BitSet::from_bits(64, bits);
        let back = BitSet::from_tag_str(&set.to_tag_string());
        prop_assert_eq!(set, back);
    }

    #[test]
    fn countvec_add_then_sub_is_identity(
        tags in proptest::collection::vec(arb_bits(40), 1..8)
    ) {
        let sets: Vec<BitSet> = tags.iter()
            .map(|t| BitSet::from_bits(40, t.iter().copied()))
            .collect();
        let mut cv = CountVec::new(40);
        for s in &sets {
            cv.add_bitset(s);
        }
        prop_assert_eq!(cv.total(),
            sets.iter().map(|s| s.count_ones() as u64).sum::<u64>());
        for s in &sets {
            cv.sub_bitset(s);
        }
        prop_assert!(cv.is_zero());
    }

    #[test]
    fn dot_is_bilinear_over_union(a in arb_bits(48), b in arb_bits(48), c in arb_bits(48)) {
        // dot(A+B, C) = dot(A, C) + dot(B, C) for count vectors.
        let (sa, sb, sc) = (
            BitSet::from_bits(48, a.iter().copied()),
            BitSet::from_bits(48, b.iter().copied()),
            BitSet::from_bits(48, c.iter().copied()),
        );
        let mut ab = CountVec::new(48);
        ab.add_bitset(&sa);
        ab.add_bitset(&sb);
        let cvc = CountVec::from_bitset(&sc);
        let lhs = ab.dot(&cvc);
        let rhs = CountVec::from_bitset(&sa).dot(&cvc) + CountVec::from_bitset(&sb).dot(&cvc);
        prop_assert_eq!(lhs, rhs);
    }
}
