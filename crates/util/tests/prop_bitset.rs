//! Property tests for the tag bitset and count-vector algebra, driven by
//! the in-repo deterministic harness (`cachemap_util::check`).

use cachemap_util::check::{cases, Gen};
use cachemap_util::{BitSet, CountVec};

fn arb_bits(g: &mut Gen, len: usize) -> Vec<usize> {
    g.vec_usize(0..len, 0..len)
}

#[test]
fn count_ones_matches_set_semantics() {
    cases(0xB175_0001, 128, |g| {
        let bits = arb_bits(g, 96);
        let set = BitSet::from_bits(96, bits.iter().copied());
        let unique: std::collections::BTreeSet<usize> = bits.into_iter().collect();
        assert_eq!(set.count_ones() as usize, unique.len());
        assert_eq!(
            set.iter_ones().collect::<Vec<_>>(),
            unique.into_iter().collect::<Vec<_>>()
        );
    });
}

#[test]
fn and_count_is_intersection_size() {
    cases(0xB175_0002, 128, |g| {
        let a = arb_bits(g, 80);
        let b = arb_bits(g, 80);
        let sa = BitSet::from_bits(80, a.iter().copied());
        let sb = BitSet::from_bits(80, b.iter().copied());
        let ia: std::collections::BTreeSet<usize> = a.into_iter().collect();
        let ib: std::collections::BTreeSet<usize> = b.into_iter().collect();
        assert_eq!(sa.and_count(&sb) as usize, ia.intersection(&ib).count());
        assert_eq!(sa.and_count(&sb), sb.and_count(&sa));
        assert_eq!(sa.intersects(&sb), ia.intersection(&ib).next().is_some());
    });
}

#[test]
fn hamming_is_symmetric_difference() {
    cases(0xB175_0003, 128, |g| {
        let a = arb_bits(g, 70);
        let b = arb_bits(g, 70);
        let sa = BitSet::from_bits(70, a.iter().copied());
        let sb = BitSet::from_bits(70, b.iter().copied());
        let ia: std::collections::BTreeSet<usize> = a.into_iter().collect();
        let ib: std::collections::BTreeSet<usize> = b.into_iter().collect();
        assert_eq!(
            sa.hamming(&sb) as usize,
            ia.symmetric_difference(&ib).count()
        );
    });
}

#[test]
fn tag_string_roundtrip() {
    cases(0xB175_0004, 128, |g| {
        let bits = arb_bits(g, 64);
        let set = BitSet::from_bits(64, bits);
        let back = BitSet::from_tag_str(&set.to_tag_string());
        assert_eq!(set, back);
    });
}

#[test]
fn countvec_add_then_sub_is_identity() {
    cases(0xB175_0005, 128, |g| {
        let ntags = g.usize_in(1, 8);
        let sets: Vec<BitSet> = (0..ntags)
            .map(|_| BitSet::from_bits(40, arb_bits(g, 40)))
            .collect();
        let mut cv = CountVec::new(40);
        for s in &sets {
            cv.add_bitset(s);
        }
        assert_eq!(
            cv.total(),
            sets.iter().map(|s| s.count_ones() as u64).sum::<u64>()
        );
        for s in &sets {
            cv.sub_bitset(s);
        }
        assert!(cv.is_zero());
    });
}

#[test]
fn dot_is_bilinear_over_union() {
    cases(0xB175_0006, 128, |g| {
        // dot(A+B, C) = dot(A, C) + dot(B, C) for count vectors.
        let (sa, sb, sc) = (
            BitSet::from_bits(48, arb_bits(g, 48)),
            BitSet::from_bits(48, arb_bits(g, 48)),
            BitSet::from_bits(48, arb_bits(g, 48)),
        );
        let mut ab = CountVec::new(48);
        ab.add_bitset(&sa);
        ab.add_bitset(&sb);
        let cvc = CountVec::from_bitset(&sc);
        let lhs = ab.dot(&cvc);
        let rhs = CountVec::from_bitset(&sa).dot(&cvc) + CountVec::from_bitset(&sb).dot(&cvc);
        assert_eq!(lhs, rhs);
    });
}
