//! A consistent-hash ring with virtual nodes.
//!
//! Routes a 64-bit key (the service hashes its 128-bit content
//! fingerprint down) to one of N replicas. Each replica owns
//! `vnodes` points on the ring, placed by FNV-1a hashing of the pair
//! `(replica, vnode)` — fully deterministic from the configuration, so
//! two fleets built with the same `(replicas, vnodes)` route every key
//! identically. A key maps to the replica owning the first point at or
//! clockwise after the key's own hash; [`HashRing::successors`] walks
//! onward from there, yielding each distinct replica once, which is the
//! failover order when the primary is down or its breaker is open.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice. Public because harnesses reuse it for
/// cheap deterministic digests (e.g. the router-storm reproducibility
/// gate), keeping the workspace dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A consistent-hash ring over `replicas` backends.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, replica)` sorted by point, then replica for ties.
    points: Vec<(u64, usize)>,
    replicas: usize,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual nodes per replica.
    ///
    /// # Panics
    /// When `replicas` or `vnodes` is zero — an empty ring cannot route.
    pub fn new(replicas: usize, vnodes: usize) -> HashRing {
        assert!(replicas > 0, "ring needs at least one replica");
        assert!(vnodes > 0, "ring needs at least one vnode per replica");
        let mut points = Vec::with_capacity(replicas * vnodes);
        for r in 0..replicas {
            for v in 0..vnodes {
                let mut bytes = [0u8; 16];
                bytes[..8].copy_from_slice(&(r as u64).to_le_bytes());
                bytes[8..].copy_from_slice(&(v as u64).to_le_bytes());
                points.push((fnv1a(&bytes), r));
            }
        }
        points.sort_unstable();
        HashRing { points, replicas }
    }

    /// Hashes a 128-bit content fingerprint down to a ring key.
    pub fn key_of(fingerprint: u128) -> u64 {
        fnv1a(&fingerprint.to_le_bytes())
    }

    /// Number of replicas on the ring.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Index of the first ring point at or after `key` (wrapping).
    fn start(&self, key: u64) -> usize {
        match self.points.binary_search(&(key, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The replica owning `key`.
    pub fn primary(&self, key: u64) -> usize {
        self.points[self.start(key)].1
    }

    /// Every replica in ring-walk order from `key`, each exactly once:
    /// the primary first, then failover successors.
    pub fn successors(&self, key: u64) -> Vec<usize> {
        let mut seen = vec![false; self.replicas];
        let mut order = Vec::with_capacity(self.replicas);
        let start = self.start(key);
        for off in 0..self.points.len() {
            let (_, r) = self.points[(start + off) % self.points.len()];
            if !seen[r] {
                seen[r] = true;
                order.push(r);
                if order.len() == self.replicas {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;

    #[test]
    fn identical_configs_route_identically() {
        let a = HashRing::new(5, 64);
        let b = HashRing::new(5, 64);
        for k in 0..1_000u64 {
            let key = HashRing::key_of(k as u128 * 0x1234_5678_9abc_def1);
            assert_eq!(a.primary(key), b.primary(key));
            assert_eq!(a.successors(key), b.successors(key));
        }
    }

    #[test]
    fn successors_enumerate_every_replica_once() {
        check::cases(0x21A6, 50, |g| {
            let n = g.usize_in(1, 9);
            let ring = HashRing::new(n, 16);
            let key = g.u64_in(0, u64::MAX - 1);
            let order = ring.successors(key);
            assert_eq!(order.len(), n);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "duplicate replica in {order:?}");
            assert_eq!(order[0], ring.primary(key));
        });
    }

    #[test]
    fn vnodes_spread_load_across_replicas() {
        let ring = HashRing::new(3, 64);
        let mut counts = [0usize; 3];
        for k in 0..30_000u64 {
            counts[ring.primary(HashRing::key_of(k as u128))] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            // With 64 vnodes each replica should land within a loose
            // band of the fair share (10k): no replica starved or
            // dominant.
            assert!(
                (4_000..=18_000).contains(&c),
                "replica {r} got {c} of 30000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn losing_a_replica_only_moves_its_own_keys() {
        // Consistent-hashing property: a key whose primary survives
        // keeps that primary; keys of a dead replica fail over to their
        // next ring successor (which skipping in the caller preserves).
        let ring = HashRing::new(4, 64);
        let dead = 2usize;
        for k in 0..2_000u64 {
            let key = HashRing::key_of(k as u128 * 7 + 3);
            let order = ring.successors(key);
            let routed = *order.iter().find(|&&r| r != dead).unwrap();
            if order[0] != dead {
                assert_eq!(routed, order[0], "surviving primaries keep their keys");
            } else {
                assert_eq!(routed, order[1], "dead primary's keys move to successor");
            }
        }
    }

    #[test]
    fn wraps_past_the_highest_point() {
        let ring = HashRing::new(3, 8);
        // u64::MAX is ≥ every point, so the search wraps to index 0.
        let first = ring.points[0].1;
        assert_eq!(ring.primary(u64::MAX), first);
    }
}
