//! Dense bitsets and count vectors.
//!
//! In the paper, every loop iteration carries an *r*-bit **tag**
//! `Λ = λ0 λ1 … λ(r-1)` where bit *k* is set iff the iteration accesses
//! data chunk `π_k` (Section 4.2). Iteration chunks are tag-equivalence
//! classes, and both the clustering algorithm (Figure 5) and the local
//! scheduling algorithm (Figure 15) operate on:
//!
//! * the number of common "1" bits of two tags (`Λi ∧ Λj` popcount) —
//!   similarity-graph edge weights;
//! * the **bitwise sum** of the tags of all members of a cluster — the
//!   "cluster tag", a vector of per-chunk access counts; and
//! * the **dot product** `α_p • α_q` of such count vectors — the affinity
//!   measure maximized when merging clusters or picking the next chunk to
//!   schedule.
//!
//! [`BitSet`] implements the plain tag; [`CountVec`] implements the
//! bitwise-sum cluster tag.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-capacity dense bitset backed by `u64` words.
///
/// Used as the r-bit iteration tag of the paper. The length (`len`) is the
/// number of addressable bits `r`; all bits at positions `>= len` are kept
/// zero as an internal invariant so popcounts never over-report.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty bitset able to hold `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        let nwords = len.div_ceil(WORD_BITS);
        BitSet {
            len,
            words: vec![0; nwords],
        }
    }

    /// Creates a bitset from an iterator of set-bit positions.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    pub fn from_bits<I: IntoIterator<Item = usize>>(len: usize, bits: I) -> Self {
        let mut s = Self::new(len);
        for b in bits {
            s.set(b);
        }
        s
    }

    /// Parses a bitset from a string of `0`/`1` characters, e.g. `"101010"`.
    ///
    /// Bit 0 is the leftmost character, matching the paper's tag notation
    /// `λ0 λ1 … λ(r-1)`.
    ///
    /// # Panics
    /// Panics on characters other than `0` or `1`.
    pub fn from_tag_str(s: &str) -> Self {
        let mut set = Self::new(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '1' => set.set(i),
                '0' => {}
                other => panic!("invalid tag character {other:?}"),
            }
        }
        set
    }

    /// Number of addressable bits `r`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset holds zero addressable bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of range for BitSet of len {}",
            self.len
        );
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of range for BitSet of len {}",
            self.len
        );
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of range for BitSet of len {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Number of set bits (the tag's "number of 1s").
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// True if no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Popcount of `self ∧ other`: the similarity-graph edge weight
    /// `ω(γΛi, γΛj)` of Figure 5.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_count(&self, other: &BitSet) -> u32 {
        assert_eq!(self.len, other.len, "BitSet length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Hamming distance between two tags (bits that differ).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn hamming(&self, other: &BitSet) -> u32 {
        assert_eq!(self.len, other.len, "BitSet length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// In-place union (`self |= other`).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// True if the two bitsets share at least one set bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterator over set-bit positions in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let tz = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }

    /// Renders the tag in the paper's `λ0 λ1 …` string notation.
    pub fn to_tag_string(&self) -> String {
        (0..self.len)
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet({})", self.to_tag_string())
    }
}

/// A per-chunk access-count vector: the "bitwise sum" cluster tag of
/// Figure 5 (`α_p = BitwiseSum(Λa, Λb, …)`).
///
/// Merging two clusters adds their count vectors; the affinity between two
/// clusters (or between a chunk tag and a cluster) is the dot product of
/// the vectors. A plain [`BitSet`] tag converts losslessly into a 0/1
/// count vector.
#[derive(Clone, PartialEq, Eq)]
pub struct CountVec {
    counts: Vec<u32>,
}

impl CountVec {
    /// Creates a zero vector over `len` chunks.
    pub fn new(len: usize) -> Self {
        CountVec {
            counts: vec![0; len],
        }
    }

    /// Builds the 0/1 count vector of a single tag.
    pub fn from_bitset(tag: &BitSet) -> Self {
        let mut v = Self::new(tag.len());
        for b in tag.iter_ones() {
            v.counts[b] = 1;
        }
        v
    }

    /// Number of chunk positions.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the vector has zero positions.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The count at chunk position `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.counts[i]
    }

    /// Adds another count vector element-wise (cluster merge).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn add(&mut self, other: &CountVec) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "CountVec length mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Adds a plain tag (0/1 vector) element-wise.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn add_bitset(&mut self, tag: &BitSet) {
        assert_eq!(
            self.counts.len(),
            tag.len(),
            "CountVec/BitSet length mismatch"
        );
        for b in tag.iter_ones() {
            self.counts[b] += 1;
        }
    }

    /// Subtracts a plain tag (used when an iteration chunk is evicted from
    /// a cluster during load balancing).
    ///
    /// # Panics
    /// Panics if lengths differ or a count would underflow.
    pub fn sub_bitset(&mut self, tag: &BitSet) {
        assert_eq!(
            self.counts.len(),
            tag.len(),
            "CountVec/BitSet length mismatch"
        );
        for b in tag.iter_ones() {
            assert!(self.counts[b] > 0, "CountVec underflow at chunk {b}");
            self.counts[b] -= 1;
        }
    }

    /// Dot product `α_p • α_q` of two count vectors (Figure 5's cluster
    /// affinity measure).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn dot(&self, other: &CountVec) -> u64 {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "CountVec length mismatch"
        );
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| a as u64 * b as u64)
            .sum()
    }

    /// Dot product against a plain tag: `Λ • α` (used by load balancing and
    /// scheduling, where one operand is a single iteration chunk's tag).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn dot_bitset(&self, tag: &BitSet) -> u64 {
        assert_eq!(
            self.counts.len(),
            tag.len(),
            "CountVec/BitSet length mismatch"
        );
        tag.iter_ones().map(|b| self.counts[b] as u64).sum()
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// True if every count is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

impl fmt::Debug for CountVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CountVec({:?})", self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bitset_is_all_zero() {
        let s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 0);
        assert!(s.none());
        for i in 0..130 {
            assert!(!s.get(i));
        }
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut s = BitSet::new(100);
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(99);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(99));
        assert_eq!(s.count_ones(), 4);
        s.clear(63);
        assert!(!s.get(63));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.set(10);
    }

    #[test]
    fn tag_string_roundtrip_matches_paper_notation() {
        // Paper example: tag 0011 means the iteration accesses the last two
        // of four chunks.
        let s = BitSet::from_tag_str("0011");
        assert!(!s.get(0) && !s.get(1) && s.get(2) && s.get(3));
        assert_eq!(s.to_tag_string(), "0011");
    }

    #[test]
    fn and_count_is_common_ones() {
        let a = BitSet::from_tag_str("101010000000");
        let b = BitSet::from_tag_str("101010100000");
        assert_eq!(a.and_count(&b), 3);
        let c = BitSet::from_tag_str("010101000000");
        assert_eq!(a.and_count(&c), 0);
    }

    #[test]
    fn hamming_distance() {
        let a = BitSet::from_tag_str("1100");
        let b = BitSet::from_tag_str("1010");
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn iter_ones_in_order() {
        let s = BitSet::from_bits(200, [3, 64, 65, 199]);
        let ones: Vec<usize> = s.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 199]);
    }

    #[test]
    fn union_and_intersects() {
        let mut a = BitSet::from_tag_str("1000");
        let b = BitSet::from_tag_str("0001");
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert_eq!(a.to_tag_string(), "1001");
        assert!(a.intersects(&b));
    }

    #[test]
    fn countvec_add_sub_dot() {
        let t1 = BitSet::from_tag_str("1100");
        let t2 = BitSet::from_tag_str("0110");
        let mut cv = CountVec::new(4);
        cv.add_bitset(&t1);
        cv.add_bitset(&t2);
        assert_eq!((cv.get(0), cv.get(1), cv.get(2), cv.get(3)), (1, 2, 1, 0));
        assert_eq!(cv.total(), 4);
        // dot with t1: chunk0*1 + chunk1*2 = 3
        assert_eq!(cv.dot_bitset(&t1), 3);
        cv.sub_bitset(&t2);
        assert_eq!((cv.get(0), cv.get(1), cv.get(2), cv.get(3)), (1, 1, 0, 0));
    }

    #[test]
    fn countvec_dot_symmetry() {
        let mut a = CountVec::new(3);
        let mut b = CountVec::new(3);
        a.add_bitset(&BitSet::from_tag_str("110"));
        a.add_bitset(&BitSet::from_tag_str("100"));
        b.add_bitset(&BitSet::from_tag_str("011"));
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.dot(&b), 1); // a = (2,1,0), b = (0,1,1) → 1
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn countvec_sub_underflow_panics() {
        let mut cv = CountVec::new(2);
        cv.sub_bitset(&BitSet::from_tag_str("10"));
    }

    #[test]
    fn countvec_from_bitset_is_01() {
        let t = BitSet::from_tag_str("1010");
        let cv = CountVec::from_bitset(&t);
        assert_eq!(cv.dot_bitset(&t), 2);
        assert_eq!(cv.total(), 2);
    }
}
