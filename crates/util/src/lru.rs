//! A sharded, thread-safe LRU cache.
//!
//! The mapping service keeps computed `Mapping`s keyed by request
//! fingerprint; lookups must be cheap under concurrency, so the cache is
//! split into independently locked shards (keyed by a stable hash of the
//! key) and each shard maintains exact LRU order with an intrusive
//! doubly-linked list over a slot arena — `get`, `insert`, and eviction
//! are all O(1) plus one hash lookup.
//!
//! The cache is value-cloning (`V: Clone`); callers that hold large
//! values (like a whole mapped program) wrap them in `Arc` so a hit is a
//! reference-count bump, never a deep copy.

use crate::hash::FxHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

/// One shard: an exact-LRU map of bounded capacity.
struct Shard<K, V> {
    map: crate::hash::FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: crate::hash::FxHashMap::default(),
            slots: Vec::with_capacity(capacity.min(64)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i].val.clone())
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.map.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        Some(self.slots[i].val.clone())
    }

    fn retain<F: FnMut(&K, &V) -> bool>(&mut self, f: &mut F) {
        let victims: Vec<K> = {
            let slots = &self.slots;
            self.map
                .iter()
                .filter(|&(_, &i)| !f(&slots[i].key, &slots[i].val))
                .map(|(k, _)| k.clone())
                .collect()
        };
        for k in victims {
            self.remove(&k);
        }
    }

    /// Returns `true` when the key was newly inserted (vs. replaced).
    fn insert(&mut self, key: K, val: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].val = val;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return false;
        }
        if self.map.len() >= self.capacity {
            // Evict the least-recently-used entry.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let old_key = self.slots[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(key, i);
        true
    }
}

/// A sharded LRU cache: `shards` independent locks, each bounding its own
/// entry count, for a total capacity of `shards × capacity_per_shard`.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache with `shards` shards of `capacity_per_shard`
    /// entries each. Both must be positive.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(capacity_per_shard > 0, "shard capacity must be positive");
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(capacity_per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("lru shard poisoned").get(key)
    }

    /// Inserts (or refreshes) `key → val`; evicts the shard's LRU entry
    /// when the shard is full. Returns `true` for a new key.
    pub fn insert(&self, key: K, val: V) -> bool {
        self.shard(&key)
            .lock()
            .expect("lru shard poisoned")
            .insert(key, val)
    }

    /// Removes `key`, returning its value when present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("lru shard poisoned")
            .remove(key)
    }

    /// Keeps only the entries for which `f` returns `true`. O(entries);
    /// intended for explicit invalidation sweeps, not hot paths. The
    /// relative LRU order of survivors is preserved.
    pub fn retain<F: FnMut(&K, &V) -> bool>(&self, mut f: F) {
        for shard in &self.shards {
            shard.lock().expect("lru shard poisoned").retain(&mut f);
        }
    }

    /// Current number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").map.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (shards × per-shard capacity).
    pub fn capacity(&self) -> usize {
        self.shards.len()
            * self
                .shards
                .first()
                .map(|s| s.lock().expect("lru shard poisoned").capacity)
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;

    #[test]
    fn get_promotes_and_eviction_is_lru() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(1, 3);
        for k in 0..3 {
            assert!(c.insert(k, k * 10));
        }
        assert_eq!(c.get(&0), Some(0)); // promote 0; LRU is now 1
        c.insert(3, 30); // evicts 1
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&0), Some(0));
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn insert_replaces_in_place() {
        let c: ShardedLru<u64, &str> = ShardedLru::new(2, 4);
        assert!(c.insert(7, "a"));
        assert!(!c.insert(7, "b"));
        assert_eq!(c.get(&7), Some("b"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_respected_per_shard() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(4, 2);
        for k in 0..100 {
            c.insert(k, k);
        }
        assert!(c.len() <= c.capacity());
        assert_eq!(c.capacity(), 8);
    }

    /// Model check: a single-shard cache behaves exactly like a naive
    /// Vec-based reference LRU over random op sequences.
    #[test]
    fn matches_reference_model() {
        check::cases(0x11aa_22bb, 200, |g| {
            let cap = g.usize_in(1, 6);
            let cache: ShardedLru<u64, u64> = ShardedLru::new(1, cap);
            // Reference: front = MRU.
            let mut model: Vec<(u64, u64)> = Vec::new();
            for _ in 0..g.usize_in(1, 120) {
                let k = g.u64_in(0, 10);
                if g.bool() {
                    let v = g.u64_in(0, 1000);
                    cache.insert(k, v);
                    if let Some(pos) = model.iter().position(|e| e.0 == k) {
                        model.remove(pos);
                    } else if model.len() >= cap {
                        model.pop();
                    }
                    model.insert(0, (k, v));
                } else {
                    let got = cache.get(&k);
                    let want = model.iter().position(|e| e.0 == k).map(|pos| {
                        let e = model.remove(pos);
                        model.insert(0, e);
                        e.1
                    });
                    assert_eq!(got, want);
                }
                assert_eq!(cache.len(), model.len());
            }
        });
    }

    #[test]
    fn remove_and_retain_keep_the_list_consistent() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(1, 4);
        for k in 0..4 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.remove(&2), Some(20));
        assert_eq!(c.remove(&2), None);
        assert_eq!(c.len(), 3);
        // The freed slot is reusable and order survives the removal.
        c.insert(9, 90);
        assert_eq!(c.len(), 4);
        c.retain(|_, v| *v >= 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.get(&9), Some(90));
        assert_eq!(c.get(&0), None);
        // Eviction still works after surgery.
        for k in 100..110 {
            c.insert(k, k);
        }
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<ShardedLru<u64, u64>>();
    }
}
