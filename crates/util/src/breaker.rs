//! A deterministic circuit breaker with a sliding outcome window.
//!
//! Classic three-state breaker (closed → open → half-open) driven
//! entirely by a caller-supplied clock (`now_ns`), so simulated-time
//! harnesses replay transitions byte-for-byte:
//!
//! * **Closed** — calls flow; outcomes are recorded in a sliding window
//!   of the last `window` calls. When at least `min_samples` outcomes
//!   are present and the failure fraction reaches `failure_ratio`, the
//!   breaker opens.
//! * **Open** — calls are refused ([`CircuitBreaker::allow`] returns
//!   `false`) until `open_ns` has elapsed, then the breaker moves to
//!   half-open.
//! * **HalfOpen** — exactly one probe call is admitted. Success closes
//!   the breaker (window reset); failure re-opens it and restarts the
//!   cool-down timer.
//!
//! The breaker records its transition history (bounded) so harnesses
//! can assert the exact open → half-open → closed recovery sequence.

use std::collections::VecDeque;

/// Breaker thresholds; see the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length, in call outcomes.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Failure fraction (0..=1) at which a closed breaker opens.
    pub failure_ratio: f64,
    /// Cool-down before an open breaker admits a half-open probe.
    pub open_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            min_samples: 8,
            failure_ratio: 0.5,
            open_ns: 50_000_000, // 50 ms
        }
    }
}

/// Breaker state, in the order transitions normally occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are refused while the backend cools down.
    Open,
    /// One probe call is admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Most transition-history entries kept; old entries are dropped first.
const HISTORY_CAP: usize = 64;

/// A per-backend circuit breaker. Not internally synchronized: callers
/// wrap it in their own lock alongside the rest of the backend state.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Outcomes in window order, `true` = success.
    outcomes: VecDeque<bool>,
    failures: usize,
    opened_at_ns: u64,
    probe_in_flight: bool,
    history: VecDeque<BreakerState>,
    transitions: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            outcomes: VecDeque::with_capacity(cfg.window.max(1)),
            failures: 0,
            opened_at_ns: 0,
            probe_in_flight: false,
            history: VecDeque::new(),
            transitions: 0,
        }
    }

    fn transition(&mut self, to: BreakerState) {
        if self.state == to {
            return;
        }
        self.state = to;
        self.transitions += 1;
        if self.history.len() == HISTORY_CAP {
            self.history.pop_front();
        }
        self.history.push_back(to);
    }

    fn push_outcome(&mut self, ok: bool) {
        if self.cfg.window == 0 {
            return;
        }
        if self.outcomes.len() == self.cfg.window {
            if let Some(old) = self.outcomes.pop_front() {
                if !old {
                    self.failures -= 1;
                }
            }
        }
        self.outcomes.push_back(ok);
        if !ok {
            self.failures += 1;
        }
    }

    fn reset_window(&mut self) {
        self.outcomes.clear();
        self.failures = 0;
    }

    /// Applies any time-based transition (open → half-open) and returns
    /// the state as of `now_ns`, without consuming the half-open probe.
    pub fn poll(&mut self, now_ns: u64) -> BreakerState {
        if self.state == BreakerState::Open
            && now_ns.saturating_sub(self.opened_at_ns) >= self.cfg.open_ns
        {
            self.probe_in_flight = false;
            self.transition(BreakerState::HalfOpen);
        }
        self.state
    }

    /// Whether a call may proceed now. In half-open state this consumes
    /// the single probe slot: the first caller gets `true`, subsequent
    /// callers `false` until the probe's outcome is recorded.
    pub fn allow(&mut self, now_ns: u64) -> bool {
        match self.poll(now_ns) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Records a successful call outcome.
    pub fn record_success(&mut self, now_ns: u64) {
        match self.poll(now_ns) {
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                self.reset_window();
                self.transition(BreakerState::Closed);
            }
            _ => self.push_outcome(true),
        }
    }

    /// Records a failed call outcome, tripping the breaker when the
    /// window's failure fraction reaches the threshold.
    pub fn record_failure(&mut self, now_ns: u64) {
        match self.poll(now_ns) {
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                self.opened_at_ns = now_ns;
                self.transition(BreakerState::Open);
            }
            BreakerState::Open => {}
            BreakerState::Closed => {
                self.push_outcome(false);
                let n = self.outcomes.len();
                if n >= self.cfg.min_samples.max(1)
                    && (self.failures as f64) >= self.cfg.failure_ratio * n as f64
                {
                    self.reset_window();
                    self.opened_at_ns = now_ns;
                    self.transition(BreakerState::Open);
                }
            }
        }
    }

    /// Current state without applying time-based transitions.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Number of state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Recent transition history, oldest first (initial `Closed` state
    /// is implicit and not recorded).
    pub fn history(&self) -> impl Iterator<Item = BreakerState> + '_ {
        self.history.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_ratio: 0.5,
            open_ns: 1_000,
        }
    }

    #[test]
    fn stays_closed_below_threshold() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..20 {
            b.record_success(t);
            assert!(b.allow(t));
        }
        // One failure in a window of 8 is 12.5% — below 50%.
        b.record_failure(21);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_at_failure_ratio_and_refuses_while_open() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_success(0);
        b.record_success(1);
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Closed, "3 samples < min 4");
        b.record_failure(3);
        assert_eq!(b.state(), BreakerState::Open, "2/4 failures hits 50%");
        assert!(!b.allow(4));
        assert!(!b.allow(500), "still cooling down");
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..4 {
            b.record_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(3 + 1_000), "cool-down elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(3 + 1_001), "second probe refused");
        b.record_success(3 + 1_002);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(3 + 1_003));
    }

    #[test]
    fn failed_probe_reopens_and_restarts_the_timer() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..4 {
            b.record_failure(t);
        }
        assert!(b.allow(2_000));
        b.record_failure(2_100);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(2_999), "timer restarted at the probe failure");
        assert!(b.allow(3_100), "new cool-down elapsed");
    }

    #[test]
    fn recovery_history_reads_open_half_open_closed() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..4 {
            b.record_failure(t);
        }
        assert!(b.allow(5_000));
        b.record_success(5_001);
        let got: Vec<BreakerState> = b.history().collect();
        assert_eq!(
            got,
            vec![
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed
            ]
        );
        assert_eq!(b.transitions(), 3);
    }

    #[test]
    fn window_reset_on_close_forgets_old_failures() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..4 {
            b.record_failure(t);
        }
        assert!(b.allow(2_000));
        b.record_success(2_001);
        // The pre-open failures must not count toward a fresh trip.
        b.record_failure(2_002);
        b.record_failure(2_003);
        b.record_failure(2_004);
        assert_eq!(b.state(), BreakerState::Closed, "only 3 samples so far");
        b.record_failure(2_005);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn deterministic_replay() {
        let drive = |b: &mut CircuitBreaker| {
            let mut log = Vec::new();
            for t in 0..40u64 {
                let now = t * 100;
                let allowed = b.allow(now);
                log.push((allowed, b.state().label()));
                if allowed {
                    if t % 3 == 0 {
                        b.record_failure(now + 1);
                    } else {
                        b.record_success(now + 1);
                    }
                }
            }
            log
        };
        let mut a = CircuitBreaker::new(cfg());
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(drive(&mut a), drive(&mut b));
    }
}
