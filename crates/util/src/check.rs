//! A small deterministic property-test harness.
//!
//! The workspace builds offline, so instead of an external property-testing
//! crate the test suites use this module: a seeded [`Gen`] produces random
//! inputs, and [`cases`] runs a closure over a fixed number of derived
//! seeds. Failures are ordinary panics/assertions; the harness prepends the
//! failing case index and seed so a failure is reproducible with
//! [`run_case`].
//!
//! Unlike a shrinking framework this keeps failures as-is, which has been
//! an acceptable trade for the small structured inputs used here.

use crate::rng::XorShift64;

/// A deterministic input generator for one test case.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: XorShift64,
}

impl Gen {
    /// A generator seeded directly (for reproducing one case).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: XorShift64::new(seed),
        }
    }

    /// A uniform `usize` in `[lo, hi)` (`lo` if empty).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.usize_in(lo, hi)
    }

    /// A uniform `u64` in `[lo, hi)` (`lo` if empty).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.rng.next_below(hi - lo)
    }

    /// A uniform `i64` in `[lo, hi)` (`lo` if empty).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        lo + self.rng.next_below((hi - lo) as u64) as i64
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// A vector of `usize` values: length in `len` range, values in `val`.
    pub fn vec_usize(
        &mut self,
        len: std::ops::Range<usize>,
        val: std::ops::Range<usize>,
    ) -> Vec<usize> {
        let n = self.usize_in(len.start, len.end);
        (0..n).map(|_| self.usize_in(val.start, val.end)).collect()
    }

    /// One element of a non-empty slice.
    pub fn choose<T: Copy>(&mut self, options: &[T]) -> T {
        assert!(!options.is_empty(), "choose on empty slice");
        options[self.usize_in(0, options.len())]
    }
}

/// Runs `n` deterministic cases of `f`, each with a fresh [`Gen`] derived
/// from `seed`. Panics from `f` are annotated with the case's own seed so
/// the case can be replayed in isolation via [`run_case`].
pub fn cases<F: FnMut(&mut Gen)>(seed: u64, n: usize, mut f: F) {
    let mut meta = XorShift64::new(seed ^ 0xC0DE_CAFE_F00D_D00D);
    for i in 0..n {
        let case_seed = meta.next_u64();
        let mut gen = Gen::from_seed(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut gen)));
        if let Err(payload) = result {
            eprintln!("property failed at case {i}/{n} (replay seed {case_seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Replays a single case of a property with an explicit seed.
pub fn run_case<F: FnOnce(&mut Gen)>(seed: u64, f: F) {
    let mut gen = Gen::from_seed(seed);
    f(&mut gen);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        cases(1, 10, |g| first.push(g.u64_in(0, 1000)));
        let mut second: Vec<u64> = Vec::new();
        cases(1, 10, |g| second.push(g.u64_in(0, 1000)));
        assert_eq!(first, second);
        assert_eq!(first.len(), 10);
    }

    #[test]
    fn ranges_hold() {
        cases(2, 50, |g| {
            assert!((3..9).contains(&g.usize_in(3, 9)));
            assert!((-5..5).contains(&g.i64_in(-5, 5)));
            let v = g.vec_usize(0..10, 0..4);
            assert!(v.len() < 10);
            assert!(v.iter().all(|&x| x < 4));
            assert!([1, 2, 3].contains(&g.choose(&[1, 2, 3])));
        });
    }
}
