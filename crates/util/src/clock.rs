//! Real or simulated time behind one handle.
//!
//! Harnesses that exercise deadline and backoff logic must not sleep:
//! a [`Clock::simulated`] advances a virtual nanosecond counter instead,
//! so "wait 30 seconds" is one atomic add. Production paths use
//! [`Clock::real`], which anchors `now_ns` at construction and really
//! sleeps. The handle is shared (`Arc<Clock>`) between the component
//! under test and the test driving it; the router's health checker, the
//! circuit breaker, the async front end's timer wheel, and the netfault
//! shims all tick off the same instance.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A clock: real time, or a virtual nanosecond counter for
/// deterministic robustness harnesses (backoff and fault delays then
/// advance the counter instead of sleeping).
#[derive(Debug)]
pub enum Clock {
    /// `std::time` + real `thread::sleep`.
    Real {
        /// Process-start anchor for `now_ns`.
        epoch: std::time::Instant,
    },
    /// A virtual nanosecond counter; `sleep_ns` advances it instantly.
    Simulated(AtomicU64),
}

impl Clock {
    /// A real-time clock.
    pub fn real() -> Clock {
        Clock::Real {
            epoch: std::time::Instant::now(),
        }
    }

    /// A simulated clock starting at zero.
    pub fn simulated() -> Clock {
        Clock::Simulated(AtomicU64::new(0))
    }

    /// `true` for a [`Clock::simulated`] instance.
    pub fn is_simulated(&self) -> bool {
        matches!(self, Clock::Simulated(_))
    }

    /// Nanoseconds since the clock's epoch.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Real { epoch } => epoch.elapsed().as_nanos() as u64,
            Clock::Simulated(t) => t.load(Ordering::SeqCst),
        }
    }

    /// Sleeps (real) or advances virtual time (simulated) by `ns`.
    pub fn sleep_ns(&self, ns: u64) {
        match self {
            Clock::Real { .. } => std::thread::sleep(Duration::from_nanos(ns)),
            Clock::Simulated(t) => {
                t.fetch_add(ns, Ordering::SeqCst);
            }
        }
    }

    /// Advances a simulated clock by `ns`; no-op on a real clock.
    pub fn advance_ns(&self, ns: u64) {
        if let Clock::Simulated(t) = self {
            t.fetch_add(ns, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_clock_never_sleeps() {
        let c = Clock::simulated();
        assert!(c.is_simulated());
        assert_eq!(c.now_ns(), 0);
        let t0 = std::time::Instant::now();
        c.sleep_ns(30_000_000_000); // "30 seconds"
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(c.now_ns(), 30_000_000_000);
        c.advance_ns(5);
        assert_eq!(c.now_ns(), 30_000_000_005);
    }

    #[test]
    fn real_clock_monotone() {
        let c = Clock::real();
        assert!(!c.is_simulated());
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        c.advance_ns(1_000_000_000); // no-op on real clocks
        assert!(c.now_ns() < 60_000_000_000);
    }
}
