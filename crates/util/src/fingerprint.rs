//! Stable content fingerprints for memoization keys.
//!
//! The mapping service (`cachemap-service`) fronts the pipeline with a
//! cache keyed by the *content* of a request — the loop nest, the
//! platform topology, and the mapper parameters — so two requests that
//! describe the same problem must produce the same key regardless of how
//! their JSON was spelled. This module provides that key:
//!
//! 1. [`canonical`] rewrites a [`Json`] tree into canonical form (object
//!    keys sorted recursively; arrays keep their order, which is
//!    semantically significant for subscripts, dims, and op streams);
//! 2. [`fingerprint_json`] hashes the canonical compact serialization
//!    with FNV-1a/128, a fixed published constant-based hash that is
//!    stable across processes, platforms, and releases (unlike
//!    `DefaultHasher`, whose seeds are randomized).
//!
//! Because the workspace's JSON writer is byte-deterministic (sorted
//! canonical keys, shortest-round-trip floats), parse → re-serialize is
//! the identity on canonical bytes, so fingerprints survive
//! re-serialization and field-insertion-order changes by construction.

use crate::json::Json;
use std::fmt;

/// FNV-1a 128-bit offset basis (the published constant).
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime (the published constant).
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit stable content fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Hashes raw bytes with FNV-1a/128.
    pub fn of_bytes(bytes: &[u8]) -> Fingerprint {
        let mut state = FNV128_OFFSET;
        for &b in bytes {
            state ^= b as u128;
            state = state.wrapping_mul(FNV128_PRIME);
        }
        Fingerprint(state)
    }

    /// The fingerprint as a fixed-width 32-digit lowercase hex string.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a 32-digit hex string produced by [`Fingerprint::to_hex`].
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({})", self.to_hex())
    }
}

/// Returns the canonical form of a JSON tree: object keys sorted
/// (recursively, stable for duplicate keys), arrays left in order.
pub fn canonical(v: &Json) -> Json {
    match v {
        Json::Array(items) => Json::Array(items.iter().map(canonical).collect()),
        Json::Object(pairs) => {
            let mut out: Vec<(String, Json)> = pairs
                .iter()
                .map(|(k, v)| (k.clone(), canonical(v)))
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Object(out)
        }
        other => other.clone(),
    }
}

/// Fingerprints a JSON value: canonicalize, serialize compactly, hash.
///
/// Invariants (property-tested in `cachemap-service`):
/// * insensitive to object field-insertion order;
/// * insensitive to serialize → parse round trips;
/// * sensitive to any value change (modulo hash collisions, 2⁻¹²⁸).
pub fn fingerprint_json(v: &Json) -> Fingerprint {
    Fingerprint::of_bytes(canonical(v).to_string_compact().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a/128 of the empty string is the offset basis.
        assert_eq!(Fingerprint::of_bytes(b"").0, FNV128_OFFSET);
        assert_ne!(Fingerprint::of_bytes(b"a"), Fingerprint::of_bytes(b"b"));
    }

    #[test]
    fn hex_round_trips() {
        let fp = Fingerprint::of_bytes(b"cachemap");
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
    }

    #[test]
    fn field_order_does_not_matter() {
        let a = Json::object(vec![
            ("x", Json::UInt(1)),
            (
                "y",
                Json::object(vec![("p", Json::Bool(true)), ("q", Json::Null)]),
            ),
        ]);
        let b = Json::object(vec![
            (
                "y",
                Json::object(vec![("q", Json::Null), ("p", Json::Bool(true))]),
            ),
            ("x", Json::UInt(1)),
        ]);
        assert_eq!(fingerprint_json(&a), fingerprint_json(&b));
    }

    #[test]
    fn array_order_does_matter() {
        let a = Json::Array(vec![Json::UInt(1), Json::UInt(2)]);
        let b = Json::Array(vec![Json::UInt(2), Json::UInt(1)]);
        assert_ne!(fingerprint_json(&a), fingerprint_json(&b));
    }

    #[test]
    fn reserialization_is_stable() {
        let v = Json::object(vec![
            ("f", Json::Float(0.1)),
            ("i", Json::Int(-3)),
            ("s", Json::Str("a\"b".into())),
            ("a", Json::Array(vec![Json::Float(1.0), Json::UInt(7)])),
        ]);
        let back = crate::json::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(fingerprint_json(&v), fingerprint_json(&back));
    }

    #[test]
    fn value_changes_change_the_fingerprint() {
        let base = Json::object(vec![("k", Json::UInt(1))]);
        let other = Json::object(vec![("k", Json::UInt(2))]);
        let renamed = Json::object(vec![("j", Json::UInt(1))]);
        assert_ne!(fingerprint_json(&base), fingerprint_json(&other));
        assert_ne!(fingerprint_json(&base), fingerprint_json(&renamed));
    }
}
