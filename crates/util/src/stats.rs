//! Summary statistics and normalization helpers for experiment reporting.
//!
//! The paper reports results as values **normalized to the original
//! version** (Figures 10-14, 18), plus arithmetic averages over the
//! application suite ("26.3% on average"). These helpers centralize that
//! arithmetic so every harness subcommand computes it identically.

/// Arithmetic mean; returns 0.0 on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; returns 0.0 on an empty slice.
///
/// # Panics
/// Panics if any element is non-positive (a normalized ratio must be > 0).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// `value / baseline`, the "normalized with respect to the original
/// version" measure of Section 5.
///
/// # Panics
/// Panics if `baseline` is zero.
pub fn normalized(value: f64, baseline: f64) -> f64 {
    assert!(baseline != 0.0, "cannot normalize against a zero baseline");
    value / baseline
}

/// Average percentage improvement over a baseline: mean of
/// `1 - value/baseline` expressed in percent.
pub fn avg_improvement_pct(pairs: &[(f64, f64)]) -> f64 {
    let improvements: Vec<f64> = pairs
        .iter()
        .map(|&(value, baseline)| (1.0 - normalized(value, baseline)) * 100.0)
        .collect();
    mean(&improvements)
}

/// Population standard deviation; returns 0.0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// A running tally of hits and misses for one cache level or resource.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HitMiss {
    /// Accesses that were served by this level.
    pub hits: u64,
    /// Accesses that had to go to the next level.
    pub misses: u64,
}

impl HitMiss {
    /// Records a hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; 0.0 when no accesses were observed.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn normalized_and_improvement() {
        assert_eq!(normalized(0.75, 1.0), 0.75);
        let pct = avg_improvement_pct(&[(0.75, 1.0), (0.5, 1.0)]);
        assert!((pct - 37.5).abs() < 1e-12);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[1.0, 1.0, 1.0]);
        assert_eq!(s, 0.0);
        let s = stddev(&[0.0, 2.0]);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hitmiss_rates() {
        let mut hm = HitMiss::default();
        assert_eq!(hm.miss_rate(), 0.0);
        hm.hit();
        hm.hit();
        hm.hit();
        hm.miss();
        assert_eq!(hm.accesses(), 4);
        assert!((hm.miss_rate() - 0.25).abs() < 1e-12);
        let mut other = HitMiss::default();
        other.miss();
        hm.merge(&other);
        assert_eq!(hm.misses, 2);
        assert_eq!(hm.accesses(), 5);
    }
}
