//! Shared utilities for the `cachemap` workspace.
//!
//! This crate holds the small, dependency-free building blocks used across
//! the reproduction of *"Computation Mapping for Multi-Level Storage Cache
//! Hierarchies"* (HPDC 2010):
//!
//! * [`bitset`] — dense bitsets used for the r-bit **iteration tags** of
//!   Section 4.2 of the paper, plus the count-vector "cluster tags"
//!   (bitwise sums) and their dot products used by the clustering and
//!   scheduling algorithms (Figures 5 and 15).
//! * [`hash`] — an Fx-style fast hasher for integer-keyed maps, following
//!   the Rust Performance Book guidance for hot hash tables.
//! * [`stats`] — summary statistics (mean, geometric mean, normalization)
//!   used when reporting experiment results.
//! * [`table`] — a fixed-width plain-text table printer shared by the
//!   experiment harness so every figure/table prints in a uniform format.
//! * [`json`] — a dependency-free JSON value tree, writer, and parser with
//!   deterministic output bytes (used for reports and fault plans).
//! * [`fingerprint`] — stable 128-bit content fingerprints of canonical
//!   JSON (the mapping service's memoization key).
//! * [`lru`] — a sharded, thread-safe, exact-LRU cache (the mapping
//!   service's memo store).
//! * [`coalesce`] — request coalescing (stampede protection): concurrent
//!   misses on one key rendezvous so exactly one caller computes.
//! * [`rng`] — a seeded xorshift64* generator for deterministic fault
//!   sampling and test-input generation.
//! * [`check`] — a miniature property-test harness built on [`rng`].
//! * [`backoff`] — capped exponential backoff schedules (deterministic
//!   or full-jitter) shared by the storage retry loop and the router.
//! * [`breaker`] — a clock-driven circuit breaker (closed → open →
//!   half-open) for per-backend failure shedding.
//! * [`ring`] — an FNV consistent-hash ring with virtual nodes, the
//!   replica-placement map of the service router.
//! * [`clock`] — real or simulated time behind one `Arc<Clock>` handle,
//!   shared by the router's health checks, the circuit breaker, and the
//!   async front end's deadlines (simulated tests never sleep).
//! * [`timer`] — a hashed timing wheel (O(1) schedule/cancel) for the
//!   async front end's idle/read deadlines and batch windows.
//! * [`bufpool`] — a bounded pool of reusable byte buffers for the
//!   async front end's per-connection read buffers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod bitset;
pub mod breaker;
pub mod bufpool;
pub mod check;
pub mod clock;
pub mod coalesce;
pub mod fingerprint;
pub mod hash;
pub mod json;
pub mod lru;
pub mod ring;
pub mod rng;
pub mod stats;
pub mod table;
pub mod timer;

pub use backoff::Backoff;
pub use bitset::{BitSet, CountVec};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use bufpool::BufferPool;
pub use clock::Clock;
pub use coalesce::CoalesceMap;
pub use fingerprint::{canonical, fingerprint_json, Fingerprint};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use json::{Json, ToJson};
pub use lru::ShardedLru;
pub use ring::HashRing;
pub use rng::XorShift64;
pub use timer::{TimerId, TimerWheel};
