//! Minimal, dependency-free JSON support.
//!
//! The workspace runs in offline environments where external crates are
//! unavailable, so this module provides the small subset of JSON the
//! reproduction needs: a value tree ([`Json`]), a writer with stable field
//! ordering (so serialized reports are byte-for-byte comparable), and a
//! strict parser used to round-trip [`FaultPlan`]-style configuration.
//!
//! Numbers are kept as `i64`/`u64`/`f64` variants; writers emit integers
//! without a fractional part so equal inputs always produce equal bytes.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree with deterministic serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (serialized without exponent or fraction).
    Int(i64),
    /// Unsigned integer (serialized without exponent or fraction).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object. Insertion order is preserved for readability.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::UInt(u) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps a fractional part (`1.0`, not `1`), so a
                    // float never collides with an integer rendering.
                    let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a [`Json`] tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<K: fmt::Display, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document. Strict: trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not combined; the fault-plan
                            // schema only uses ASCII identifiers.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let tail = &self.bytes[start..];
                    let len = match tail[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::object(vec![
            ("name", Json::Str("plan".into())),
            ("events", Json::Array(vec![Json::UInt(3), Json::Int(-1)])),
            ("rate", Json::Float(0.25)),
            ("on", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        let text = v.to_string_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("name").unwrap().as_str(), Some("plan"));
        assert_eq!(back.get("events").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(back.get("rate").unwrap().as_f64(), Some(0.25));
        assert_eq!(parse(&v.to_string_compact()).unwrap(), back);
    }

    #[test]
    fn deterministic_bytes() {
        let v = Json::object(vec![("a", Json::UInt(1)), ("b", Json::Float(1.0))]);
        assert_eq!(v.to_string_compact(), "{\"a\":1,\"b\":1.0}");
        assert_eq!(v.to_string_compact(), v.clone().to_string_compact());
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd".into());
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }
}
