//! Capped exponential backoff with optional full jitter.
//!
//! One shared schedule for every retry loop in the workspace: the
//! storage engine's transient-error retries charge the deterministic
//! (un-jittered) schedule to simulated time, while the service router
//! spreads real retries with full jitter so replicas recovering from a
//! shared fault are not hammered in lockstep.
//!
//! The schedule is the classic doubling sequence `base, 2·base, 4·base,
//! …` clamped at `cap`. With [`Backoff::with_jitter`] each emitted delay
//! is drawn uniformly from `[0, d]` where `d` is the un-jittered delay
//! ("full jitter" per the AWS architecture blog analysis) — seeded, so
//! a given `(seed, attempt)` pair always yields the same delay.

use crate::rng::XorShift64;

/// An iterator over capped exponential backoff delays.
///
/// Infinite by construction — bound it with the caller's retry budget
/// (`.take(n)` or a counted loop). Delays are in whatever unit `base`
/// and `cap` are expressed in (the workspace uses nanoseconds).
#[derive(Debug, Clone)]
pub struct Backoff {
    /// Next un-jittered delay to emit.
    next: u64,
    /// Clamp applied after each doubling.
    cap: u64,
    /// Jitter source; `None` emits the deterministic schedule.
    jitter: Option<XorShift64>,
}

impl Backoff {
    /// A deterministic capped-doubling schedule starting at `base`.
    ///
    /// `base` is clamped to at least 1 so the schedule always makes
    /// progress; `cap` below `base` clamps every delay to `cap`.
    pub fn exponential(base: u64, cap: u64) -> Backoff {
        let base = base.max(1);
        Backoff {
            next: base.min(cap),
            cap,
            jitter: None,
        }
    }

    /// Adds seeded full jitter: each delay becomes uniform in
    /// `[0, unjittered]`.
    pub fn with_jitter(mut self, seed: u64) -> Backoff {
        self.jitter = Some(XorShift64::new(seed));
        self
    }

    /// Upper bound of the delay the next `next()` call can return.
    pub fn current_cap(&self) -> u64 {
        self.next
    }
}

impl Iterator for Backoff {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let ceiling = self.next;
        self.next = self.next.saturating_mul(2).min(self.cap);
        let delay = match self.jitter.as_mut() {
            None => ceiling,
            Some(rng) => rng.next_below(ceiling.saturating_add(1)),
        };
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;

    #[test]
    fn unjittered_schedule_doubles_and_caps() {
        let delays: Vec<u64> = Backoff::exponential(100, 1600).take(8).collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 1600, 1600, 1600, 1600]);
    }

    #[test]
    fn zero_base_still_progresses() {
        let delays: Vec<u64> = Backoff::exponential(0, 8).take(5).collect();
        assert_eq!(delays, vec![1, 2, 4, 8, 8]);
    }

    #[test]
    fn cap_below_base_clamps_immediately() {
        let delays: Vec<u64> = Backoff::exponential(100, 30).take(3).collect();
        assert_eq!(delays, vec![30, 30, 30]);
    }

    #[test]
    fn jittered_delays_stay_under_the_monotone_cap() {
        check::cases(0xBACC_0FF5, 64, |g| {
            let base = g.u64_in(1, 1 << 20);
            let cap = g.u64_in(base, base.saturating_mul(64));
            let seed = g.u64_in(0, u64::MAX - 1);
            let mut ceiling = base;
            for d in Backoff::exponential(base, cap).with_jitter(seed).take(12) {
                assert!(d <= ceiling, "jittered delay {d} above ceiling {ceiling}");
                assert!(ceiling <= cap, "ceiling {ceiling} escaped cap {cap}");
                ceiling = ceiling.saturating_mul(2).min(cap);
            }
        });
    }

    #[test]
    fn jittered_schedule_is_deterministic_per_seed() {
        check::cases(0x5EED_5EED, 32, |g| {
            let base = g.u64_in(1, 1 << 16);
            let cap = base * 16;
            let seed = g.u64_in(0, u64::MAX - 1);
            let a: Vec<u64> = Backoff::exponential(base, cap)
                .with_jitter(seed)
                .take(10)
                .collect();
            let b: Vec<u64> = Backoff::exponential(base, cap)
                .with_jitter(seed)
                .take(10)
                .collect();
            assert_eq!(a, b, "same seed must replay the same delays");
            let c: Vec<u64> = Backoff::exponential(base, cap)
                .with_jitter(seed ^ 1)
                .take(10)
                .collect();
            assert_ne!(a, c, "different seeds should diverge");
        });
    }

    #[test]
    fn matches_the_storage_engine_schedule() {
        // The engine historically emitted base, 2b, 4b, … capped at
        // 16·base; the shared iterator must reproduce it exactly so
        // simulation outputs stay byte-identical.
        let base = 250u64;
        let mut legacy = Vec::new();
        let mut b = base;
        for _ in 0..8 {
            legacy.push(b);
            b = (b * 2).min(base * 16);
        }
        let shared: Vec<u64> = Backoff::exponential(base, base * 16).take(8).collect();
        assert_eq!(shared, legacy);
    }
}
