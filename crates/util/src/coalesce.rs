//! Request coalescing (stampede protection) for memoized computations.
//!
//! When N callers miss the same cache key at once, running the
//! underlying computation N times wastes N−1 computes and — for an
//! expensive mapper pipeline — turns a hot-key storm into a latency
//! cliff. A [`CoalesceMap`] lets the *first* caller for a key become the
//! **leader** (it runs the computation) while every concurrent caller
//! for the same key becomes a **follower** that blocks on a `Condvar`
//! rendezvous and inherits the leader's result or its typed error.
//!
//! This is the safe rendition of the stable-reference idea from the
//! `cachingmap` crate (see SNIPPETS.md): instead of handing out
//! references into an `UnsafeCell`-backed map, followers receive a
//! *clone* of the published `Result<V, E>` (callers wrap large values in
//! `Arc`, so a clone is a reference-count bump), and all
//! synchronization is an ordinary `Mutex` + `Condvar` per in-flight key.
//!
//! Failure handling is part of the contract:
//!
//! * a leader that **completes** (`Ok` or `Err`) wakes every follower
//!   with a clone of that outcome;
//! * a leader that **panics** (or otherwise drops its [`Leader`] guard
//!   without completing) marks the flight abandoned and wakes every
//!   follower with [`Join::LeaderFailed`] — followers never hang and the
//!   entry never leaks (the guard's `Drop` removes it from the map);
//! * a follower whose **deadline** passes first returns
//!   [`Join::TimedOut`] without disturbing the flight.
//!
//! The entry is removed from the map the moment the flight settles, so
//! later callers (which should consult the caller's result cache first)
//! start a fresh flight rather than observing stale state.

use crate::hash::FxHashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// The state of one in-flight computation.
enum FlightState<V, E> {
    /// The leader is still computing.
    Running,
    /// The leader published its outcome; followers clone it.
    Done(Result<V, E>),
    /// The leader's guard was dropped without completing (panic or
    /// early return): followers observe the failure, never a hang.
    Abandoned,
}

struct Flight<V, E> {
    state: Mutex<FlightState<V, E>>,
    settled: Condvar,
}

/// A map of in-flight computations keyed by `K`: concurrent requests
/// for the same key rendezvous on one flight.
pub struct CoalesceMap<K, V, E> {
    flights: Mutex<FxHashMap<K, Arc<Flight<V, E>>>>,
}

/// The outcome of [`CoalesceMap::join`].
pub enum Join<'a, K: Hash + Eq + Clone, V: Clone, E: Clone> {
    /// This caller is the leader: run the computation, then call
    /// [`Leader::complete`]. Dropping the guard without completing
    /// (e.g. on panic) wakes all followers with [`Join::LeaderFailed`].
    Leader(Leader<'a, K, V, E>),
    /// A leader finished while we waited; this is a clone of its result.
    Done(Result<V, E>),
    /// The leader's guard was dropped without a result (it panicked).
    LeaderFailed,
    /// The caller's deadline passed before the flight settled.
    TimedOut,
}

/// The leader's completion guard for one flight (see [`Join::Leader`]).
pub struct Leader<'a, K: Hash + Eq + Clone, V: Clone, E: Clone> {
    map: &'a CoalesceMap<K, V, E>,
    key: K,
    flight: Arc<Flight<V, E>>,
    completed: bool,
}

impl<K: Hash + Eq + Clone, V: Clone, E: Clone> Leader<'_, K, V, E> {
    /// Publishes the leader's outcome: every current and future waiter
    /// on this flight receives a clone of `result`, and the flight is
    /// removed from the map so later callers start fresh.
    pub fn complete(mut self, result: Result<V, E>) {
        self.settle(FlightState::Done(result));
        self.completed = true;
    }

    fn settle(&self, state: FlightState<V, E>) {
        {
            let mut s = self.flight.state.lock().expect("flight poisoned");
            *s = state;
        }
        self.flight.settled.notify_all();
        let mut flights = self.map.flights.lock().expect("coalesce map poisoned");
        // Only remove our own flight: a follower that timed out and
        // retried may already have replaced the entry.
        if let Some(current) = flights.get(&self.key) {
            if Arc::ptr_eq(current, &self.flight) {
                flights.remove(&self.key);
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone, E: Clone> Drop for Leader<'_, K, V, E> {
    fn drop(&mut self) {
        if !self.completed {
            self.settle(FlightState::Abandoned);
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone, E: Clone> CoalesceMap<K, V, E> {
    /// An empty map with no in-flight computations.
    pub fn new() -> Self {
        CoalesceMap {
            flights: Mutex::new(FxHashMap::default()),
        }
    }

    /// Number of currently in-flight computations.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("coalesce map poisoned").len()
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// concurrent callers block (until `deadline`, if given) for the
    /// leader's outcome.
    pub fn join(&self, key: K, deadline: Option<Instant>) -> Join<'_, K, V, E> {
        self.join_timed(key, deadline).0
    }

    /// [`CoalesceMap::join`] plus the time this caller spent blocked on
    /// the rendezvous, in nanoseconds (always 0 for the leader, which
    /// never blocks). Used for per-request latency attribution.
    pub fn join_timed(&self, key: K, deadline: Option<Instant>) -> (Join<'_, K, V, E>, u64) {
        let flight = {
            let mut flights = self.flights.lock().expect("coalesce map poisoned");
            match flights.get(&key) {
                Some(f) => Arc::clone(f),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        settled: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&f));
                    return (
                        Join::Leader(Leader {
                            map: self,
                            key,
                            flight: f,
                            completed: false,
                        }),
                        0,
                    );
                }
            }
        };

        let waited_from = Instant::now();
        fn waited<K: Hash + Eq + Clone, V: Clone, E: Clone>(
            from: Instant,
            outcome: Join<'_, K, V, E>,
        ) -> (Join<'_, K, V, E>, u64) {
            (outcome, from.elapsed().as_nanos() as u64)
        }
        let mut state = flight.state.lock().expect("flight poisoned");
        loop {
            match &*state {
                FlightState::Done(r) => return waited(waited_from, Join::Done(r.clone())),
                FlightState::Abandoned => return waited(waited_from, Join::LeaderFailed),
                FlightState::Running => {}
            }
            match deadline {
                None => {
                    state = flight.settled.wait(state).expect("flight poisoned");
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return waited(waited_from, Join::TimedOut);
                    }
                    let (s, timeout) = flight
                        .settled
                        .wait_timeout(state, d - now)
                        .expect("flight poisoned");
                    state = s;
                    if timeout.timed_out() {
                        // Re-check once: the leader may have settled in
                        // the race between timeout and relock.
                        match &*state {
                            FlightState::Done(r) => {
                                return waited(waited_from, Join::Done(r.clone()))
                            }
                            FlightState::Abandoned => {
                                return waited(waited_from, Join::LeaderFailed)
                            }
                            FlightState::Running => return waited(waited_from, Join::TimedOut),
                        }
                    }
                }
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone, E: Clone> Default for CoalesceMap<K, V, E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    type Map = CoalesceMap<u64, u64, String>;

    #[test]
    fn leader_result_is_inherited_by_all_followers() {
        let map = Arc::new(Map::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(16));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (map, computes, barrier) = (
                    Arc::clone(&map),
                    Arc::clone(&computes),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    match map.join(7, None) {
                        Join::Leader(leader) => {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Give followers time to pile up.
                            std::thread::sleep(Duration::from_millis(20));
                            leader.complete(Ok(42));
                            42
                        }
                        Join::Done(Ok(v)) => v,
                        other => panic!(
                            "follower got an unexpected outcome: {}",
                            match other {
                                Join::Done(Err(e)) => format!("Err({e})"),
                                Join::LeaderFailed => "LeaderFailed".into(),
                                Join::TimedOut => "TimedOut".into(),
                                _ => unreachable!(),
                            }
                        ),
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one leader");
        assert_eq!(map.in_flight(), 0, "settled flight must not leak");
    }

    #[test]
    fn leader_error_is_inherited_typed() {
        let map = Map::new();
        let Join::Leader(leader) = map.join(1, None) else {
            panic!("first join must lead");
        };
        // A second join (same thread, before completion) must follow; use
        // a deadline so the test cannot hang.
        let deadline = Some(Instant::now() + Duration::from_millis(10));
        assert!(matches!(map.join(1, deadline), Join::TimedOut));
        leader.complete(Err("boom".to_string()));
        // Flight settled and removed: a fresh join leads again.
        assert!(matches!(map.join(1, None), Join::Leader(_)));
    }

    #[test]
    fn panicking_leader_wakes_all_followers_with_leader_failed() {
        let map = Arc::new(Map::new());
        let barrier = Arc::new(Barrier::new(5));
        let leader_map = Arc::clone(&map);
        let leader_barrier = Arc::clone(&barrier);
        let leader = std::thread::spawn(move || {
            let join = leader_map.join(9, None);
            assert!(matches!(join, Join::Leader(_)));
            leader_barrier.wait();
            std::thread::sleep(Duration::from_millis(20));
            // Unwinding drops the guard without completing.
            panic!("leader died mid-compute");
        });
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let (map, barrier) = (Arc::clone(&map), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    let deadline = Some(Instant::now() + Duration::from_secs(5));
                    matches!(map.join(9, deadline), Join::LeaderFailed)
                })
            })
            .collect();
        assert!(leader.join().is_err(), "leader must have panicked");
        for f in followers {
            assert!(f.join().unwrap(), "follower must observe LeaderFailed");
        }
        assert_eq!(map.in_flight(), 0, "abandoned flight must not leak");
    }

    #[test]
    fn follower_deadline_does_not_disturb_the_flight() {
        let map = Map::new();
        let Join::Leader(leader) = map.join(3, None) else {
            panic!("first join must lead");
        };
        let deadline = Some(Instant::now() + Duration::from_millis(5));
        assert!(matches!(map.join(3, deadline), Join::TimedOut));
        assert_eq!(map.in_flight(), 1, "timeout must not remove the flight");
        leader.complete(Ok(5));
        assert_eq!(map.in_flight(), 0);
    }

    #[test]
    fn leader_completion_survives_departed_followers() {
        // Several followers join with short deadlines while the leader
        // is still computing; every one of them times out and departs.
        // Completing the flight afterwards must neither panic nor leak
        // the flight — the departed followers simply never see the
        // result.
        let map = Arc::new(Map::new());
        let Join::Leader(leader) = map.join(11, None) else {
            panic!("first join must lead");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let deadline = Some(Instant::now() + Duration::from_millis(10));
                    matches!(map.join(11, deadline), Join::TimedOut)
                })
            })
            .collect();
        for f in followers {
            assert!(f.join().unwrap(), "every follower must time out typed");
        }
        assert_eq!(map.in_flight(), 1, "departures leave the flight alone");
        // The leader finishes long after everyone left.
        leader.complete(Ok(99));
        assert_eq!(map.in_flight(), 0);
        // The key is reusable afterwards: a fresh join leads again.
        assert!(matches!(map.join(11, None), Join::Leader(_)));
    }

    #[test]
    fn late_follower_still_inherits_when_others_departed() {
        // One follower departs on deadline, one keeps waiting: the
        // waiter inherits the result even though the condvar saw a
        // departure first.
        let map = Arc::new(Map::new());
        let Join::Leader(leader) = map.join(13, None) else {
            panic!("first join must lead");
        };
        let quitter = {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let deadline = Some(Instant::now() + Duration::from_millis(5));
                matches!(map.join(13, deadline), Join::TimedOut)
            })
        };
        let waiter = {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let deadline = Some(Instant::now() + Duration::from_secs(10));
                match map.join(13, deadline) {
                    Join::Done(Ok(v)) => v,
                    Join::Done(Err(_)) => panic!("waiter saw an error result"),
                    Join::Leader(_) => panic!("waiter became leader"),
                    Join::LeaderFailed => panic!("waiter saw a failed leader"),
                    Join::TimedOut => panic!("waiter timed out"),
                }
            })
        };
        assert!(quitter.join().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        leader.complete(Ok(77));
        assert_eq!(waiter.join().unwrap(), 77);
    }

    #[test]
    fn join_timed_attributes_follower_wait_but_not_leader() {
        let map = Arc::new(Map::new());
        let (join, leader_ns) = map.join_timed(11, None);
        let Join::Leader(leader) = join else {
            panic!("first join must lead");
        };
        assert_eq!(leader_ns, 0, "the leader never blocks");
        let follower_map = Arc::clone(&map);
        let follower = std::thread::spawn(move || {
            let deadline = Some(Instant::now() + Duration::from_secs(5));
            let (join, ns) = follower_map.join_timed(11, deadline);
            assert!(matches!(join, Join::Done(Ok(99))));
            ns
        });
        std::thread::sleep(Duration::from_millis(15));
        leader.complete(Ok(99));
        let ns = follower.join().unwrap();
        assert!(
            ns >= Duration::from_millis(5).as_nanos() as u64,
            "follower wait must reflect the leader's compute time, got {ns}ns"
        );
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let map = Map::new();
        let Join::Leader(a) = map.join(1, None) else {
            panic!()
        };
        let Join::Leader(b) = map.join(2, None) else {
            panic!()
        };
        assert_eq!(map.in_flight(), 2);
        a.complete(Ok(1));
        b.complete(Ok(2));
        assert_eq!(map.in_flight(), 0);
    }
}
