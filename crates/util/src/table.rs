//! Fixed-width plain-text table rendering for the experiment harness.
//!
//! Every `repro` subcommand prints its table/figure in the same format:
//! a header row, a separator, and right-aligned numeric columns, so the
//! output can be diffed between runs and against EXPERIMENTS.md.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are allowed and widen the table.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a `String` (ends with a newline).
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    // First column (labels) left-aligned.
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("  {cell:>w$}"));
                }
            }
            // Trim trailing spaces introduced by padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            render_row(&mut out, r, &widths);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.263` →
/// `"26.3"`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}", frac * 100.0)
}

/// Formats a normalized ratio with three decimals, e.g. `0.7372` →
/// `"0.737"`.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["app", "L1", "L2"]);
        t.row(["hf", "21.3", "40.4"]);
        t.row(["madbench2", "20.6", "34.7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric columns line up: both rows end at same width.
        assert!(lines[2].ends_with("40.4"));
        assert!(lines[3].ends_with("34.7"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        let s = t.render();
        assert!(s.contains('x'));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn pct_and_ratio_format() {
        assert_eq!(pct(0.263), "26.3");
        assert_eq!(ratio(0.7372), "0.737");
    }
}
