//! Fx-style fast hashing for integer-keyed hot maps.
//!
//! The simulator and mapper keep many maps keyed by small integers (chunk
//! ids, node ids, iteration-chunk ids). Following the Rust Performance
//! Book, SipHash is overkill there; this module provides the classic
//! Firefox/rustc "Fx" multiply-rotate hash as a drop-in `BuildHasher`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
///
/// The algorithm hashes each machine word `w` as
/// `state = (rotl5(state) ^ w) * K` with a fixed odd constant `K`
/// (the same recurrence rustc uses).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, w: u64) {
        self.state = (self.state.rotate_left(5) ^ w).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using Fx hashing.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using Fx hashing.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        m.insert(1 << 40, "big");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&(1 << 40)), Some(&"big"));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_equivalence_of_whole_words() {
        // Writing 8 bytes should equal writing the same u64 word.
        let mut a = FxHasher::default();
        a.write(&0xdead_beef_u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<usize> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
