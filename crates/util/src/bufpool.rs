//! A reusable byte-buffer pool.
//!
//! The async front end churns through read buffers at connection rate;
//! allocating (and faulting in) a fresh `Vec<u8>` per connection is
//! avoidable garbage. A [`BufferPool`] keeps up to `max_pooled` cleared
//! buffers around; [`BufferPool::get`] hands one out (or allocates) and
//! [`BufferPool::put`] returns it. Buffers that grew past
//! `max_buf_bytes` are dropped instead of pooled so one megabyte frame
//! cannot pin megabytes of idle capacity forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded pool of reusable `Vec<u8>` buffers. Cheap to share behind
/// an `Arc`; all methods take `&self`.
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    max_buf_bytes: usize,
    reused: AtomicU64,
    allocated: AtomicU64,
}

impl BufferPool {
    /// A pool keeping at most `max_pooled` buffers, each recycled only
    /// while its capacity is at most `max_buf_bytes`.
    pub fn new(max_pooled: usize, max_buf_bytes: usize) -> BufferPool {
        BufferPool {
            free: Mutex::new(Vec::new()),
            max_pooled,
            max_buf_bytes: max_buf_bytes.max(1),
            reused: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
        }
    }

    /// An empty buffer: pooled if available, freshly allocated otherwise.
    pub fn get(&self) -> Vec<u8> {
        let pooled = self.free.lock().expect("buffer pool poisoned").pop();
        match pooled {
            Some(b) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool (cleared). Oversized or surplus
    /// buffers are dropped.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > self.max_buf_bytes {
            return;
        }
        buf.clear();
        let mut free = self.free.lock().expect("buffer pool poisoned");
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }

    /// `(reused, allocated)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.reused.load(Ordering::Relaxed),
            self.allocated.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_and_cleared() {
        let p = BufferPool::new(2, 1 << 20);
        let mut a = p.get();
        a.extend_from_slice(b"hello");
        let cap = a.capacity();
        p.put(a);
        let b = p.get();
        assert!(b.is_empty(), "pooled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "same allocation came back");
        assert_eq!(p.stats(), (1, 1));
    }

    #[test]
    fn pool_is_bounded_and_drops_oversized() {
        let p = BufferPool::new(1, 16);
        p.put(Vec::with_capacity(8));
        p.put(Vec::with_capacity(8)); // over max_pooled: dropped
        assert_eq!(p.free.lock().unwrap().len(), 1);
        let p2 = BufferPool::new(4, 16);
        p2.put(Vec::with_capacity(64)); // over max_buf_bytes: dropped
        assert_eq!(p2.free.lock().unwrap().len(), 0);
    }
}
