//! A tiny deterministic PRNG (xorshift64*), shared by the fault-injection
//! subsystem and the in-repo property-test harness.
//!
//! Determinism is load-bearing here: the simulator's byte-for-byte
//! reproducibility guarantee extends to injected transient faults, so the
//! generator must be fully specified by its seed with no platform or
//! scheduling dependence. `xorshift64*` (Vigna, "An experimental
//! exploration of Marsaglia's xorshift generators") is small, fast, and
//! passes the statistical tests that matter at the scales we sample.

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped to a
    /// fixed odd constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value uniform in `[0, bound)`; `0` when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction; the tiny modulo bias is irrelevant for
        // simulation fault sampling but the result is still deterministic.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`. `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// A Bernoulli draw with probability `num / den` (saturating).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        if den == 0 {
            return false;
        }
        self.next_below(den) < num
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::new(43);
        assert_ne!(XorShift64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            let v = r.next_below(13);
            assert!(v < 13);
            let u = r.usize_in(5, 9);
            assert!((5..9).contains(&u));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.next_below(0), 0);
        assert_eq!(r.usize_in(3, 3), 3);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
