//! A hashed timing wheel for connection deadlines.
//!
//! The async front end needs thousands of concurrently armed idle/read
//! deadlines that are almost always cancelled (a byte arrives) rather
//! than fired. A [`TimerWheel`] makes `schedule` and `cancel` O(1) and
//! amortizes expiry scans: deadlines hash into `slots` buckets by tick,
//! and [`TimerWheel::advance`] only touches the buckets the elapsed
//! ticks map to. Time is plain `u64` nanoseconds — callers feed it from
//! a [`crate::Clock`], so tests on a simulated clock never sleep.
//!
//! Entries far in the future land in the bucket their final lap maps
//! to; `advance` re-checks each entry's absolute deadline, so a long
//! deadline simply stays parked until its lap comes around.

/// Handle for cancelling a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

struct Entry<T> {
    id: u64,
    deadline_ns: u64,
    token: T,
    cancelled: bool,
}

/// A hashed timing wheel; `T` is the caller's token type (for the async
/// front end, a connection slot).
pub struct TimerWheel<T> {
    tick_ns: u64,
    slots: Vec<Vec<Entry<T>>>,
    /// The wheel's current position, in ticks since time zero.
    cursor_tick: u64,
    next_id: u64,
    armed: usize,
}

impl<T> TimerWheel<T> {
    /// A wheel with `slots` buckets of `tick_ns` granularity. Deadlines
    /// are rounded up to the next tick.
    pub fn new(tick_ns: u64, slots: usize) -> TimerWheel<T> {
        let slots = slots.max(1);
        TimerWheel {
            tick_ns: tick_ns.max(1),
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor_tick: 0,
            next_id: 0,
            armed: 0,
        }
    }

    /// Number of armed (scheduled, not yet fired or cancelled) timers.
    pub fn armed(&self) -> usize {
        self.armed
    }

    fn tick_of(&self, ns: u64) -> u64 {
        ns.div_ceil(self.tick_ns)
    }

    /// Arms a timer for `deadline_ns` (absolute, same epoch as the
    /// caller's clock). A deadline at or before the wheel's current
    /// position fires on the next `advance`.
    pub fn schedule(&mut self, deadline_ns: u64, token: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        let tick = self.tick_of(deadline_ns).max(self.cursor_tick + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            id,
            deadline_ns,
            token,
            cancelled: false,
        });
        self.armed += 1;
        TimerId(id)
    }

    /// Cancels an armed timer. Returns `false` when the id already
    /// fired or was cancelled (cancel is idempotent and O(slot)).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        for slot in &mut self.slots {
            if let Some(e) = slot.iter_mut().find(|e| e.id == id.0 && !e.cancelled) {
                e.cancelled = true;
                self.armed -= 1;
                return true;
            }
        }
        false
    }

    /// The earliest armed absolute deadline, if any — what an event
    /// loop should bound its poll timeout by.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.slots
            .iter()
            .flatten()
            .filter(|e| !e.cancelled)
            .map(|e| e.deadline_ns)
            .min()
    }

    /// Advances the wheel to `now_ns` and returns the tokens of every
    /// timer whose deadline has passed, in deadline order.
    pub fn advance(&mut self, now_ns: u64) -> Vec<T> {
        let target_tick = now_ns / self.tick_ns;
        if target_tick < self.cursor_tick {
            return Vec::new();
        }
        let mut fired: Vec<(u64, u64, T)> = Vec::new();
        let nslots = self.slots.len() as u64;
        // Visit each bucket at most once per advance, even when the
        // elapsed ticks lap the wheel.
        let span = (target_tick - self.cursor_tick).min(nslots);
        for t in 0..=span {
            let slot = ((self.cursor_tick + t) % nslots) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].cancelled {
                    bucket.swap_remove(i);
                } else if bucket[i].deadline_ns <= now_ns {
                    let e = bucket.swap_remove(i);
                    self.armed -= 1;
                    fired.push((e.deadline_ns, e.id, e.token));
                } else {
                    i += 1;
                }
            }
        }
        self.cursor_tick = target_tick;
        // Deadline order (id as the deterministic tie-break).
        fired.sort_by_key(|(d, id, _)| (*d, *id));
        fired.into_iter().map(|(_, _, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_and_only_once() {
        let mut w: TimerWheel<&str> = TimerWheel::new(1_000_000, 64); // 1 ms ticks
        w.schedule(5_000_000, "b");
        w.schedule(2_000_000, "a");
        w.schedule(9_000_000, "c");
        assert_eq!(w.armed(), 3);
        assert_eq!(w.next_deadline_ns(), Some(2_000_000));
        assert_eq!(w.advance(1_000_000), Vec::<&str>::new());
        assert_eq!(w.advance(6_000_000), vec!["a", "b"]);
        assert_eq!(w.armed(), 1);
        assert_eq!(w.advance(6_000_000), Vec::<&str>::new());
        assert_eq!(w.advance(20_000_000), vec!["c"]);
        assert_eq!(w.armed(), 0);
        assert_eq!(w.next_deadline_ns(), None);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut w: TimerWheel<u32> = TimerWheel::new(1_000, 8);
        let a = w.schedule(10_000, 1);
        let b = w.schedule(10_000, 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "cancel is idempotent");
        assert_eq!(w.advance(50_000), vec![2]);
        assert!(!w.cancel(b), "fired timers cannot be cancelled");
    }

    #[test]
    fn long_deadlines_survive_wheel_laps() {
        // 8 slots of 1 µs: a 1 ms deadline laps the wheel ~125 times.
        let mut w: TimerWheel<u8> = TimerWheel::new(1_000, 8);
        w.schedule(1_000_000, 7);
        for step in 1..100 {
            assert_eq!(w.advance(step * 10_000), Vec::<u8>::new(), "step {step}");
        }
        assert_eq!(w.advance(1_000_000), vec![7]);
    }

    #[test]
    fn deadline_in_the_past_fires_on_next_advance() {
        let mut w: TimerWheel<u8> = TimerWheel::new(1_000, 8);
        w.advance(100_000);
        w.schedule(50_000, 1); // already in the past
        assert_eq!(w.advance(101_000), vec![1]);
    }

    #[test]
    fn many_timers_under_churn() {
        let mut w: TimerWheel<usize> = TimerWheel::new(1_000_000, 256);
        let mut g = crate::XorShift64::new(9);
        let mut ids = Vec::new();
        for i in 0..10_000 {
            let dl = 1_000_000 + g.next_below(500_000_000);
            ids.push((w.schedule(dl, i), i % 2 == 0));
        }
        // Cancel every even token.
        for (id, even) in &ids {
            if *even {
                assert!(w.cancel(*id));
            }
        }
        let fired = w.advance(1_000_000_000);
        assert_eq!(fired.len(), 5_000);
        assert!(fired.iter().all(|i| i % 2 == 1));
        assert_eq!(w.armed(), 0);
    }
}
