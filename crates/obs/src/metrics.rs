//! Typed metric registry with JSON and Prometheus text exposition.
//!
//! Three metric kinds, mirroring the Prometheus data model:
//!
//! * **counter** — monotonically increasing `u64`;
//! * **gauge** — a point-in-time `f64`;
//! * **histogram** — cumulative-bucket observation counts with
//!   caller-supplied upper bounds (plus the implicit `+Inf` bucket),
//!   a sum, and a count.
//!
//! Every sample is keyed by `(metric name, sorted label set)`, stored in
//! `BTreeMap`s so both export formats are byte-deterministic. The engine
//! exporter uses the labels `level` (`l1`/`l2`/`l3`), `node`, and
//! `client`; see DESIGN.md "Observability".

use cachemap_util::{Json, ToJson};
use std::collections::BTreeMap;

/// Metric kind, for the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn label(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A histogram sample: bucket counts for the configured upper bounds
/// (the final implicit bucket is `+Inf`), plus sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the
    /// last is the `+Inf` overflow bucket). Non-cumulative internally.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub total: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.total += 1;
    }
}

/// One sample value.
#[derive(Debug, Clone, PartialEq)]
pub enum Sample {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(Histogram),
}

type LabelSet = Vec<(String, String)>;

/// One metric family: kind, help text, and its labelled samples.
#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    help: String,
    samples: BTreeMap<LabelSet, Sample>,
}

/// A registry of metric families with deterministic export.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: BTreeMap<String, Family>,
}

fn canon_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut out: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// True when no families are registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Family {
        self.families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                kind,
                help: help.to_string(),
                samples: BTreeMap::new(),
            })
    }

    /// Adds `v` to the counter `name{labels}` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        let fam = self.family(name, help, MetricKind::Counter);
        let entry = fam
            .samples
            .entry(canon_labels(labels))
            .or_insert(Sample::Counter(0));
        if let Sample::Counter(c) = entry {
            *c += v;
        }
    }

    /// Sets the gauge `name{labels}` to `v`.
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let fam = self.family(name, help, MetricKind::Gauge);
        fam.samples.insert(canon_labels(labels), Sample::Gauge(v));
    }

    /// Observes `v` in the histogram `name{labels}` with the given finite
    /// bucket bounds (used on first touch; later calls reuse them).
    pub fn histogram_observe(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
        v: f64,
    ) {
        let fam = self.family(name, help, MetricKind::Histogram);
        let entry = fam
            .samples
            .entry(canon_labels(labels))
            .or_insert_with(|| Sample::Histogram(Histogram::new(bounds)));
        if let Sample::Histogram(h) = entry {
            h.observe(v);
        }
    }

    /// Preregisters the histogram `name{labels}` with all-zero buckets
    /// so the first scrape already exposes the full family schema
    /// (observations later reuse the declared bounds).
    pub fn histogram_declare(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) {
        let fam = self.family(name, help, MetricKind::Histogram);
        fam.samples
            .entry(canon_labels(labels))
            .or_insert_with(|| Sample::Histogram(Histogram::new(bounds)));
    }

    /// Reads a counter back (for tests and assertions).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let fam = self.families.get(name)?;
        match fam.samples.get(&canon_labels(labels))? {
            Sample::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Reads a gauge back (for tests and assertions — e.g. the router's
    /// per-replica health gauges).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let fam = self.families.get(name)?;
        match fam.samples.get(&canon_labels(labels))? {
            Sample::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (deterministic bytes: families and label sets in sorted order).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.label()));
            for (labels, sample) in &fam.samples {
                match sample {
                    Sample::Counter(c) => {
                        out.push_str(&format!("{name}{} {c}\n", fmt_labels(labels, None)));
                    }
                    Sample::Gauge(g) => {
                        out.push_str(&format!("{name}{} {g}\n", fmt_labels(labels, None)));
                    }
                    Sample::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, &b) in h.bounds.iter().enumerate() {
                            cum += h.counts[i];
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                fmt_labels(labels, Some(&fmt_f64(b)))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            fmt_labels(labels, Some("+Inf")),
                            h.total
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            fmt_labels(labels, None),
                            fmt_f64(h.sum)
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            fmt_labels(labels, None),
                            h.total
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Formats a float the way Prometheus expects (no trailing `.0` noise for
/// integral values beyond what Rust's `Display` already avoids).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn fmt_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        Json::Object(
            self.families
                .iter()
                .map(|(name, fam)| {
                    let samples = Json::Array(
                        fam.samples
                            .iter()
                            .map(|(labels, sample)| {
                                let labels_json = Json::Object(
                                    labels
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                        .collect(),
                                );
                                let value = match sample {
                                    Sample::Counter(c) => Json::UInt(*c),
                                    Sample::Gauge(g) => Json::Float(*g),
                                    Sample::Histogram(h) => Json::object(vec![
                                        (
                                            "bounds",
                                            Json::Array(
                                                h.bounds.iter().map(|&b| Json::Float(b)).collect(),
                                            ),
                                        ),
                                        (
                                            "counts",
                                            Json::Array(
                                                h.counts.iter().map(|&c| Json::UInt(c)).collect(),
                                            ),
                                        ),
                                        ("sum", Json::Float(h.sum)),
                                        ("count", Json::UInt(h.total)),
                                    ]),
                                };
                                Json::object(vec![("labels", labels_json), ("value", value)])
                            })
                            .collect(),
                    );
                    (
                        name.clone(),
                        Json::object(vec![
                            ("kind", Json::Str(fam.kind.label().to_string())),
                            ("help", Json::Str(fam.help.clone())),
                            ("samples", samples),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut r = Registry::new();
        r.counter_add("hits", "h", &[("level", "l2"), ("node", "0")], 3);
        r.counter_add("hits", "h", &[("node", "0"), ("level", "l2")], 2);
        r.counter_add("hits", "h", &[("level", "l2"), ("node", "1")], 1);
        assert_eq!(
            r.counter("hits", &[("level", "l2"), ("node", "0")]),
            Some(5)
        );
        assert_eq!(
            r.counter("hits", &[("level", "l2"), ("node", "1")]),
            Some(1)
        );
    }

    #[test]
    fn prometheus_text_is_deterministic_and_labelled() {
        let mut r = Registry::new();
        r.counter_add(
            "cachemap_cache_hits_total",
            "hits",
            &[("level", "l1"), ("node", "2")],
            7,
        );
        r.gauge_set("cachemap_backlog", "backlog", &[("client", "0")], 1.5);
        let a = r.to_prometheus();
        let b = r.to_prometheus();
        assert_eq!(a, b);
        assert!(a.contains("# TYPE cachemap_cache_hits_total counter"));
        assert!(a.contains("cachemap_cache_hits_total{level=\"l1\",node=\"2\"} 7"));
        assert!(a.contains("cachemap_backlog{client=\"0\"} 1.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let mut r = Registry::new();
        for v in [0.5, 1.0, 3.0, 100.0] {
            r.histogram_observe("lat", "latency", &[1.0, 10.0], &[], v);
        }
        let text = r.to_prometheus();
        assert!(text.contains("lat_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_bucket{le=\"10\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_count 4"));
    }

    #[test]
    fn json_export_contains_families_and_samples() {
        let mut r = Registry::new();
        r.counter_add("n", "count", &[("k", "v")], 1);
        let j = r.to_json();
        let fam = j.get("n").unwrap();
        assert_eq!(fam.get("kind").and_then(Json::as_str), Some("counter"));
        assert_eq!(
            fam.get("samples")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
