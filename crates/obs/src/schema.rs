//! Structural validation of exported obs artifacts.
//!
//! The artifact schema is small enough that a hand-rolled checker keeps
//! us dependency-free; CI runs [`validate_artifact`] against a freshly
//! exported run so schema drift fails the build instead of silently
//! breaking the renderer.

use cachemap_util::Json;

/// Validates an artifact JSON tree against schema version
/// [`crate::SCHEMA_VERSION`]. Returns every problem found, not just the
/// first, so CI output is actionable.
pub fn validate_artifact(json: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    match json.get("meta") {
        None => errs.push("missing \"meta\" object".to_string()),
        Some(meta) => {
            for key in [
                "schema_version",
                "clients",
                "io_nodes",
                "storage_nodes",
                "chunk_bytes",
            ] {
                if meta.get(key).and_then(Json::as_u64).is_none() {
                    errs.push(format!("meta.{key}: missing or not a u64"));
                }
            }
            if meta.get("label").and_then(Json::as_str).is_none() {
                errs.push("meta.label: missing or not a string".to_string());
            }
            match meta.get("policies").and_then(Json::as_array) {
                Some(policies) if policies.len() == 3 => {
                    for (i, p) in policies.iter().enumerate() {
                        if p.as_str().is_none() {
                            errs.push(format!("meta.policies[{i}]: not a string"));
                        }
                    }
                }
                Some(policies) => errs.push(format!(
                    "meta.policies: expected 3 entries (L1, L2, L3), got {}",
                    policies.len()
                )),
                None => errs.push("meta.policies: missing or not an array".to_string()),
            }
            if let Some(v) = meta.get("schema_version").and_then(Json::as_u64) {
                if v != crate::SCHEMA_VERSION {
                    errs.push(format!(
                        "meta.schema_version: {v} (expected {})",
                        crate::SCHEMA_VERSION
                    ));
                }
            }
        }
    }
    match json.get("mapper") {
        None => errs.push("missing \"mapper\" (object or null)".to_string()),
        Some(Json::Null) => {}
        Some(mapper) => validate_profile(mapper, &mut errs),
    }
    match json.get("engine") {
        None => errs.push("missing \"engine\" (object or null)".to_string()),
        Some(Json::Null) => {}
        Some(engine) => validate_engine(engine, &mut errs),
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn validate_profile(json: &Json, errs: &mut Vec<String>) {
    let Some(spans) = json.get("spans").and_then(Json::as_array) else {
        errs.push("mapper.spans: missing or not an array".to_string());
        return;
    };
    for (i, s) in spans.iter().enumerate() {
        validate_span(s, &format!("mapper.spans[{i}]"), errs);
    }
}

fn validate_span(json: &Json, path: &str, errs: &mut Vec<String>) {
    if json.get("name").and_then(Json::as_str).is_none() {
        errs.push(format!("{path}.name: missing or not a string"));
    }
    if json.get("wall_ns").and_then(Json::as_u64).is_none() {
        errs.push(format!("{path}.wall_ns: missing or not a u64"));
    }
    match json.get("counts") {
        Some(Json::Object(pairs)) => {
            for (k, v) in pairs {
                if v.as_u64().is_none() {
                    errs.push(format!("{path}.counts.{k}: not a u64"));
                }
            }
        }
        _ => errs.push(format!("{path}.counts: missing or not an object")),
    }
    match json.get("children").and_then(Json::as_array) {
        Some(children) => {
            for (i, c) in children.iter().enumerate() {
                validate_span(c, &format!("{path}.children[{i}]"), errs);
            }
        }
        None => errs.push(format!("{path}.children: missing or not an array")),
    }
}

fn validate_engine(json: &Json, errs: &mut Vec<String>) {
    if json.get("bucket_ns").and_then(Json::as_u64).is_none() {
        errs.push("engine.bucket_ns: missing or not a u64".to_string());
    }
    check_rows(json, "nodes", errs, |row, path, errs| {
        match row.get("level").and_then(Json::as_str) {
            Some("l1" | "l2" | "l3") => {}
            _ => errs.push(format!("{path}.level: not one of l1/l2/l3")),
        }
        require_u64(row, path, "node", errs);
        check_buckets(
            row,
            path,
            &["b", "hits", "misses", "evictions", "writebacks", "queue_ns"],
            errs,
        );
    });
    check_rows(json, "clients", errs, |row, path, errs| {
        require_u64(row, path, "client", errs);
        check_buckets(row, path, &["b", "io_ns", "compute_ns", "accesses"], errs);
    });
    check_rows(json, "events", errs, |row, path, errs| {
        require_u64(row, path, "t_ns", errs);
        if row.get("kind").and_then(Json::as_str).is_none() {
            errs.push(format!("{path}.kind: missing or not a string"));
        }
        if row.get("subject").and_then(Json::as_i64).is_none() {
            errs.push(format!("{path}.subject: missing or not an i64"));
        }
    });
    check_rows(json, "links", errs, |row, path, errs| {
        match row.get("hop").and_then(Json::as_str) {
            Some("client-io" | "io-storage" | "storage-peer") => {}
            _ => errs.push(format!("{path}.hop: not a known hop label")),
        }
        for key in ["src", "dst", "bytes"] {
            require_u64(row, path, key, errs);
        }
    });
    check_rows(json, "hot_chunks", errs, |row, path, errs| {
        for key in ["chunk", "count"] {
            require_u64(row, path, key, errs);
        }
    });
}

fn check_rows(
    json: &Json,
    key: &str,
    errs: &mut Vec<String>,
    f: impl Fn(&Json, &str, &mut Vec<String>),
) {
    match json.get(key).and_then(Json::as_array) {
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                f(row, &format!("engine.{key}[{i}]"), errs);
            }
        }
        None => errs.push(format!("engine.{key}: missing or not an array")),
    }
}

fn check_buckets(row: &Json, path: &str, fields: &[&str], errs: &mut Vec<String>) {
    match row.get("buckets").and_then(Json::as_array) {
        Some(buckets) => {
            for (i, b) in buckets.iter().enumerate() {
                for key in fields {
                    require_u64(b, &format!("{path}.buckets[{i}]"), key, errs);
                }
            }
        }
        None => errs.push(format!("{path}.buckets: missing or not an array")),
    }
}

fn require_u64(json: &Json, path: &str, key: &str, errs: &mut Vec<String>) {
    if json.get(key).and_then(Json::as_u64).is_none() {
        errs.push(format!("{path}.{key}: missing or not a u64"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ArtifactMeta, ObsArtifact};
    use crate::series::{Level, Recorder};
    use crate::span::Profile;
    use cachemap_util::ToJson;

    fn valid_artifact_json() -> Json {
        let mut prof = Profile::enabled();
        prof.scope("map", |p| p.count("chunks", 2));
        let mut rec = Recorder::enabled(100);
        rec.cache_access(Level::L1, 0, 5, true);
        rec.event(5, "retry", 3);
        ObsArtifact {
            meta: ArtifactMeta {
                schema_version: crate::SCHEMA_VERSION,
                label: "t".to_string(),
                clients: 1,
                io_nodes: 1,
                storage_nodes: 1,
                chunk_bytes: 64,
                policies: ArtifactMeta::lru_policies(),
            },
            mapper: Some(prof),
            engine: rec.finish(),
        }
        .to_json()
    }

    #[test]
    fn valid_artifact_passes() {
        assert!(validate_artifact(&valid_artifact_json()).is_ok());
    }

    #[test]
    fn missing_sections_are_all_reported() {
        let errs = validate_artifact(&Json::object(vec![])).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("meta")));
        assert!(errs.iter().any(|e| e.contains("mapper")));
        assert!(errs.iter().any(|e| e.contains("engine")));
    }

    #[test]
    fn missing_policy_vector_is_caught() {
        let mut json = valid_artifact_json();
        if let Json::Object(pairs) = &mut json {
            let meta = pairs.iter_mut().find(|(k, _)| k == "meta").unwrap();
            if let Json::Object(mpairs) = &mut meta.1 {
                mpairs.retain(|(k, _)| k != "policies");
            }
        }
        let errs = validate_artifact(&json).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("meta.policies")));
        // Wrong arity is reported too.
        let mut json = valid_artifact_json();
        if let Json::Object(pairs) = &mut json {
            let meta = pairs.iter_mut().find(|(k, _)| k == "meta").unwrap();
            if let Json::Object(mpairs) = &mut meta.1 {
                for (k, v) in mpairs.iter_mut() {
                    if k == "policies" {
                        *v = Json::Array(vec![Json::Str("lru".into()), Json::Str("lru".into())]);
                    }
                }
            }
        }
        let errs = validate_artifact(&json).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("expected 3 entries")));
    }

    #[test]
    fn bad_level_label_is_caught() {
        let mut json = valid_artifact_json();
        // Corrupt the first node row's level in place.
        if let Json::Object(pairs) = &mut json {
            let engine = pairs.iter_mut().find(|(k, _)| k == "engine").unwrap();
            if let Json::Object(epairs) = &mut engine.1 {
                let nodes = epairs.iter_mut().find(|(k, _)| k == "nodes").unwrap();
                if let Json::Array(rows) = &mut nodes.1 {
                    if let Json::Object(row) = &mut rows[0] {
                        row.iter_mut().find(|(k, _)| k == "level").unwrap().1 =
                            Json::Str("l9".to_string());
                    }
                }
            }
        }
        let errs = validate_artifact(&json).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("level")));
    }
}
