//! Deterministic observability for the cachemap reproduction.
//!
//! The paper's figures are aggregate numbers; this crate lets us see
//! *inside* a run without disturbing it:
//!
//! * [`span`] — hierarchical wall-clock phase profiles for the mapping
//!   pipeline (tagging → similarity graph → per-level clustering →
//!   balancing → scheduling). Wall-clock values are excluded from golden
//!   comparisons; the span *counters* are deterministic.
//! * [`series`] — a [`Recorder`] the simulation engine feeds with
//!   per-node per-level hit/miss/eviction/queue observations, folded
//!   into fixed-width buckets of *simulated* time, plus fault/failover/
//!   retry events and per-link byte tallies on the same timeline. Fully
//!   reproducible for a fixed seed.
//! * [`metrics`] — a typed counter/gauge/histogram [`Registry`] with
//!   JSON and Prometheus text exposition (labels `level`, `node`,
//!   `client`).
//! * [`artifact`] — the `*.obs.json` container tying a mapper profile
//!   and an engine snapshot together; [`schema`] validates it in CI.
//! * [`trace`] — request-scoped service-path traces (deterministic ids,
//!   per-stage latency attribution) and a bounded flight recorder that
//!   dumps recent traces to disk on anomaly triggers.
//!
//! The default [`Recorder`] is disabled and drops everything through an
//! inlined `None` check, so instrumented code paths cost one branch per
//! observation when observability is off — runs with and without a
//! disabled recorder are bit-identical.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod metrics;
pub mod schema;
pub mod series;
pub mod span;
pub mod trace;

pub use artifact::{ArtifactMeta, ObsArtifact, SCHEMA_VERSION};
pub use metrics::{MetricKind, Registry};
pub use schema::validate_artifact;
pub use series::{
    BucketStats, ClientBucketStats, EngineObs, Level, LinkHop, ObsEvent, Recorder, HOT_CHUNKS_CAP,
};
pub use span::{Profile, SpanNode};
pub use trace::{
    validate_flight_record, validate_trace, FlightRecorder, Stage, TraceId, TraceRecord,
    FLIGHT_SCHEMA,
};
