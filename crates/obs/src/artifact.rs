//! The on-disk obs artifact: mapper profile + engine series + platform
//! metadata, with JSON round-tripping and a derived Prometheus view.

use crate::metrics::Registry;
use crate::series::EngineObs;
use crate::span::Profile;
use cachemap_util::{Json, ToJson};

/// Version stamp written into every artifact; bumped on schema changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Platform shape recorded alongside the series so the renderer can lay
/// out heatmap tables without re-reading the run configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Artifact schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Free-form run label, e.g. `"contour/inter-scheduled"`.
    pub label: String,
    /// Number of client nodes (L1 caches).
    pub clients: usize,
    /// Number of I/O nodes (L2 caches).
    pub io_nodes: usize,
    /// Number of storage nodes (L3 caches).
    pub storage_nodes: usize,
    /// Chunk size in bytes.
    pub chunk_bytes: u64,
    /// Eviction-policy labels per cache level, indexed `[L1, L2, L3]`
    /// (e.g. `"lru"`, `"slru"`); stamps the per-level Prometheus series.
    pub policies: [String; 3],
}

impl ArtifactMeta {
    /// The paper's all-LRU policy vector (also the parse default for
    /// artifacts written before policies were recorded).
    pub fn lru_policies() -> [String; 3] {
        ["lru".to_string(), "lru".to_string(), "lru".to_string()]
    }

    /// The recorded policy label at one cache level.
    pub fn policy_for(&self, level: crate::series::Level) -> &str {
        match level {
            crate::series::Level::L1 => &self.policies[0],
            crate::series::Level::L2 => &self.policies[1],
            crate::series::Level::L3 => &self.policies[2],
        }
    }
}

impl ToJson for ArtifactMeta {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::UInt(self.schema_version)),
            ("label", Json::Str(self.label.clone())),
            ("clients", Json::UInt(self.clients as u64)),
            ("io_nodes", Json::UInt(self.io_nodes as u64)),
            ("storage_nodes", Json::UInt(self.storage_nodes as u64)),
            ("chunk_bytes", Json::UInt(self.chunk_bytes)),
            (
                "policies",
                Json::Array(self.policies.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
        ])
    }
}

impl ArtifactMeta {
    fn from_json(json: &Json) -> Result<ArtifactMeta, String> {
        let u = |k: &str| {
            json.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("meta: missing \"{k}\""))
        };
        // Pre-zoo artifacts carry no policy vector; they were all LRU.
        let policies = match json.get("policies") {
            None => ArtifactMeta::lru_policies(),
            Some(Json::Array(items)) if items.len() == 3 => {
                let mut out = ArtifactMeta::lru_policies();
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = item
                        .as_str()
                        .ok_or("meta: policies entries must be strings")?
                        .to_string();
                }
                out
            }
            Some(_) => return Err("meta: \"policies\" must be an array of 3 strings".into()),
        };
        Ok(ArtifactMeta {
            schema_version: u("schema_version")?,
            label: json
                .get("label")
                .and_then(Json::as_str)
                .ok_or("meta: missing \"label\"")?
                .to_string(),
            clients: u("clients")? as usize,
            io_nodes: u("io_nodes")? as usize,
            storage_nodes: u("storage_nodes")? as usize,
            chunk_bytes: u("chunk_bytes")?,
            policies,
        })
    }
}

/// A complete exported observation of one run.
#[derive(Debug, Clone)]
pub struct ObsArtifact {
    /// Platform metadata.
    pub meta: ArtifactMeta,
    /// Mapper phase profile (wall-clock; absent for engine-only runs).
    pub mapper: Option<Profile>,
    /// Engine metric series (absent for mapper-only runs).
    pub engine: Option<EngineObs>,
}

impl ObsArtifact {
    /// Parses an artifact from JSON text.
    pub fn parse(text: &str) -> Result<ObsArtifact, String> {
        let json = cachemap_util::json::parse(text).map_err(|e| format!("obs artifact: {e}"))?;
        ObsArtifact::from_json(&json)
    }

    /// Rebuilds an artifact from its [`ToJson`] form.
    pub fn from_json(json: &Json) -> Result<ObsArtifact, String> {
        let meta =
            ArtifactMeta::from_json(json.get("meta").ok_or("obs artifact: missing \"meta\"")?)?;
        if meta.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "obs artifact: schema version {} (expected {SCHEMA_VERSION})",
                meta.schema_version
            ));
        }
        let mapper = match json.get("mapper") {
            None | Some(Json::Null) => None,
            Some(m) => Some(Profile::from_json(m)?),
        };
        let engine = match json.get("engine") {
            None | Some(Json::Null) => None,
            Some(e) => Some(EngineObs::from_json(e)?),
        };
        Ok(ObsArtifact {
            meta,
            mapper,
            engine,
        })
    }

    /// Derives a metric registry (and hence a Prometheus exposition) from
    /// the engine series. Counter totals collapse the time dimension;
    /// the hot-chunk table becomes an access-count histogram.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        let Some(engine) = &self.engine else {
            return reg;
        };
        for ((level, node), series) in &engine.nodes {
            let node_s = node.to_string();
            let labels = [("level", level.label()), ("node", node_s.as_str())];
            // Eviction-shaped series additionally carry the replacement
            // policy that produced them, so dashboards can split the
            // zoo without re-reading run configs.
            let policy_labels = [
                ("level", level.label()),
                ("node", node_s.as_str()),
                ("policy", self.meta.policy_for(*level)),
            ];
            let mut hits = 0u64;
            let mut misses = 0u64;
            let mut evictions = 0u64;
            let mut writebacks = 0u64;
            let mut queue_ns = 0u64;
            for s in series.values() {
                hits += s.hits;
                misses += s.misses;
                evictions += s.evictions;
                writebacks += s.writebacks;
                queue_ns += s.queue_ns;
            }
            reg.counter_add(
                "cachemap_cache_hits_total",
                "Cache hits per level and node",
                &labels,
                hits,
            );
            reg.counter_add(
                "cachemap_cache_misses_total",
                "Cache misses per level and node",
                &labels,
                misses,
            );
            reg.counter_add(
                "cachemap_cache_evictions_total",
                "Cache evictions (clean + dirty) per level, node, and policy",
                &policy_labels,
                evictions,
            );
            reg.counter_add(
                "cachemap_cache_writebacks_total",
                "Dirty-eviction writebacks per level, node, and policy",
                &policy_labels,
                writebacks,
            );
            reg.counter_add(
                "cachemap_queue_wait_ns_total",
                "Simulated ns requests spent queued per level and node",
                &labels,
                queue_ns,
            );
        }
        for (client, series) in &engine.clients {
            let client_s = client.to_string();
            let labels = [("client", client_s.as_str())];
            let mut io_ns = 0u64;
            let mut compute_ns = 0u64;
            let mut accesses = 0u64;
            for s in series.values() {
                io_ns += s.io_ns;
                compute_ns += s.compute_ns;
                accesses += s.accesses;
            }
            reg.counter_add(
                "cachemap_client_io_ns_total",
                "Simulated I/O ns per client",
                &labels,
                io_ns,
            );
            reg.counter_add(
                "cachemap_client_compute_ns_total",
                "Simulated compute ns per client",
                &labels,
                compute_ns,
            );
            reg.counter_add(
                "cachemap_client_accesses_total",
                "Chunk accesses issued per client",
                &labels,
                accesses,
            );
        }
        for ((hop, src, dst), bytes) in &engine.links {
            let src_s = src.to_string();
            let dst_s = dst.to_string();
            reg.counter_add(
                "cachemap_net_bytes_total",
                "Bytes transferred per network link",
                &[
                    ("hop", hop.label()),
                    ("src", src_s.as_str()),
                    ("dst", dst_s.as_str()),
                ],
                *bytes,
            );
        }
        for e in &engine.events {
            reg.counter_add(
                "cachemap_events_total",
                "Engine timeline events by kind",
                &[("kind", e.kind.as_str())],
                1,
            );
        }
        for &(_, count) in &engine.hot_chunks {
            reg.histogram_observe(
                "cachemap_chunk_accesses",
                "Access-count distribution over the hot-chunk table",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
                &[],
                count as f64,
            );
        }
        reg
    }

    /// Prometheus text exposition of the derived registry.
    pub fn to_prometheus(&self) -> String {
        self.registry().to_prometheus()
    }
}

impl ToJson for ObsArtifact {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("meta", self.meta.to_json()),
            (
                "mapper",
                match &self.mapper {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "engine",
                match &self.engine {
                    Some(e) => e.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Level, LinkHop, Recorder};

    fn sample_artifact() -> ObsArtifact {
        let mut prof = Profile::enabled();
        prof.scope("map", |p| {
            p.scope("cluster", |p| p.count("merges", 9));
        });
        let mut rec = Recorder::enabled(1000);
        rec.cache_access(Level::L1, 0, 10, true);
        rec.cache_access(Level::L2, 1, 1200, false);
        rec.eviction(Level::L2, 1, 1300, true);
        rec.client_io(0, 10, 500);
        rec.link_transfer(LinkHop::ClientIo, 0, 1, 1024);
        rec.event(1200, "failover", 0);
        rec.chunk_access(3);
        ObsArtifact {
            meta: ArtifactMeta {
                schema_version: SCHEMA_VERSION,
                label: "test/run".to_string(),
                clients: 4,
                io_nodes: 2,
                storage_nodes: 1,
                chunk_bytes: 1024,
                policies: ["slru".to_string(), "lru".to_string(), "gdsf".to_string()],
            },
            mapper: Some(prof),
            engine: rec.finish(),
        }
    }

    #[test]
    fn round_trip_through_text_is_stable() {
        let a = sample_artifact();
        let text = a.to_json().to_string_pretty();
        let b = ObsArtifact::parse(&text).unwrap();
        assert_eq!(text, b.to_json().to_string_pretty());
        assert_eq!(b.meta.label, "test/run");
        assert!(b.mapper.is_some());
        assert_eq!(b.engine.as_ref().unwrap().events.len(), 1);
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let mut a = sample_artifact();
        a.meta.schema_version = SCHEMA_VERSION + 1;
        let text = a.to_json().to_string_compact();
        assert!(ObsArtifact::parse(&text).is_err());
    }

    #[test]
    fn prometheus_export_has_documented_labels() {
        let text = sample_artifact().to_prometheus();
        assert!(text.contains("cachemap_cache_hits_total{level=\"l1\",node=\"0\"} 1"));
        assert!(text.contains("cachemap_cache_misses_total{level=\"l2\",node=\"1\"} 1"));
        // Eviction-shaped series carry the per-level policy label.
        assert!(text
            .contains("cachemap_cache_writebacks_total{level=\"l2\",node=\"1\",policy=\"lru\"} 1"));
        assert!(text
            .contains("cachemap_cache_evictions_total{level=\"l2\",node=\"1\",policy=\"lru\"} 1"));
        assert!(text.contains("cachemap_client_io_ns_total{client=\"0\"} 500"));
        assert!(
            text.contains("cachemap_net_bytes_total{dst=\"1\",hop=\"client-io\",src=\"0\"} 1024")
        );
        assert!(text.contains("cachemap_events_total{kind=\"failover\"} 1"));
        assert!(text.contains("cachemap_chunk_accesses_bucket{le=\"1\"} 1"));
    }

    #[test]
    fn policy_vector_roundtrips_and_defaults_to_lru() {
        let a = sample_artifact();
        let b = ObsArtifact::parse(&a.to_json().to_string_compact()).unwrap();
        assert_eq!(b.meta.policies, a.meta.policies);
        assert_eq!(b.meta.policy_for(Level::L1), "slru");
        assert_eq!(b.meta.policy_for(Level::L3), "gdsf");
        // A pre-zoo artifact (no policies key) parses as all-LRU.
        let mut json = a.to_json();
        if let Json::Object(pairs) = &mut json {
            if let Some((_, Json::Object(meta))) = pairs.iter_mut().find(|(k, _)| k == "meta") {
                meta.retain(|(k, _)| k != "policies");
            }
        }
        let legacy = ObsArtifact::from_json(&json).unwrap();
        assert_eq!(legacy.meta.policies, ArtifactMeta::lru_policies());
        // A malformed vector is rejected, not defaulted.
        let mut bad = a.to_json();
        if let Json::Object(pairs) = &mut bad {
            if let Some((_, Json::Object(meta))) = pairs.iter_mut().find(|(k, _)| k == "meta") {
                for (k, v) in meta.iter_mut() {
                    if k == "policies" {
                        *v = Json::Array(vec![Json::Str("lru".into())]);
                    }
                }
            }
        }
        assert!(ObsArtifact::from_json(&bad).is_err());
    }

    #[test]
    fn engine_only_artifact_roundtrips_with_null_mapper() {
        let mut a = sample_artifact();
        a.mapper = None;
        let text = a.to_json().to_string_compact();
        let b = ObsArtifact::parse(&text).unwrap();
        assert!(b.mapper.is_none());
        assert!(b.engine.is_some());
    }
}
