//! Hierarchical span profiles (wall-clock phase accounting).
//!
//! A [`Profile`] is a tree of named spans. Entering the same name twice
//! under the same parent *resumes* the existing span rather than opening
//! a sibling, so a recursive pipeline (e.g. one clustering call per
//! hierarchy-tree node) accumulates into one span per phase. Each span
//! carries wall-clock time plus named integer counters (merge counts,
//! dot-product totals, balance moves, …).
//!
//! Counters are fully deterministic for a fixed input; wall-clock
//! durations are not, and golden comparisons must exclude them (the
//! `wall_ns` fields). A disabled profile ([`Profile::disabled`]) makes
//! every method an early-returning no-op.

use cachemap_util::{Json, ToJson};
use std::time::Instant;

/// One node of the span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (phase label).
    pub name: String,
    /// Accumulated wall-clock time, ns. Excluded from golden outputs.
    pub wall_ns: u64,
    /// Named counters, in first-touch order.
    pub counts: Vec<(String, u64)>,
    /// Child span indices into the profile's node table.
    pub children: Vec<usize>,
    started: Option<Instant>,
}

impl SpanNode {
    fn new(name: &str) -> Self {
        SpanNode {
            name: name.to_string(),
            wall_ns: 0,
            counts: Vec::new(),
            children: Vec::new(),
            started: None,
        }
    }

    /// Looks a counter up by name.
    pub fn count(&self, key: &str) -> Option<u64> {
        self.counts.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// A hierarchical phase profile.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    enabled: bool,
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl Profile {
    /// A profile that records spans and counters.
    pub fn enabled() -> Self {
        Profile {
            enabled: true,
            ..Profile::default()
        }
    }

    /// A profile on which every method is a no-op.
    pub fn disabled() -> Self {
        Profile::default()
    }

    /// Whether this profile records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Root span indices (use [`Profile::node`] to resolve them).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Resolves a span index.
    pub fn node(&self, idx: usize) -> &SpanNode {
        &self.nodes[idx]
    }

    /// Finds a root span by name.
    pub fn root_named(&self, name: &str) -> Option<&SpanNode> {
        self.roots
            .iter()
            .map(|&i| &self.nodes[i])
            .find(|n| n.name == name)
    }

    /// Opens (or resumes) the child span `name` under the current span.
    pub fn push(&mut self, name: &str) {
        if !self.enabled {
            return;
        }
        let siblings = match self.stack.last() {
            Some(&p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let existing = siblings
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        let idx = match existing {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(SpanNode::new(name));
                match self.stack.last() {
                    Some(&p) => self.nodes[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.nodes[idx].started = Some(Instant::now());
        self.stack.push(idx);
    }

    /// Closes the current span, accumulating its wall-clock time.
    pub fn pop(&mut self) {
        if !self.enabled {
            return;
        }
        if let Some(idx) = self.stack.pop() {
            if let Some(start) = self.nodes[idx].started.take() {
                self.nodes[idx].wall_ns += start.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Runs `f` inside the span `name` (push/pop pair).
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Profile) -> R) -> R {
        self.push(name);
        let r = f(self);
        self.pop();
        r
    }

    /// Adds `delta` to the counter `key` of the current span.
    pub fn count(&mut self, key: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let Some(&idx) = self.stack.last() else {
            return;
        };
        let counts = &mut self.nodes[idx].counts;
        match counts.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v += delta,
            None => counts.push((key.to_string(), delta)),
        }
    }

    /// Merges another profile's span tree under the current span,
    /// resuming same-named spans exactly like [`Profile::push`] would
    /// and summing `wall_ns` and counters.
    ///
    /// This is how parallel fan-out stays observable *and*
    /// deterministic: each subtree task records into its own fresh
    /// `Profile`, and the caller absorbs the task profiles **in input
    /// order**, so span order, counter first-touch order, and counter
    /// totals are identical to the sequential recursion. Wall-clock
    /// sums across absorbed siblings overlap in real time, so a
    /// parent's `wall_ns` may be less than the sum of its children —
    /// the renderer's percentages become CPU-time-like under a parallel
    /// run (golden comparisons exclude `wall_ns` either way).
    pub fn absorb(&mut self, other: &Profile) {
        if !self.enabled {
            return;
        }
        for &r in &other.roots {
            self.absorb_span(other, r, self.stack.last().copied());
        }
    }

    fn absorb_span(&mut self, other: &Profile, oidx: usize, parent: Option<usize>) {
        let on = &other.nodes[oidx];
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let existing = siblings
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == on.name);
        let idx = match existing {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(SpanNode::new(&on.name));
                match parent {
                    Some(p) => self.nodes[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.nodes[idx].wall_ns += on.wall_ns;
        for (k, v) in &on.counts {
            let counts = &mut self.nodes[idx].counts;
            match counts.iter_mut().find(|(ck, _)| ck == k) {
                Some((_, cv)) => *cv += *v,
                None => counts.push((k.clone(), *v)),
            }
        }
        for &c in &on.children {
            self.absorb_span(other, c, Some(idx));
        }
    }

    fn span_json(&self, idx: usize) -> Json {
        let n = &self.nodes[idx];
        Json::object(vec![
            ("name", Json::Str(n.name.clone())),
            ("wall_ns", Json::UInt(n.wall_ns)),
            (
                "counts",
                Json::Object(
                    n.counts
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "children",
                Json::Array(n.children.iter().map(|&c| self.span_json(c)).collect()),
            ),
        ])
    }

    /// Rebuilds a profile from its [`ToJson`] form (for the renderer).
    pub fn from_json(json: &Json) -> Result<Profile, String> {
        let spans = json
            .get("spans")
            .and_then(Json::as_array)
            .ok_or("profile: missing \"spans\" array")?;
        let mut p = Profile::enabled();
        for s in spans {
            let idx = p.load_span(s, None)?;
            p.roots.push(idx);
        }
        Ok(p)
    }

    fn load_span(&mut self, json: &Json, parent: Option<usize>) -> Result<usize, String> {
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or("span: missing \"name\"")?;
        let wall_ns = json
            .get("wall_ns")
            .and_then(Json::as_u64)
            .ok_or("span: missing \"wall_ns\"")?;
        let mut node = SpanNode::new(name);
        node.wall_ns = wall_ns;
        if let Some(Json::Object(pairs)) = json.get("counts") {
            for (k, v) in pairs {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("span count {k}: not a u64"))?;
                node.counts.push((k.clone(), v));
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(node);
        if let Some(p) = parent {
            self.nodes[p].children.push(idx);
        }
        if let Some(children) = json.get("children").and_then(Json::as_array) {
            for c in children {
                self.load_span(c, Some(idx))?;
            }
        }
        Ok(idx)
    }

    /// Renders the span tree as indented text: wall-clock, share of the
    /// parent span, and counters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &r in &self.roots {
            self.render_span(&mut out, r, 0, self.nodes[r].wall_ns);
        }
        out
    }

    fn render_span(&self, out: &mut String, idx: usize, depth: usize, parent_ns: u64) {
        let n = &self.nodes[idx];
        let pct = if parent_ns == 0 {
            100.0
        } else {
            n.wall_ns as f64 * 100.0 / parent_ns as f64
        };
        let counts = n
            .counts
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{:indent$}{:<24} {:>10.3} ms {:>5.1}%  {}\n",
            "",
            n.name,
            n.wall_ns as f64 / 1e6,
            pct,
            counts,
            indent = depth * 2
        ));
        for &c in &n.children {
            self.render_span(out, c, depth + 1, n.wall_ns);
        }
    }
}

impl ToJson for Profile {
    fn to_json(&self) -> Json {
        Json::object(vec![(
            "spans",
            Json::Array(self.roots.iter().map(|&r| self.span_json(r)).collect()),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_records_nothing() {
        let mut p = Profile::disabled();
        p.push("a");
        p.count("x", 3);
        p.pop();
        assert!(p.is_empty());
        assert!(!p.is_enabled());
    }

    #[test]
    fn repeated_push_resumes_the_same_span() {
        let mut p = Profile::enabled();
        for _ in 0..3 {
            p.push("cluster");
            p.push("level:io");
            p.count("merges", 2);
            p.pop();
            p.pop();
        }
        assert_eq!(p.roots().len(), 1);
        let root = p.node(p.roots()[0]);
        assert_eq!(root.name, "cluster");
        assert_eq!(root.children.len(), 1);
        let child = p.node(root.children[0]);
        assert_eq!(child.count("merges"), Some(6));
    }

    #[test]
    fn scope_is_push_pop() {
        let mut p = Profile::enabled();
        let v = p.scope("outer", |p| {
            p.count("n", 1);
            p.scope("inner", |p| p.count("n", 5));
            42
        });
        assert_eq!(v, 42);
        let outer = p.root_named("outer").unwrap();
        assert_eq!(outer.count("n"), Some(1));
    }

    #[test]
    fn json_round_trip_preserves_counts_and_structure() {
        let mut p = Profile::enabled();
        p.scope("map", |p| {
            p.count("chunks", 12);
            p.scope("tagging", |p| p.count("nests", 1));
            p.scope("cluster", |p| p.count("merges", 7));
        });
        let json = p.to_json();
        let q = Profile::from_json(&json).unwrap();
        let root = q.root_named("map").unwrap();
        assert_eq!(root.count("chunks"), Some(12));
        assert_eq!(root.children.len(), 2);
        assert_eq!(q.node(root.children[1]).count("merges"), Some(7));
        // Deterministic serialization of the reparsed profile.
        assert_eq!(json.to_string_compact(), q.to_json().to_string_compact());
    }

    #[test]
    fn render_lists_every_phase() {
        let mut p = Profile::enabled();
        p.scope("map", |p| {
            p.scope("tagging", |p| p.count("chunks", 3));
        });
        let text = p.render();
        assert!(text.contains("map"));
        assert!(text.contains("tagging"));
        assert!(text.contains("chunks=3"));
    }

    #[test]
    fn absorb_matches_sequential_resume_semantics() {
        // Sequential reference: three recursions resuming the same span.
        let mut seq = Profile::enabled();
        seq.scope("cluster", |p| {
            for i in 0..3u64 {
                p.scope("level:io", |p| {
                    p.count("items", 4);
                    p.scope("similarity-graph", |p| p.count("pairs", 6 + i));
                });
            }
        });
        // Parallel shape: each recursion records into its own profile,
        // absorbed in input order.
        let mut par = Profile::enabled();
        par.scope("cluster", |p| {
            for i in 0..3u64 {
                let mut sub = Profile::enabled();
                sub.scope("level:io", |p| {
                    p.count("items", 4);
                    p.scope("similarity-graph", |p| p.count("pairs", 6 + i));
                });
                p.absorb(&sub);
            }
        });
        let strip = |p: &Profile| {
            let mut q = Profile::from_json(&p.to_json()).unwrap();
            fn zero(q: &mut Profile) {
                for n in &mut q.nodes {
                    n.wall_ns = 0;
                }
            }
            zero(&mut q);
            q.to_json().to_string_compact()
        };
        assert_eq!(strip(&seq), strip(&par));
        let io = {
            let root = par.root_named("cluster").unwrap();
            par.node(root.children[0]).clone()
        };
        assert_eq!(io.count("items"), Some(12));
        assert_eq!(par.node(io.children[0]).count("pairs"), Some(6 + 7 + 8));
    }

    #[test]
    fn absorb_into_disabled_or_at_top_level_is_safe() {
        let mut sub = Profile::enabled();
        sub.scope("a", |p| p.count("n", 1));
        let mut off = Profile::disabled();
        off.absorb(&sub);
        assert!(off.is_empty());
        // No open span: absorbed roots become roots.
        let mut top = Profile::enabled();
        top.absorb(&sub);
        top.absorb(&sub);
        assert_eq!(top.root_named("a").unwrap().count("n"), Some(2));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Profile::from_json(&Json::object(vec![])).is_err());
        let bad = Json::object(vec![("spans", Json::Array(vec![Json::object(vec![])]))]);
        assert!(Profile::from_json(&bad).is_err());
    }
}
