//! Simulated-time metric series: the engine-side [`Recorder`] and the
//! [`EngineObs`] snapshot it produces.
//!
//! The engine stamps every observation with its deterministic simulated
//! clock; the recorder folds observations into fixed-width buckets
//! (`t_ns / bucket_ns`). Because the clock is simulated, the resulting
//! series is byte-for-byte reproducible for a fixed seed — unlike the
//! wall-clock spans in [`crate::span`].
//!
//! The default recorder is disabled ([`Recorder::disabled`]): its inner
//! state is `None` and every recording method is an inlined early
//! return, so an uninstrumented run pays one branch per call site.

use cachemap_util::{Json, ToJson};
use std::collections::BTreeMap;

/// Cache level of an observed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Client-side cache.
    L1,
    /// I/O-node cache.
    L2,
    /// Storage-node cache.
    L3,
}

impl Level {
    /// Prometheus / JSON label for the level.
    pub fn label(&self) -> &'static str {
        match self {
            Level::L1 => "l1",
            Level::L2 => "l2",
            Level::L3 => "l3",
        }
    }

    /// Parses a level label back.
    pub fn from_label(s: &str) -> Option<Level> {
        match s {
            "l1" => Some(Level::L1),
            "l2" => Some(Level::L2),
            "l3" => Some(Level::L3),
            _ => None,
        }
    }
}

/// Network hop class of a recorded transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkHop {
    /// Client ⇄ I/O node.
    ClientIo,
    /// I/O node ⇄ storage node.
    IoStorage,
    /// Storage node ⇄ peer storage node (stripe forwarding).
    StoragePeer,
}

impl LinkHop {
    /// Prometheus / JSON label for the hop.
    pub fn label(&self) -> &'static str {
        match self {
            LinkHop::ClientIo => "client-io",
            LinkHop::IoStorage => "io-storage",
            LinkHop::StoragePeer => "storage-peer",
        }
    }

    /// Parses a hop label back.
    pub fn from_label(s: &str) -> Option<LinkHop> {
        match s {
            "client-io" => Some(LinkHop::ClientIo),
            "io-storage" => Some(LinkHop::IoStorage),
            "storage-peer" => Some(LinkHop::StoragePeer),
            _ => None,
        }
    }
}

/// Per-bucket cache-node statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BucketStats {
    /// Cache hits in this bucket.
    pub hits: u64,
    /// Cache misses in this bucket.
    pub misses: u64,
    /// Evictions (clean + dirty) in this bucket.
    pub evictions: u64,
    /// Dirty evictions that triggered a writeback.
    pub writebacks: u64,
    /// Total time requests spent queued behind this node, ns.
    pub queue_ns: u64,
}

impl BucketStats {
    /// Accumulates another bucket into this one.
    pub fn add(&mut self, o: &BucketStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
        self.writebacks += o.writebacks;
        self.queue_ns += o.queue_ns;
    }
}

/// Per-bucket client activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientBucketStats {
    /// Simulated time spent in I/O, ns.
    pub io_ns: u64,
    /// Simulated time spent computing, ns.
    pub compute_ns: u64,
    /// Chunk accesses issued.
    pub accesses: u64,
}

impl ClientBucketStats {
    /// Accumulates another bucket into this one.
    pub fn add(&mut self, o: &ClientBucketStats) {
        self.io_ns += o.io_ns;
        self.compute_ns += o.compute_ns;
        self.accesses += o.accesses;
    }
}

/// A timestamped engine event (fault, failover, retry, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Simulated timestamp, ns.
    pub t_ns: u64,
    /// Event kind: `io_crash`, `storage_crash`, `disk_degrade`,
    /// `cache_degrade`, `failover`, `retry`.
    pub kind: String,
    /// Affected entity (node or client id; -1 when not applicable).
    pub subject: i64,
}

/// Hot-chunk table cap in [`Recorder::finish`].
pub const HOT_CHUNKS_CAP: usize = 64;

#[derive(Debug, Default)]
struct RecorderInner {
    bucket_ns: u64,
    nodes: BTreeMap<(Level, usize), BTreeMap<u64, BucketStats>>,
    clients: BTreeMap<usize, BTreeMap<u64, ClientBucketStats>>,
    events: Vec<ObsEvent>,
    links: BTreeMap<(LinkHop, usize, usize), u64>,
    chunks: BTreeMap<u64, u64>,
}

impl RecorderInner {
    fn bucket(&self, t_ns: u64) -> u64 {
        t_ns / self.bucket_ns
    }
}

/// Engine-side metric recorder. Disabled by default; every recording
/// method on a disabled recorder is an inlined no-op.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<Box<RecorderInner>>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder folding observations into `bucket_ns`-wide buckets of
    /// simulated time. `bucket_ns` is clamped to at least 1.
    pub fn enabled(bucket_ns: u64) -> Self {
        Recorder {
            inner: Some(Box::new(RecorderInner {
                bucket_ns: bucket_ns.max(1),
                ..RecorderInner::default()
            })),
        }
    }

    /// Whether observations are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one cache access on `(level, node)` at simulated time `t_ns`.
    #[inline]
    pub fn cache_access(&mut self, level: Level, node: usize, t_ns: u64, hit: bool) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let b = inner.bucket(t_ns);
        let s = inner
            .nodes
            .entry((level, node))
            .or_default()
            .entry(b)
            .or_default();
        if hit {
            s.hits += 1;
        } else {
            s.misses += 1;
        }
    }

    /// Records an eviction (dirty evictions also count as writebacks).
    #[inline]
    pub fn eviction(&mut self, level: Level, node: usize, t_ns: u64, dirty: bool) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let b = inner.bucket(t_ns);
        let s = inner
            .nodes
            .entry((level, node))
            .or_default()
            .entry(b)
            .or_default();
        s.evictions += 1;
        if dirty {
            s.writebacks += 1;
        }
    }

    /// Records time a request waited behind `(level, node)`.
    #[inline]
    pub fn queue_wait(&mut self, level: Level, node: usize, t_ns: u64, wait_ns: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let b = inner.bucket(t_ns);
        inner
            .nodes
            .entry((level, node))
            .or_default()
            .entry(b)
            .or_default()
            .queue_ns += wait_ns;
    }

    /// Records an I/O interval for a client, attributed to its start bucket.
    #[inline]
    pub fn client_io(&mut self, client: usize, t_ns: u64, dur_ns: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let b = inner.bucket(t_ns);
        let s = inner
            .clients
            .entry(client)
            .or_default()
            .entry(b)
            .or_default();
        s.io_ns += dur_ns;
        s.accesses += 1;
    }

    /// Records a compute interval for a client.
    #[inline]
    pub fn client_compute(&mut self, client: usize, t_ns: u64, dur_ns: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let b = inner.bucket(t_ns);
        inner
            .clients
            .entry(client)
            .or_default()
            .entry(b)
            .or_default()
            .compute_ns += dur_ns;
    }

    /// Counts one access to `chunk` (for the hot-chunk table).
    #[inline]
    pub fn chunk_access(&mut self, chunk: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        *inner.chunks.entry(chunk).or_insert(0) += 1;
    }

    /// Adds `bytes` to the `(hop, src, dst)` link tally.
    #[inline]
    pub fn link_transfer(&mut self, hop: LinkHop, src: usize, dst: usize, bytes: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        *inner.links.entry((hop, src, dst)).or_insert(0) += bytes;
    }

    /// Stamps an engine event into the timeline.
    #[inline]
    pub fn event(&mut self, t_ns: u64, kind: &str, subject: i64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.events.push(ObsEvent {
            t_ns,
            kind: kind.to_string(),
            subject,
        });
    }

    /// Consumes the recorder and produces the deterministic snapshot.
    /// Returns `None` for a disabled recorder.
    pub fn finish(self) -> Option<EngineObs> {
        let inner = self.inner?;
        let mut hot: Vec<(u64, u64)> = inner.chunks.into_iter().collect();
        // Most-accessed first; chunk id breaks ties so the order is total.
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(HOT_CHUNKS_CAP);
        let mut events = inner.events;
        events.sort_by(|a, b| (a.t_ns, &a.kind, a.subject).cmp(&(b.t_ns, &b.kind, b.subject)));
        Some(EngineObs {
            bucket_ns: inner.bucket_ns,
            nodes: inner.nodes,
            clients: inner.clients,
            events,
            links: inner.links,
            hot_chunks: hot,
        })
    }
}

/// Deterministic snapshot of one engine run's metric series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineObs {
    /// Bucket width in simulated ns.
    pub bucket_ns: u64,
    /// Per-`(level, node)` sparse bucket series.
    pub nodes: BTreeMap<(Level, usize), BTreeMap<u64, BucketStats>>,
    /// Per-client sparse bucket series.
    pub clients: BTreeMap<usize, BTreeMap<u64, ClientBucketStats>>,
    /// Timeline events, sorted by `(t_ns, kind, subject)`.
    pub events: Vec<ObsEvent>,
    /// Total bytes per `(hop, src, dst)` link.
    pub links: BTreeMap<(LinkHop, usize, usize), u64>,
    /// Top accessed chunks `(chunk, count)`, count-descending, capped at
    /// [`HOT_CHUNKS_CAP`].
    pub hot_chunks: Vec<(u64, u64)>,
}

impl EngineObs {
    /// Sums every bucket of every node at `level` into one aggregate.
    pub fn level_totals(&self, level: Level) -> BucketStats {
        let mut total = BucketStats::default();
        for ((l, _), series) in &self.nodes {
            if *l == level {
                for s in series.values() {
                    total.add(s);
                }
            }
        }
        total
    }

    /// Sums every bucket of one client's series.
    pub fn client_totals(&self, client: usize) -> ClientBucketStats {
        let mut total = ClientBucketStats::default();
        if let Some(series) = self.clients.get(&client) {
            for s in series.values() {
                total.add(s);
            }
        }
        total
    }

    /// Highest bucket index present anywhere in the series.
    pub fn max_bucket(&self) -> u64 {
        let node_max = self
            .nodes
            .values()
            .filter_map(|s| s.keys().next_back())
            .max()
            .copied();
        let client_max = self
            .clients
            .values()
            .filter_map(|s| s.keys().next_back())
            .max()
            .copied();
        node_max.into_iter().chain(client_max).max().unwrap_or(0)
    }

    /// Rebuilds a snapshot from its [`ToJson`] form.
    pub fn from_json(json: &Json) -> Result<EngineObs, String> {
        let bucket_ns = json
            .get("bucket_ns")
            .and_then(Json::as_u64)
            .ok_or("engine obs: missing \"bucket_ns\"")?;
        let mut obs = EngineObs {
            bucket_ns,
            ..EngineObs::default()
        };
        for row in req_array(json, "nodes")? {
            let level = row
                .get("level")
                .and_then(Json::as_str)
                .and_then(Level::from_label)
                .ok_or("node row: bad \"level\"")?;
            let node = req_u64(row, "node")? as usize;
            let mut series = BTreeMap::new();
            for b in req_array(row, "buckets")? {
                series.insert(
                    req_u64(b, "b")?,
                    BucketStats {
                        hits: req_u64(b, "hits")?,
                        misses: req_u64(b, "misses")?,
                        evictions: req_u64(b, "evictions")?,
                        writebacks: req_u64(b, "writebacks")?,
                        queue_ns: req_u64(b, "queue_ns")?,
                    },
                );
            }
            obs.nodes.insert((level, node), series);
        }
        for row in req_array(json, "clients")? {
            let client = req_u64(row, "client")? as usize;
            let mut series = BTreeMap::new();
            for b in req_array(row, "buckets")? {
                series.insert(
                    req_u64(b, "b")?,
                    ClientBucketStats {
                        io_ns: req_u64(b, "io_ns")?,
                        compute_ns: req_u64(b, "compute_ns")?,
                        accesses: req_u64(b, "accesses")?,
                    },
                );
            }
            obs.clients.insert(client, series);
        }
        for row in req_array(json, "events")? {
            obs.events.push(ObsEvent {
                t_ns: req_u64(row, "t_ns")?,
                kind: row
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("event: missing \"kind\"")?
                    .to_string(),
                subject: row
                    .get("subject")
                    .and_then(Json::as_i64)
                    .ok_or("event: missing \"subject\"")?,
            });
        }
        for row in req_array(json, "links")? {
            let hop = row
                .get("hop")
                .and_then(Json::as_str)
                .and_then(LinkHop::from_label)
                .ok_or("link row: bad \"hop\"")?;
            obs.links.insert(
                (
                    hop,
                    req_u64(row, "src")? as usize,
                    req_u64(row, "dst")? as usize,
                ),
                req_u64(row, "bytes")?,
            );
        }
        for row in req_array(json, "hot_chunks")? {
            obs.hot_chunks
                .push((req_u64(row, "chunk")?, req_u64(row, "count")?));
        }
        Ok(obs)
    }
}

fn req_array<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], String> {
    json.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("engine obs: missing \"{key}\" array"))
}

fn req_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("engine obs: missing \"{key}\""))
}

impl ToJson for EngineObs {
    fn to_json(&self) -> Json {
        let nodes = Json::Array(
            self.nodes
                .iter()
                .map(|((level, node), series)| {
                    Json::object(vec![
                        ("level", Json::Str(level.label().to_string())),
                        ("node", Json::UInt(*node as u64)),
                        (
                            "buckets",
                            Json::Array(
                                series
                                    .iter()
                                    .map(|(b, s)| {
                                        Json::object(vec![
                                            ("b", Json::UInt(*b)),
                                            ("hits", Json::UInt(s.hits)),
                                            ("misses", Json::UInt(s.misses)),
                                            ("evictions", Json::UInt(s.evictions)),
                                            ("writebacks", Json::UInt(s.writebacks)),
                                            ("queue_ns", Json::UInt(s.queue_ns)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let clients = Json::Array(
            self.clients
                .iter()
                .map(|(client, series)| {
                    Json::object(vec![
                        ("client", Json::UInt(*client as u64)),
                        (
                            "buckets",
                            Json::Array(
                                series
                                    .iter()
                                    .map(|(b, s)| {
                                        Json::object(vec![
                                            ("b", Json::UInt(*b)),
                                            ("io_ns", Json::UInt(s.io_ns)),
                                            ("compute_ns", Json::UInt(s.compute_ns)),
                                            ("accesses", Json::UInt(s.accesses)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let events = Json::Array(
            self.events
                .iter()
                .map(|e| {
                    Json::object(vec![
                        ("t_ns", Json::UInt(e.t_ns)),
                        ("kind", Json::Str(e.kind.clone())),
                        ("subject", Json::Int(e.subject)),
                    ])
                })
                .collect(),
        );
        let links = Json::Array(
            self.links
                .iter()
                .map(|((hop, src, dst), bytes)| {
                    Json::object(vec![
                        ("hop", Json::Str(hop.label().to_string())),
                        ("src", Json::UInt(*src as u64)),
                        ("dst", Json::UInt(*dst as u64)),
                        ("bytes", Json::UInt(*bytes)),
                    ])
                })
                .collect(),
        );
        let hot = Json::Array(
            self.hot_chunks
                .iter()
                .map(|(chunk, count)| {
                    Json::object(vec![
                        ("chunk", Json::UInt(*chunk)),
                        ("count", Json::UInt(*count)),
                    ])
                })
                .collect(),
        );
        Json::object(vec![
            ("bucket_ns", Json::UInt(self.bucket_ns)),
            ("nodes", nodes),
            ("clients", clients),
            ("events", events),
            ("links", links),
            ("hot_chunks", hot),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.cache_access(Level::L1, 0, 100, true);
        r.event(5, "failover", 1);
        assert!(r.finish().is_none());
    }

    #[test]
    fn observations_land_in_simulated_time_buckets() {
        let mut r = Recorder::enabled(1000);
        r.cache_access(Level::L2, 3, 10, true);
        r.cache_access(Level::L2, 3, 999, false);
        r.cache_access(Level::L2, 3, 1000, true);
        r.queue_wait(Level::L2, 3, 1500, 250);
        let obs = r.finish().unwrap();
        let series = &obs.nodes[&(Level::L2, 3)];
        assert_eq!(series[&0].hits, 1);
        assert_eq!(series[&0].misses, 1);
        assert_eq!(series[&1].hits, 1);
        assert_eq!(series[&1].queue_ns, 250);
        let totals = obs.level_totals(Level::L2);
        assert_eq!((totals.hits, totals.misses), (2, 1));
    }

    #[test]
    fn hot_chunks_are_sorted_and_capped() {
        let mut r = Recorder::enabled(100);
        for chunk in 0..(HOT_CHUNKS_CAP as u64 + 10) {
            for _ in 0..=chunk {
                r.chunk_access(chunk);
            }
        }
        let obs = r.finish().unwrap();
        assert_eq!(obs.hot_chunks.len(), HOT_CHUNKS_CAP);
        assert_eq!(obs.hot_chunks[0].0, HOT_CHUNKS_CAP as u64 + 9);
        assert!(obs.hot_chunks.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn events_sort_by_time_then_kind() {
        let mut r = Recorder::enabled(10);
        r.event(50, "retry", 2);
        r.event(10, "io_crash", 0);
        r.event(50, "failover", 2);
        let obs = r.finish().unwrap();
        let kinds: Vec<&str> = obs.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["io_crash", "failover", "retry"]);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut r = Recorder::enabled(500);
        r.cache_access(Level::L1, 0, 10, true);
        r.cache_access(Level::L3, 2, 700, false);
        r.eviction(Level::L2, 1, 600, true);
        r.client_io(4, 20, 300);
        r.client_compute(4, 400, 80);
        r.link_transfer(LinkHop::IoStorage, 1, 0, 65536);
        r.event(600, "cache_degrade", 1);
        r.chunk_access(7);
        r.chunk_access(7);
        r.chunk_access(9);
        let obs = r.finish().unwrap();
        let json = obs.to_json();
        let back = EngineObs::from_json(&json).unwrap();
        assert_eq!(obs, back);
        assert_eq!(json.to_string_compact(), back.to_json().to_string_compact());
    }
}
