//! Request-scoped tracing and the in-memory flight recorder.
//!
//! Where [`crate::span`] profiles the *inside* of one mapper pipeline
//! run, this module covers the *whole service path* of one request:
//! admission, cache tiers, coalescing, queueing, compute, and response
//! serialization, each as a flat [`Stage`] with a start offset and
//! duration relative to request arrival. The compute stage may carry
//! the mapper's [`crate::Profile`] span tree as a child, linking the
//! two layers.
//!
//! Design constraints, in the spirit of the rest of this crate:
//!
//! * **Deterministic identity** — a [`TraceId`] is derived from the
//!   request's content fingerprint and its admission sequence number
//!   (FNV-1a over both), never from the clock or a random source, so a
//!   replayed campaign produces the same ids in the same order.
//! * **Bounded memory** — the [`FlightRecorder`] keeps the most recent
//!   `capacity` trace summaries in a ring; recording is O(1) and never
//!   allocates beyond the slot being replaced.
//! * **Anomaly-triggered dumps** — the ring is written to disk only
//!   when something notable happens (a slow request, a rejection
//!   burst, a drain, a crash recovery), with a per-trigger cooldown so
//!   a sustained anomaly produces a handful of dumps, not thousands.
//!
//! [`validate_trace`] and [`validate_flight_record`] are the schema
//! checks for the wire `trace` field and the `flight-*.json` dump
//! artifacts, mirroring [`crate::schema::validate_artifact`]: they
//! collect *every* problem instead of stopping at the first.

use cachemap_util::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema tag written into every flight-recorder dump.
pub const FLIGHT_SCHEMA: &str = "flight-record/v1";

/// A deterministic per-request trace identifier.
///
/// Derived from the request's 128-bit content fingerprint and the
/// service's admission sequence number with FNV-1a/64 — no wall clock,
/// no randomness — so identical campaigns yield identical ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derives the id for the `seq`-th traced admission of the request
    /// whose content fingerprint is `fingerprint`.
    pub fn derive(fingerprint: u128, seq: u64) -> TraceId {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in fingerprint
            .to_le_bytes()
            .iter()
            .chain(seq.to_le_bytes().iter())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        TraceId(h)
    }

    /// 16-hex-digit wire form.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form back (`None` on malformed input).
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// One stage of a request's service-path timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name (`fingerprint`, `l1`, `l2`, `l2_parse`, `coalesce`,
    /// `queue_wait`, `compute`, `serialize`, `parse`).
    pub name: String,
    /// Offset from request arrival, in microseconds.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
    /// Coalesce role tag: `leader` or `follower` (coalesce stage only).
    pub role: Option<String>,
    /// The mapper's profile span tree (compute stage only), as the
    /// `{"spans":[…]}` JSON of [`crate::Profile::to_json`].
    pub profile: Option<Json>,
}

impl Stage {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("start_us", Json::UInt(self.start_us)),
            ("dur_us", Json::UInt(self.dur_us)),
        ];
        if let Some(r) = &self.role {
            pairs.push(("role", Json::Str(r.clone())));
        }
        if let Some(p) = &self.profile {
            pairs.push(("profile", p.clone()));
        }
        Json::object(pairs)
    }
}

/// One request's trace: identity, outcome, and its stage timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Deterministic trace id.
    pub trace_id: TraceId,
    /// Admission sequence number the id was derived with.
    pub seq: u64,
    /// Content fingerprint (hex) of the request.
    pub fingerprint: String,
    /// Tenant label (`anonymous` for unlabelled requests).
    pub tenant: String,
    /// Final outcome: an `ok_*` service outcome or a typed error code.
    pub outcome: String,
    /// Whether the response was served from a cache tier or coalesced.
    pub cached: bool,
    /// End-to-end service-side latency in microseconds.
    pub total_us: u64,
    /// The stage timeline, in the order stages were entered.
    pub stages: Vec<Stage>,
}

impl TraceRecord {
    /// A fresh record with no stages and a pending outcome.
    pub fn new(trace_id: TraceId, seq: u64, fingerprint: String, tenant: String) -> TraceRecord {
        TraceRecord {
            trace_id,
            seq,
            fingerprint,
            tenant,
            outcome: String::new(),
            cached: false,
            total_us: 0,
            stages: Vec::with_capacity(8),
        }
    }

    /// Appends a plain stage.
    pub fn push_stage(&mut self, name: &str, start_us: u64, dur_us: u64) {
        self.stages.push(Stage {
            name: name.to_string(),
            start_us,
            dur_us,
            role: None,
            profile: None,
        });
    }

    /// Appends a role-tagged stage (the coalesce rendezvous).
    pub fn push_tagged(&mut self, name: &str, start_us: u64, dur_us: u64, role: &str) {
        self.stages.push(Stage {
            name: name.to_string(),
            start_us,
            dur_us,
            role: Some(role.to_string()),
            profile: None,
        });
    }

    /// Appends the compute stage with the mapper's profile attached.
    pub fn push_profiled(&mut self, name: &str, start_us: u64, dur_us: u64, profile: Option<Json>) {
        self.stages.push(Stage {
            name: name.to_string(),
            start_us,
            dur_us,
            role: None,
            profile,
        });
    }

    /// Sum of all stage durations (the attribution total).
    pub fn stage_sum_us(&self) -> u64 {
        self.stages.iter().map(|s| s.dur_us).sum()
    }

    /// The wire/dump JSON form.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("trace_id", Json::Str(self.trace_id.to_hex())),
            ("seq", Json::UInt(self.seq)),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("tenant", Json::Str(self.tenant.clone())),
            ("outcome", Json::Str(self.outcome.clone())),
            ("cached", Json::Bool(self.cached)),
            ("total_us", Json::UInt(self.total_us)),
            (
                "stages",
                Json::Array(self.stages.iter().map(Stage::to_json).collect()),
            ),
        ])
    }
}

/// Validates one trace object (the `trace` response field or one entry
/// of a flight dump). Returns every violation found.
pub fn validate_trace(v: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let ctx = "trace";
    match v.get("trace_id").and_then(Json::as_str) {
        None => errs.push(format!("{ctx}: missing string \"trace_id\"")),
        Some(id) => {
            if TraceId::from_hex(id).is_none() {
                errs.push(format!("{ctx}: trace_id {id:?} is not 16 hex digits"));
            }
        }
    }
    for key in ["seq", "total_us"] {
        if v.get(key).and_then(Json::as_u64).is_none() {
            errs.push(format!("{ctx}: missing unsigned \"{key}\""));
        }
    }
    for key in ["fingerprint", "tenant", "outcome"] {
        match v.get(key).and_then(Json::as_str) {
            None => errs.push(format!("{ctx}: missing string \"{key}\"")),
            Some("") if key == "outcome" => {
                errs.push(format!("{ctx}: \"outcome\" must be non-empty"));
            }
            Some(_) => {}
        }
    }
    if !matches!(v.get("cached"), Some(Json::Bool(_))) {
        errs.push(format!("{ctx}: missing boolean \"cached\""));
    }
    match v.get("stages").and_then(Json::as_array) {
        None => errs.push(format!("{ctx}: missing array \"stages\"")),
        Some(stages) => {
            for (i, s) in stages.iter().enumerate() {
                match s.get("name").and_then(Json::as_str) {
                    None | Some("") => {
                        errs.push(format!("{ctx}: stage {i}: missing non-empty \"name\""));
                    }
                    Some(_) => {}
                }
                for key in ["start_us", "dur_us"] {
                    if s.get(key).and_then(Json::as_u64).is_none() {
                        errs.push(format!("{ctx}: stage {i}: missing unsigned \"{key}\""));
                    }
                }
                if let Some(role) = s.get("role") {
                    match role.as_str() {
                        Some("leader") | Some("follower") => {}
                        other => errs.push(format!(
                            "{ctx}: stage {i}: role must be leader|follower, got {other:?}"
                        )),
                    }
                }
                if let Some(profile) = s.get("profile") {
                    if profile.get("spans").and_then(Json::as_array).is_none() {
                        errs.push(format!(
                            "{ctx}: stage {i}: profile must carry a \"spans\" array"
                        ));
                    }
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Validates one `flight-*.json` dump artifact. Returns every
/// violation found, including per-trace problems.
pub fn validate_flight_record(v: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    match v.get("schema").and_then(Json::as_str) {
        Some(FLIGHT_SCHEMA) => {}
        other => errs.push(format!(
            "flight: schema must be {FLIGHT_SCHEMA:?}, got {other:?}"
        )),
    }
    match v.get("trigger").and_then(Json::as_str) {
        None | Some("") => errs.push("flight: missing non-empty string \"trigger\"".into()),
        Some(_) => {}
    }
    for key in ["dump_seq", "recorded_total"] {
        if v.get(key).and_then(Json::as_u64).is_none() {
            errs.push(format!("flight: missing unsigned \"{key}\""));
        }
    }
    match v.get("traces").and_then(Json::as_array) {
        None => errs.push("flight: missing array \"traces\"".into()),
        Some(traces) => {
            for (i, t) in traces.iter().enumerate() {
                if let Err(sub) = validate_trace(t) {
                    for e in sub {
                        errs.push(format!("flight: traces[{i}]: {e}"));
                    }
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

struct Ring {
    /// Most recent trace summaries, oldest first once full.
    slots: Vec<Json>,
    /// Rejection flags aligned with `slots` (same indices).
    rejected: Vec<bool>,
    /// Next write position.
    next: usize,
    /// Total records ever written.
    recorded: u64,
    /// Per-trigger `recorded` value at the last dump (cooldown state).
    last_dump: BTreeMap<String, u64>,
}

/// A bounded ring of recent trace summaries with anomaly-triggered
/// disk dumps (see module docs). All methods take `&self`; the ring is
/// guarded by one mutex, and recording is O(1).
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
    dump_seq: AtomicU64,
}

impl FlightRecorder {
    /// An empty recorder keeping the most recent `capacity` traces.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                rejected: Vec::with_capacity(capacity),
                next: 0,
                recorded: 0,
                last_dump: BTreeMap::new(),
            }),
            dump_seq: AtomicU64::new(0),
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one finished trace. `rejected` marks typed rejections
    /// for the burst detector.
    pub fn record(&self, trace: Json, rejected: bool) {
        let mut r = self.ring.lock().expect("flight ring poisoned");
        if r.slots.len() < self.capacity {
            r.slots.push(trace);
            r.rejected.push(rejected);
        } else {
            let next = r.next;
            r.slots[next] = trace;
            r.rejected[next] = rejected;
        }
        r.next = (r.next + 1) % self.capacity;
        r.recorded += 1;
    }

    /// Number of traces currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").slots.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever recorded (monotonic; exceeds `len` after the
    /// ring wraps).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("flight ring poisoned").recorded
    }

    /// The held traces, oldest first.
    pub fn snapshot(&self) -> Vec<Json> {
        let r = self.ring.lock().expect("flight ring poisoned");
        self.ordered(&r)
    }

    fn ordered(&self, r: &Ring) -> Vec<Json> {
        if r.slots.len() < self.capacity {
            r.slots.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            for i in 0..self.capacity {
                out.push(r.slots[(r.next + i) % self.capacity].clone());
            }
            out
        }
    }

    /// The most recently recorded trace, if any.
    pub fn last(&self) -> Option<Json> {
        let r = self.ring.lock().expect("flight ring poisoned");
        if r.slots.is_empty() {
            return None;
        }
        let idx = (r.next + self.capacity - 1) % self.capacity.max(r.slots.len());
        Some(r.slots[idx.min(r.slots.len() - 1)].clone())
    }

    /// Finds a held trace by its hex id (most recent match wins).
    pub fn find(&self, trace_id: &str) -> Option<Json> {
        let r = self.ring.lock().expect("flight ring poisoned");
        self.ordered(&r)
            .into_iter()
            .rev()
            .find(|t| t.get("trace_id").and_then(Json::as_str) == Some(trace_id))
    }

    /// True when at least `min` of the most recent `window` records
    /// were rejections — the rejection-burst anomaly condition.
    pub fn rejection_burst(&self, window: usize, min: usize) -> bool {
        let r = self.ring.lock().expect("flight ring poisoned");
        let n = r.rejected.len();
        if n == 0 {
            return false;
        }
        let window = window.min(n);
        let mut hits = 0usize;
        for i in 0..window {
            // Until the ring is full, records live at 0..n in order and
            // the newest is at n-1; once full, the newest is just
            // behind the write cursor.
            let idx = if n < self.capacity {
                n - 1 - i
            } else {
                (r.next + n - 1 - i) % n
            };
            if r.rejected[idx] {
                hits += 1;
            }
        }
        hits >= min
    }

    /// Dumps the current ring to `dir/flight-<trigger>-<seq>.json`,
    /// unless fewer than `cooldown` records landed since the last dump
    /// for this trigger (returns `Ok(None)` when suppressed). The dump
    /// carries the trigger, sequence, totals, the full ring (oldest
    /// first), and any `extra` context pairs.
    pub fn dump(
        &self,
        dir: &Path,
        trigger: &str,
        cooldown: u64,
        extra: Vec<(&str, Json)>,
    ) -> std::io::Result<Option<PathBuf>> {
        let (traces, recorded) = {
            let mut r = self.ring.lock().expect("flight ring poisoned");
            let recorded = r.recorded;
            if let Some(&at) = r.last_dump.get(trigger) {
                if recorded.saturating_sub(at) < cooldown {
                    return Ok(None);
                }
            }
            r.last_dump.insert(trigger.to_string(), recorded);
            (self.ordered(&r), recorded)
        };
        let seq = self.dump_seq.fetch_add(1, Ordering::SeqCst);
        let mut pairs = vec![
            ("schema", Json::Str(FLIGHT_SCHEMA.into())),
            ("trigger", Json::Str(trigger.to_string())),
            ("dump_seq", Json::UInt(seq)),
            ("recorded_total", Json::UInt(recorded)),
        ];
        pairs.extend(extra);
        pairs.push(("traces", Json::Array(traces)));
        let body = Json::object(pairs).to_string_pretty();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight-{trigger}-{seq:04}.json"));
        std::fs::write(&path, body)?;
        Ok(Some(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn trace_json(seq: u64, outcome: &str) -> Json {
        let mut rec = TraceRecord::new(
            TraceId::derive(0xfeed, seq),
            seq,
            format!("{:032x}", 0xfeedu128),
            "anonymous".into(),
        );
        rec.push_stage("l1", 0, 3);
        rec.push_tagged("coalesce", 3, 40, "follower");
        rec.outcome = outcome.to_string();
        rec.cached = outcome.starts_with("ok");
        rec.total_us = 50;
        rec.to_json()
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = TraceId::derive(42, 0);
        let b = TraceId::derive(42, 0);
        let c = TraceId::derive(42, 1);
        let d = TraceId::derive(43, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(TraceId::from_hex(&a.to_hex()), Some(a));
        assert_eq!(TraceId::from_hex("xyz"), None);
    }

    #[test]
    fn trace_record_json_passes_its_own_schema() {
        let j = trace_json(7, "ok_cached");
        validate_trace(&j).unwrap();
        // Break it in several ways; every break must be reported.
        let bad = Json::object(vec![("trace_id", Json::Str("nope".into()))]);
        let errs = validate_trace(&bad).unwrap_err();
        assert!(errs.len() >= 5, "all violations reported: {errs:?}");
    }

    #[test]
    fn ring_wraps_and_keeps_the_most_recent() {
        let fl = FlightRecorder::new(4);
        for seq in 0..10 {
            fl.record(trace_json(seq, "ok_cached"), false);
        }
        assert_eq!(fl.len(), 4);
        assert_eq!(fl.recorded(), 10);
        let seqs: Vec<u64> = fl
            .snapshot()
            .iter()
            .map(|t| t.get("seq").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, most recent kept");
        let last = fl.last().unwrap();
        assert_eq!(last.get("seq").and_then(Json::as_u64), Some(9));
        // find() locates by hex id.
        let id = TraceId::derive(0xfeed, 8).to_hex();
        assert!(fl.find(&id).is_some());
        assert!(fl.find(&TraceId::derive(0xfeed, 2).to_hex()).is_none());
    }

    #[test]
    fn concurrent_writers_never_lose_counts() {
        let fl = Arc::new(FlightRecorder::new(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let fl = Arc::clone(&fl);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        fl.record(trace_json(t * 50 + i, "ok_cached"), false);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fl.recorded(), 400);
        assert_eq!(fl.len(), 64);
        for t in fl.snapshot() {
            validate_trace(&t).unwrap();
        }
    }

    #[test]
    fn rejection_burst_detects_dense_windows_only() {
        let fl = FlightRecorder::new(32);
        for seq in 0..16 {
            fl.record(trace_json(seq, "ok_cached"), false);
        }
        assert!(!fl.rejection_burst(16, 8));
        for seq in 16..24 {
            fl.record(trace_json(seq, "queue_full"), true);
        }
        assert!(fl.rejection_burst(16, 8));
        assert!(!fl.rejection_burst(8, 9), "cannot exceed the window");
    }

    #[test]
    fn dump_writes_a_valid_artifact_and_respects_cooldown() {
        let dir = std::env::temp_dir().join(format!("cachemap-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fl = FlightRecorder::new(8);
        for seq in 0..5 {
            fl.record(trace_json(seq, "ok_cached"), false);
        }
        let path = fl
            .dump(
                &dir,
                "slow_request",
                4,
                vec![("queue_depth", Json::UInt(3))],
            )
            .unwrap()
            .expect("first dump always fires");
        let text = std::fs::read_to_string(&path).unwrap();
        let v = cachemap_util::json::parse(&text).unwrap();
        validate_flight_record(&v).unwrap();
        assert_eq!(
            v.get("trigger").and_then(Json::as_str),
            Some("slow_request")
        );
        assert_eq!(
            v.get("traces").and_then(Json::as_array).map(<[Json]>::len),
            Some(5)
        );
        // Within the cooldown: suppressed; after 4 more records: fires.
        assert!(fl.dump(&dir, "slow_request", 4, vec![]).unwrap().is_none());
        for seq in 5..9 {
            fl.record(trace_json(seq, "ok_cached"), false);
        }
        assert!(fl.dump(&dir, "slow_request", 4, vec![]).unwrap().is_some());
        // A different trigger has independent cooldown state.
        assert!(fl.dump(&dir, "drain", 4, vec![]).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
