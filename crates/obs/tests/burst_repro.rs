use cachemap_obs::{FlightRecorder, TraceId, TraceRecord};

fn trace_json(seq: u64, outcome: &str) -> cachemap_util::Json {
    let mut rec = TraceRecord::new(
        TraceId::derive(0xfeed, seq),
        seq,
        format!("{:032x}", 0xfeedu128),
        "anonymous".into(),
    );
    rec.outcome = outcome.to_string();
    rec.total_us = 50;
    rec.to_json()
}

#[test]
fn partial_ring_burst_detection() {
    // capacity 10, only 7 records so far: 3 ok then 4 rejections.
    // The most recent 4 records are ALL rejections -> burst(4,4) must be true.
    let fl = FlightRecorder::new(10);
    for seq in 0..3 {
        fl.record(trace_json(seq, "ok_cached"), false);
    }
    for seq in 3..7 {
        fl.record(trace_json(seq, "queue_full"), true);
    }
    assert!(
        fl.rejection_burst(4, 4),
        "most recent 4 are all rejections but burst not detected"
    );
}

#[test]
fn partial_ring_no_false_burst() {
    // capacity 10, 7 records: 4 rejections first, then 3 ok.
    // The most recent 4 contain only 1 rejection -> burst(4,4) must be false.
    let fl = FlightRecorder::new(10);
    for seq in 0..4 {
        fl.record(trace_json(seq, "queue_full"), true);
    }
    for seq in 4..7 {
        fl.record(trace_json(seq, "ok_cached"), false);
    }
    assert!(
        !fl.rejection_burst(4, 4),
        "recent window has 1 rejection but burst fired"
    );
}
