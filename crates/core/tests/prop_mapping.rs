//! Property tests for the mapping algorithms: tagging partitions, the
//! clustering invariants of Figure 5, and the scheduling invariants of
//! Figure 15.

use cachemap_core::cluster::{distribute, ClusterParams, Linkage};
use cachemap_core::schedule::{schedule, ScheduleParams};
use cachemap_core::tags::{tag_nest, IterationChunk};
use cachemap_polyhedral::{
    AffineExpr, ArrayDecl, ArrayRef, DataSpace, IterationSpace, LoopNest, Program,
};
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_util::BitSet;
use proptest::prelude::*;

/// Random small single-nest program with chunk-crossing strides.
fn arb_program() -> impl Strategy<Value = (Program, DataSpace)> {
    (2i64..14, 1i64..5, 0i64..3, 1u64..4).prop_map(|(n, stride, off, chunk_elems)| {
        let elems = n * stride + off + stride + 2;
        let arrays = vec![ArrayDecl::new("A", vec![elems], 8)];
        let refs = vec![
            ArrayRef::read(0, vec![AffineExpr::new(vec![stride], off)]),
            ArrayRef::write(0, vec![AffineExpr::new(vec![stride], off + stride)]),
        ];
        let space = IterationSpace::rectangular(&[n]);
        let nest = LoopNest::new("p", space, refs);
        let program = Program::new("p", arrays, vec![nest]);
        let data = DataSpace::new(&program.arrays, chunk_elems * 8);
        (program, data)
    })
}

fn arb_chunks() -> impl Strategy<Value = Vec<IterationChunk>> {
    proptest::collection::vec(
        (proptest::collection::vec(0usize..24, 1..5), 1usize..6),
        1..24,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(k, (bits, iters))| IterationChunk {
                nest: 0,
                tag: BitSet::from_bits(24, bits),
                points: (0..iters).map(|i| vec![(k * 8 + i) as i64]).collect(),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn tags_partition_the_iteration_space((program, data) in arb_program()) {
        let tagged = tag_nest(&program, 0, &data);
        prop_assert_eq!(tagged.total_iterations(), program.total_iterations());
        // Each chunk's members really produce that tag.
        for chunk in &tagged.chunks {
            for p in &chunk.points {
                let tag = cachemap_core::tags::tag_of_iteration(
                    &program.nests[0], &program.arrays, &data, p);
                prop_assert_eq!(&tag, &chunk.tag);
            }
        }
        // Distinct chunks have distinct tags.
        for (i, a) in tagged.chunks.iter().enumerate() {
            for b in &tagged.chunks[i + 1..] {
                prop_assert!(a.tag != b.tag);
            }
        }
    }

    #[test]
    fn distribution_is_exact_partition_for_any_linkage(
        chunks in arb_chunks(),
        linkage in prop_oneof![
            Just(Linkage::Total), Just(Linkage::Average), Just(Linkage::Sqrt)],
        bthres in 0.0f64..0.5,
    ) {
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny());
        let params = ClusterParams { balance_threshold: bthres, linkage };
        let dist = distribute(&chunks, &tree, &params);
        let total: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        prop_assert_eq!(dist.total_iterations(), total);
        // No duplicated iteration.
        let mut seen = std::collections::HashSet::new();
        for items in &dist.per_client {
            for it in items {
                for k in it.start..it.end {
                    prop_assert!(seen.insert((it.chunk, k)));
                }
            }
        }
    }

    #[test]
    fn schedule_is_a_permutation_of_the_distribution(chunks in arb_chunks()) {
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny());
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        let sched = schedule(&dist, &chunks, &tree, &ScheduleParams::default());
        prop_assert_eq!(sched.total_iterations(), dist.total_iterations());
        for c in 0..4 {
            let mut a = dist.per_client[c].clone();
            let mut b = sched.per_client[c].clone();
            a.sort_by_key(|i| (i.chunk, i.start));
            b.sort_by_key(|i| (i.chunk, i.start));
            prop_assert_eq!(a, b, "client {} items changed", c);
        }
    }

    #[test]
    fn deeper_trees_distribute_over_all_clients(
        chunks in arb_chunks(),
    ) {
        // A bigger tree must still partition exactly, with empty clients
        // allowed only when there are fewer items than clients.
        let cfg = PlatformConfig::paper_default().with_topology(16, 8, 4);
        let tree = HierarchyTree::from_config(&cfg);
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        let total: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        prop_assert_eq!(dist.total_iterations(), total);
        prop_assert_eq!(dist.per_client.len(), 16);
    }

    #[test]
    fn balance_threshold_zero_is_as_tight_as_granularity_allows(
        iters_per_chunk in 1usize..5,
        nchunks in 8usize..40,
    ) {
        // Uniform chunks: with bthres 0 every client must land within
        // one chunk of the mean.
        let chunks: Vec<IterationChunk> = (0..nchunks)
            .map(|k| IterationChunk {
                nest: 0,
                tag: BitSet::from_bits(64, [k % 64, (k * 7) % 64]),
                points: (0..iters_per_chunk).map(|i| vec![(k * 8 + i) as i64]).collect(),
            })
            .collect();
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny());
        let params = ClusterParams { balance_threshold: 0.0, linkage: Linkage::Average };
        let dist = distribute(&chunks, &tree, &params);
        let per = dist.iterations_per_client();
        let mean = per.iter().sum::<u64>() as f64 / per.len() as f64;
        for &p in &per {
            prop_assert!(
                (p as f64 - mean).abs() <= iters_per_chunk as f64 + 1.0,
                "load {} vs mean {} (chunk size {})",
                p, mean, iters_per_chunk
            );
        }
    }
}
