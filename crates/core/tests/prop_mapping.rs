//! Property tests for the mapping algorithms: tagging partitions, the
//! clustering invariants of Figure 5, and the scheduling invariants of
//! Figure 15. Driven by the in-repo deterministic harness
//! (`cachemap_util::check`).

use cachemap_core::cluster::{distribute, remap_failed, ClusterParams, Distribution, Linkage};
use cachemap_core::schedule::{schedule, ScheduleParams};
use cachemap_core::tags::{tag_nest, IterationChunk};
use cachemap_polyhedral::{
    AffineExpr, ArrayDecl, ArrayRef, DataSpace, IterationSpace, LoopNest, Program,
};
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_util::check::{cases, Gen};
use cachemap_util::BitSet;

/// Random small single-nest program with chunk-crossing strides.
fn arb_program(g: &mut Gen) -> (Program, DataSpace) {
    let n = g.i64_in(2, 14);
    let stride = g.i64_in(1, 5);
    let off = g.i64_in(0, 3);
    let chunk_elems = g.u64_in(1, 4);
    let elems = n * stride + off + stride + 2;
    let arrays = vec![ArrayDecl::new("A", vec![elems], 8)];
    let refs = vec![
        ArrayRef::read(0, vec![AffineExpr::new(vec![stride], off)]),
        ArrayRef::write(0, vec![AffineExpr::new(vec![stride], off + stride)]),
    ];
    let space = IterationSpace::rectangular(&[n]);
    let nest = LoopNest::new("p", space, refs);
    let program = Program::new("p", arrays, vec![nest]);
    let data = DataSpace::new(&program.arrays, chunk_elems * 8);
    (program, data)
}

fn arb_chunks(g: &mut Gen) -> Vec<IterationChunk> {
    let nspecs = g.usize_in(1, 24);
    (0..nspecs)
        .map(|k| {
            let bits = g.vec_usize(1..5, 0..24);
            let iters = g.usize_in(1, 6);
            IterationChunk {
                nest: 0,
                tag: BitSet::from_bits(24, bits),
                points: (0..iters).map(|i| vec![(k * 8 + i) as i64]).collect(),
            }
        })
        .collect()
}

fn tiny_tree() -> HierarchyTree {
    HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap()
}

#[test]
fn tags_partition_the_iteration_space() {
    cases(0x3A9_0001, 96, |g| {
        let (program, data) = arb_program(g);
        let tagged = tag_nest(&program, 0, &data);
        assert_eq!(tagged.total_iterations(), program.total_iterations());
        // Each chunk's members really produce that tag.
        for chunk in &tagged.chunks {
            for p in &chunk.points {
                let tag = cachemap_core::tags::tag_of_iteration(
                    &program.nests[0],
                    &program.arrays,
                    &data,
                    p,
                );
                assert_eq!(&tag, &chunk.tag);
            }
        }
        // Distinct chunks have distinct tags.
        for (i, a) in tagged.chunks.iter().enumerate() {
            for b in &tagged.chunks[i + 1..] {
                assert!(a.tag != b.tag);
            }
        }
    });
}

#[test]
fn distribution_is_exact_partition_for_any_linkage() {
    cases(0x3A9_0002, 96, |g| {
        let chunks = arb_chunks(g);
        let linkage = g.choose(&[Linkage::Total, Linkage::Average, Linkage::Sqrt]);
        let bthres = g.f64() * 0.5;
        let tree = tiny_tree();
        let params = ClusterParams {
            balance_threshold: bthres,
            linkage,
        };
        let dist = distribute(&chunks, &tree, &params);
        let total: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        assert_eq!(dist.total_iterations(), total);
        // No duplicated iteration.
        let mut seen = std::collections::HashSet::new();
        for items in &dist.per_client {
            for it in items {
                for k in it.start..it.end {
                    assert!(seen.insert((it.chunk, k)));
                }
            }
        }
    });
}

#[test]
fn schedule_is_a_permutation_of_the_distribution() {
    cases(0x3A9_0003, 96, |g| {
        let chunks = arb_chunks(g);
        let tree = tiny_tree();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        let sched = schedule(&dist, &chunks, &tree, &ScheduleParams::default());
        assert_eq!(sched.total_iterations(), dist.total_iterations());
        for c in 0..4 {
            let mut a = dist.per_client[c].clone();
            let mut b = sched.per_client[c].clone();
            a.sort_by_key(|i| (i.chunk, i.start));
            b.sort_by_key(|i| (i.chunk, i.start));
            assert_eq!(a, b, "client {} items changed", c);
        }
    });
}

#[test]
fn deeper_trees_distribute_over_all_clients() {
    cases(0x3A9_0004, 64, |g| {
        // A bigger tree must still partition exactly, with empty clients
        // allowed only when there are fewer items than clients.
        let chunks = arb_chunks(g);
        let cfg = PlatformConfig::paper_default().with_topology(16, 8, 4);
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        let total: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        assert_eq!(dist.total_iterations(), total);
        assert_eq!(dist.per_client.len(), 16);
    });
}

#[test]
fn remap_partitions_exactly_over_survivors_within_bthres() {
    cases(0x3A9_0006, 96, |g| {
        let chunks = arb_chunks(g);
        let tree = tiny_tree(); // 4 clients
        let params = ClusterParams::default();
        let dist = distribute(&chunks, &tree, &params);

        // Fail a random nonempty strict subset of the clients.
        let nfail = g.usize_in(1, 2);
        let mut failed: Vec<usize> = Vec::new();
        while failed.len() < nfail {
            let c = g.usize_in(0, 3);
            if !failed.contains(&c) {
                failed.push(c);
            }
        }
        failed.sort_unstable();
        let remapped = remap_failed(&dist, &chunks, &tree, &failed, &params).unwrap();

        // Failed clients hold nothing.
        for &f in &failed {
            assert!(remapped.per_client[f].is_empty(), "client {f} failed");
        }
        // Exact partition: the remap covers the same (chunk, iteration)
        // set as the original distribution, each exactly once.
        let cover = |d: &Distribution| {
            let mut set = std::collections::BTreeSet::new();
            for items in &d.per_client {
                for it in items {
                    for k in it.start..it.end {
                        assert!(set.insert((it.chunk, k)), "duplicated iteration");
                    }
                }
            }
            set
        };
        assert_eq!(cover(&remapped), cover(&dist));
        // Survivor loads stay near the survivor mean up to the balance
        // threshold compounded over the tree levels plus chunk slack.
        let per = remapped.iterations_per_client();
        let survivors: Vec<u64> = (0..per.len())
            .filter(|c| !failed.contains(c))
            .map(|c| per[c])
            .collect();
        let mean = survivors.iter().sum::<u64>() as f64 / survivors.len() as f64;
        let largest = chunks.iter().map(|c| c.len()).max().unwrap_or(0) as f64;
        let slack = mean * (params.balance_threshold + 0.35) + largest + 1.0;
        for &p in &survivors {
            assert!(
                (p as f64) <= mean + slack,
                "survivor load {p} vs mean {mean} (slack {slack})"
            );
        }
    });
}

#[test]
fn balance_threshold_zero_is_as_tight_as_granularity_allows() {
    cases(0x3A9_0005, 64, |g| {
        // Uniform chunks: with bthres 0 every client must land within
        // one chunk of the mean.
        let iters_per_chunk = g.usize_in(1, 5);
        let nchunks = g.usize_in(8, 40);
        let chunks: Vec<IterationChunk> = (0..nchunks)
            .map(|k| IterationChunk {
                nest: 0,
                tag: BitSet::from_bits(64, [k % 64, (k * 7) % 64]),
                points: (0..iters_per_chunk)
                    .map(|i| vec![(k * 8 + i) as i64])
                    .collect(),
            })
            .collect();
        let tree = tiny_tree();
        let params = ClusterParams {
            balance_threshold: 0.0,
            linkage: Linkage::Average,
        };
        let dist = distribute(&chunks, &tree, &params);
        let per = dist.iterations_per_client();
        let mean = per.iter().sum::<u64>() as f64 / per.len() as f64;
        for &p in &per {
            assert!(
                (p as f64 - mean).abs() <= iters_per_chunk as f64 + 1.0,
                "load {} vs mean {} (chunk size {})",
                p,
                mean,
                iters_per_chunk
            );
        }
    });
}
