//! Determinism properties of the parallel clustering kernel: for random
//! workloads, platforms, and fault plans, every [`Pool`] size must
//! produce results byte-identical to the sequential kernel — in the
//! wire serialization of the distribution, in the mapped op streams,
//! and in the profile counter totals (wall-clock excluded). Driven by
//! the in-repo deterministic harness (`cachemap_util::check`).

use cachemap_core::cluster::{
    distribute_pooled, distribute_profiled, remap_failed_pooled, remap_failed_profiled,
    ClusterParams, Linkage,
};
use cachemap_core::tags::IterationChunk;
use cachemap_core::{wire, Mapper, MapperConfig, Version};
use cachemap_obs::Profile;
use cachemap_par::Pool;
use cachemap_polyhedral::{
    AffineExpr, ArrayDecl, ArrayRef, DataSpace, IterationSpace, LoopNest, Program,
};
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_util::check::{cases, Gen};
use cachemap_util::{BitSet, Json, ToJson};

const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

fn arb_chunks(g: &mut Gen) -> Vec<IterationChunk> {
    // Mostly small, but occasionally past `PAR_MIN_SIM_CLUSTERS` so the
    // parallel similarity-graph and initial-scan paths get exercised,
    // not just the subtree fan-out.
    let nspecs = if g.usize_in(0, 7) == 0 {
        g.usize_in(96, 120)
    } else {
        g.usize_in(2, 28)
    };
    (0..nspecs)
        .map(|k| {
            let bits = g.vec_usize(1..5, 0..24);
            let iters = g.usize_in(1, 6);
            IterationChunk {
                nest: 0,
                tag: BitSet::from_bits(24, bits),
                points: (0..iters).map(|i| vec![(k * 8 + i) as i64]).collect(),
            }
        })
        .collect()
}

fn arb_platform(g: &mut Gen) -> PlatformConfig {
    let storage = g.usize_in(1, 3);
    let io = storage * g.usize_in(1, 2);
    let clients = io * g.usize_in(1, 3);
    PlatformConfig::paper_default().with_topology(clients, io, storage)
}

fn arb_params(g: &mut Gen) -> ClusterParams {
    ClusterParams {
        balance_threshold: g.f64() * 0.4,
        linkage: g.choose(&[Linkage::Total, Linkage::Average, Linkage::Sqrt]),
    }
}

/// Recursively zeroes every `wall_ns` field, leaving the deterministic
/// span structure and counters.
fn strip_wall(json: &Json) -> Json {
    match json {
        Json::Object(pairs) => Json::Object(
            pairs
                .iter()
                .map(|(k, v)| {
                    if k == "wall_ns" {
                        (k.clone(), Json::UInt(0))
                    } else {
                        (k.clone(), strip_wall(v))
                    }
                })
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(strip_wall).collect()),
        other => other.clone(),
    }
}

fn counters_of(prof: &Profile) -> String {
    strip_wall(&prof.to_json()).to_string_compact()
}

#[test]
fn pooled_distribution_is_byte_identical_to_sequential() {
    cases(0x9A7_0001, 48, |g| {
        let chunks = arb_chunks(g);
        let platform = arb_platform(g);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let params = arb_params(g);

        let mut seq_prof = Profile::enabled();
        let seq = distribute_profiled(&chunks, &tree, &params, &mut seq_prof);
        let seq_bytes = seq.to_json().to_string_compact();
        let seq_counters = counters_of(&seq_prof);

        for threads in POOL_SIZES {
            let mut prof = Profile::enabled();
            let dist = distribute_pooled(&chunks, &tree, &params, &Pool::new(threads), &mut prof);
            assert_eq!(
                dist.to_json().to_string_compact(),
                seq_bytes,
                "distribution diverged at pool size {threads}"
            );
            assert_eq!(
                counters_of(&prof),
                seq_counters,
                "profile counters diverged at pool size {threads}"
            );
        }
    });
}

#[test]
fn pooled_remap_matches_sequential_for_random_fault_plans() {
    cases(0x9A7_0002, 48, |g| {
        let chunks = arb_chunks(g);
        let platform = arb_platform(g);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let params = arb_params(g);
        let dist = distribute_profiled(&chunks, &tree, &params, &mut Profile::disabled());

        // Fail a random nonempty strict subset of the clients.
        let clients = platform.num_clients;
        if clients < 2 {
            return;
        }
        let nfail = g.usize_in(1, clients - 1);
        let mut failed: Vec<usize> = Vec::new();
        while failed.len() < nfail {
            let c = g.usize_in(0, clients - 1);
            if !failed.contains(&c) {
                failed.push(c);
            }
        }
        failed.sort_unstable();

        let mut seq_prof = Profile::enabled();
        let seq =
            remap_failed_profiled(&dist, &chunks, &tree, &failed, &params, &mut seq_prof).unwrap();
        let seq_bytes = seq.to_json().to_string_compact();
        let seq_counters = counters_of(&seq_prof);

        for threads in POOL_SIZES {
            let mut prof = Profile::enabled();
            let remapped = remap_failed_pooled(
                &dist,
                &chunks,
                &tree,
                &failed,
                &params,
                &Pool::new(threads),
                &mut prof,
            )
            .unwrap();
            assert_eq!(
                remapped.to_json().to_string_compact(),
                seq_bytes,
                "remap diverged at pool size {threads} (failed: {failed:?})"
            );
            assert_eq!(
                counters_of(&prof),
                seq_counters,
                "remap counters diverged at pool size {threads}"
            );
        }

        // The wire round-trip must also be exact, so a memoized service
        // response replays byte-for-byte regardless of the pool.
        let back = wire::distribution_from_json(&seq.to_json()).unwrap();
        assert_eq!(back.to_json().to_string_compact(), seq_bytes);
    });
}

/// Random small single-nest program with chunk-crossing strides (same
/// shape as the mapping property tests).
fn arb_program(g: &mut Gen) -> (Program, DataSpace) {
    let n = g.i64_in(4, 20);
    let stride = g.i64_in(1, 5);
    let off = g.i64_in(0, 3);
    let chunk_elems = g.u64_in(1, 4);
    let elems = n * stride + off + stride + 2;
    let arrays = vec![ArrayDecl::new("A", vec![elems], 8)];
    let refs = vec![
        ArrayRef::read(0, vec![AffineExpr::new(vec![stride], off)]),
        ArrayRef::write(0, vec![AffineExpr::new(vec![stride], off + stride)]),
    ];
    let space = IterationSpace::rectangular(&[n]);
    let nest = LoopNest::new("p", space, refs);
    let program = Program::new("p", arrays, vec![nest]);
    let data = DataSpace::new(&program.arrays, chunk_elems * 8);
    (program, data)
}

#[test]
fn pooled_mapper_produces_identical_programs_and_counters() {
    cases(0x9A7_0003, 24, |g| {
        let (program, data) = arb_program(g);
        let platform = arb_platform(g);
        let tree = HierarchyTree::from_config(&platform).unwrap();
        let cfg = MapperConfig::default();
        let version = g.choose(&[Version::InterProcessor, Version::InterProcessorScheduled]);

        let mut seq_prof = Profile::enabled();
        let seq = Mapper::new(cfg).map_profiled(
            &program,
            &data,
            &platform,
            &tree,
            version,
            &mut seq_prof,
        );
        let seq_counters = counters_of(&seq_prof);

        for threads in POOL_SIZES {
            let mapper = Mapper::new(cfg).with_pool(Pool::new(threads));
            let mut prof = Profile::enabled();
            let mapped = mapper.map_profiled(&program, &data, &platform, &tree, version, &mut prof);
            assert_eq!(
                mapped, seq,
                "mapped program diverged at pool size {threads}"
            );
            assert_eq!(
                counters_of(&prof),
                seq_counters,
                "map_profiled counters diverged at pool size {threads}"
            );
        }
    });
}
