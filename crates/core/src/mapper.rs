//! The top-level mapping facade.
//!
//! [`Mapper`] ties the whole pipeline together and produces the three
//! program versions the evaluation compares (Section 5.1):
//!
//! * [`Version::Original`] — lexicographic block distribution;
//! * [`Version::IntraProcessor`] — state-of-the-art single-processor
//!   locality transformations, then block distribution;
//! * [`Version::InterProcessor`] — the paper's cache-hierarchy-aware
//!   distribution (Figure 5);
//! * [`Version::InterProcessorScheduled`] — the same plus the local
//!   scheduling enhancement (Figure 15).
//!
//! "The total set of loop iterations executed in parallel is the same in
//! all versions; the only difference is the set of iterations assigned
//! to each processor" — the mapper guarantees exactly that.

use crate::baseline;
use crate::cluster::{self, ClusterParams};
use crate::codegen;
use crate::deps::{self, DepStrategy};
use crate::schedule::{self, ScheduleParams};
use crate::tags;
use cachemap_polyhedral::{DataSpace, Program};
use cachemap_storage::{HierarchyTree, MappedProgram, PlatformConfig};
use serde::{Deserialize, Serialize};

/// Which program version to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Version {
    /// Lexicographic order, contiguous blocks (the paper's baseline).
    Original,
    /// Locality-transformed order (permutation/tiling search), contiguous
    /// blocks — cache-hierarchy agnostic.
    IntraProcessor,
    /// The paper's hierarchical clustering distribution.
    InterProcessor,
    /// Clustering plus the Figure 15 local scheduling enhancement.
    InterProcessorScheduled,
}

impl Version {
    /// All four versions, in the order the paper's figures present them.
    pub const ALL: [Version; 4] = [
        Version::Original,
        Version::IntraProcessor,
        Version::InterProcessor,
        Version::InterProcessorScheduled,
    ];

    /// Short label used in harness tables.
    pub fn label(&self) -> &'static str {
        match self {
            Version::Original => "original",
            Version::IntraProcessor => "intra-processor",
            Version::InterProcessor => "inter-processor",
            Version::InterProcessorScheduled => "inter-processor+sched",
        }
    }
}

/// Mapper tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Clustering / load-balance parameters (Figure 5).
    pub cluster: ClusterParams,
    /// Scheduling weights (Figure 15).
    pub schedule: ScheduleParams,
    /// How to handle cross-iteration dependences (Section 5.4).
    pub dep_strategy: DepStrategy,
    /// Map all nests of the program jointly (the §5.4 multi-nest
    /// extension) instead of nest-by-nest.
    pub joint_nests: bool,
    /// Optional boundary-refinement sweeps after clustering (0 = the
    /// paper's pipeline as-is; see [`crate::refine`]).
    pub refine_passes: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        // The core scheme targets fully-parallel loops (Section 4); the
        // §5.4 dependence strategies are opt-in for loops that carry
        // dependences.
        MapperConfig {
            cluster: ClusterParams::default(),
            schedule: ScheduleParams::default(),
            dep_strategy: DepStrategy::Ignore,
            joint_nests: false,
            refine_passes: 0,
        }
    }
}

/// The compiler pass: maps a [`Program`] onto a platform.
#[derive(Debug, Clone)]
pub struct Mapper {
    cfg: MapperConfig,
}

impl Mapper {
    /// Creates a mapper with the given configuration.
    pub fn new(cfg: MapperConfig) -> Self {
        Mapper { cfg }
    }

    /// Creates a mapper with the paper's default parameters
    /// (10% balance threshold, α = β = 0.5, sync-insert dependences).
    pub fn paper_defaults() -> Self {
        Self::new(MapperConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.cfg
    }

    /// Maps `program` for `version` on the platform described by
    /// `platform` (whose hierarchy tree is `tree`), producing the op
    /// streams to simulate. The data space must be built from the
    /// program's arrays with the platform's chunk size.
    pub fn map(
        &self,
        program: &Program,
        data: &DataSpace,
        platform: &PlatformConfig,
        tree: &HierarchyTree,
        version: Version,
    ) -> MappedProgram {
        let k = platform.num_clients;
        match version {
            Version::Original => baseline::original(program, data, k),
            Version::IntraProcessor => {
                baseline::intra_processor(program, data, k, platform.client_cache_chunks)
            }
            Version::InterProcessor => self.map_inter(program, data, tree, false),
            Version::InterProcessorScheduled => self.map_inter(program, data, tree, true),
        }
    }

    /// The inter-processor pipeline: tag → cluster → (schedule) →
    /// (dependences) → lower.
    fn map_inter(
        &self,
        program: &Program,
        data: &DataSpace,
        tree: &HierarchyTree,
        with_schedule: bool,
    ) -> MappedProgram {
        let nest_groups: Vec<Vec<usize>> = if self.cfg.joint_nests {
            vec![(0..program.nests.len()).collect()]
        } else {
            (0..program.nests.len()).map(|i| vec![i]).collect()
        };

        let mut mp = MappedProgram::new(tree.num_clients());
        for group in nest_groups {
            let part = self.map_nest_group(program, data, tree, &group, with_schedule);
            codegen::append_program(&mut mp, part);
        }
        mp
    }

    fn map_nest_group(
        &self,
        program: &Program,
        data: &DataSpace,
        tree: &HierarchyTree,
        nest_indices: &[usize],
        with_schedule: bool,
    ) -> MappedProgram {
        // 1. Tagging (multi-nest groups share the data space).
        let (mut chunks, _ranges) = tags::tag_nests(program, nest_indices, data);

        // 2. Dependence discovery at chunk level (per nest; cross-nest
        //    dependences are sequenced by the per-client program order).
        let mut edges = Vec::new();
        if self.cfg.dep_strategy != DepStrategy::Ignore {
            let mut offset = 0usize;
            for &ni in nest_indices {
                let tagged = tags::tag_nest(program, ni, data);
                let nest_edges =
                    deps::chunk_dependence_edges(program, ni, data, &tagged);
                edges.extend(
                    nest_edges
                        .into_iter()
                        .map(|(a, b)| (a + offset, b + offset)),
                );
                offset += tagged.chunks.len();
            }
        }

        // 3. Strategy 1 (co-clustering) rewrites the chunk list so the
        //    dependent components are atomic; no synchronization needed.
        if self.cfg.dep_strategy == DepStrategy::CoCluster && !edges.is_empty() {
            chunks = deps::co_cluster(&chunks, &edges);
            edges.clear();
        }

        // 4. Hierarchical distribution (Figure 5).
        let mut dist = cluster::distribute(&chunks, tree, &self.cfg.cluster);

        // 4b. Optional boundary refinement (extension; off by default).
        if self.cfg.refine_passes > 0 {
            crate::refine::refine(&mut dist, &chunks, tree, self.cfg.refine_passes);
        }

        // 5. Chunk execution order. The paper's base inter-processor
        //    scheme executed each client's chunks "randomly" (§5.4); we
        //    use deterministic program order (lexicographically first
        //    iteration) instead, which also preserves disk streaming.
        //    The Figure 15 scheduling enhancement replaces that order
        //    with the reuse-driven one.
        if with_schedule {
            dist = schedule::schedule(&dist, &chunks, tree, &self.cfg.schedule);
        } else {
            for items in &mut dist.per_client {
                items.sort_by_key(|it| {
                    chunks[it.chunk]
                        .points
                        .get(it.start)
                        .cloned()
                        .unwrap_or_default()
                });
            }
        }

        // 6. Respect dependences inside each client's order, then lower
        //    with synchronization for the cross-client edges.
        if edges.is_empty() {
            codegen::lower_distribution(&dist, &chunks, program, data)
        } else {
            // Drop the (rare) cyclic artifacts of the conservative
            // chunk-granularity graph, impose one global topological
            // order on every client, then synchronize the remaining
            // forward edges — provably deadlock-free.
            let edges = deps::acyclic_edges(&edges);
            deps::enforce_intra_client_order(&mut dist, &edges);
            deps::lower_with_sync(&dist, &chunks, program, data, &edges)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_storage::Simulator;

    fn setup() -> (Program, DataSpace, PlatformConfig, HierarchyTree) {
        let (program, data) = crate::tags::tests::figure6_program(4);
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg);
        (program, data, cfg, tree)
    }

    #[test]
    fn all_versions_execute_the_same_iterations() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        let counts: Vec<u64> = Version::ALL
            .iter()
            .map(|&v| {
                mapper
                    .map(&program, &data, &cfg, &tree, v)
                    .total_accesses()
            })
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "all versions must issue the same accesses: {counts:?}"
        );
    }

    #[test]
    fn versions_simulate_end_to_end() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        let sim = Simulator::new(cfg.clone());
        for v in Version::ALL {
            let mp = mapper.map(&program, &data, &cfg, &tree, v);
            let rep = sim.run(&mp);
            assert!(rep.l1.accesses() > 0, "{v:?} produced no accesses");
            assert!(rep.exec_time_ns > 0);
        }
    }

    #[test]
    fn joint_nests_covers_everything_once() {
        let (mut program, data, cfg, tree) = setup();
        let second = program.nests[0].clone();
        program.nests.push(second);
        let mapper = Mapper::new(MapperConfig {
            joint_nests: true,
            ..MapperConfig::default()
        });
        let joint = mapper.map(&program, &data, &cfg, &tree, Version::InterProcessor);
        let mapper2 = Mapper::paper_defaults();
        let separate = mapper2.map(&program, &data, &cfg, &tree, Version::InterProcessor);
        assert_eq!(joint.total_accesses(), separate.total_accesses());
    }

    #[test]
    fn version_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Version::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
