//! The top-level mapping facade.
//!
//! [`Mapper`] ties the whole pipeline together and produces the three
//! program versions the evaluation compares (Section 5.1):
//!
//! * [`Version::Original`] — lexicographic block distribution;
//! * [`Version::IntraProcessor`] — state-of-the-art single-processor
//!   locality transformations, then block distribution;
//! * [`Version::InterProcessor`] — the paper's cache-hierarchy-aware
//!   distribution (Figure 5);
//! * [`Version::InterProcessorScheduled`] — the same plus the local
//!   scheduling enhancement (Figure 15).
//!
//! "The total set of loop iterations executed in parallel is the same in
//! all versions; the only difference is the set of iterations assigned
//! to each processor" — the mapper guarantees exactly that.

use crate::baseline;
use crate::cluster::{self, ClusterParams, RemapError};
use crate::codegen;
use crate::deps::{self, DepStrategy};
use crate::schedule::{self, ScheduleParams};
use crate::tags;
use cachemap_obs::Profile;
use cachemap_par::Pool;
use cachemap_polyhedral::{DataSpace, Program};
use cachemap_storage::{HierarchyTree, MappedProgram, PlatformConfig};

/// Which program version to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Lexicographic order, contiguous blocks (the paper's baseline).
    Original,
    /// Locality-transformed order (permutation/tiling search), contiguous
    /// blocks — cache-hierarchy agnostic.
    IntraProcessor,
    /// The paper's hierarchical clustering distribution.
    InterProcessor,
    /// Clustering plus the Figure 15 local scheduling enhancement.
    InterProcessorScheduled,
}

impl Version {
    /// All four versions, in the order the paper's figures present them.
    pub const ALL: [Version; 4] = [
        Version::Original,
        Version::IntraProcessor,
        Version::InterProcessor,
        Version::InterProcessorScheduled,
    ];

    /// Short label used in harness tables.
    pub fn label(&self) -> &'static str {
        match self {
            Version::Original => "original",
            Version::IntraProcessor => "intra-processor",
            Version::InterProcessor => "inter-processor",
            Version::InterProcessorScheduled => "inter-processor+sched",
        }
    }
}

/// Mapper tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapperConfig {
    /// Clustering / load-balance parameters (Figure 5).
    pub cluster: ClusterParams,
    /// Scheduling weights (Figure 15).
    pub schedule: ScheduleParams,
    /// How to handle cross-iteration dependences (Section 5.4).
    pub dep_strategy: DepStrategy,
    /// Map all nests of the program jointly (the §5.4 multi-nest
    /// extension) instead of nest-by-nest.
    pub joint_nests: bool,
    /// Optional boundary-refinement sweeps after clustering (0 = the
    /// paper's pipeline as-is; see [`crate::refine`]).
    pub refine_passes: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        // The core scheme targets fully-parallel loops (Section 4); the
        // §5.4 dependence strategies are opt-in for loops that carry
        // dependences.
        MapperConfig {
            cluster: ClusterParams::default(),
            schedule: ScheduleParams::default(),
            dep_strategy: DepStrategy::Ignore,
            joint_nests: false,
            refine_passes: 0,
        }
    }
}

/// The compiler pass: maps a [`Program`] onto a platform.
#[derive(Debug, Clone)]
pub struct Mapper {
    cfg: MapperConfig,
    pool: Pool,
}

impl Mapper {
    /// Creates a mapper with the given configuration. The mapper runs
    /// sequentially; see [`Mapper::with_pool`].
    pub fn new(cfg: MapperConfig) -> Self {
        Mapper {
            cfg,
            pool: Pool::sequential(),
        }
    }

    /// Creates a mapper with the paper's default parameters
    /// (10% balance threshold, α = β = 0.5, sync-insert dependences).
    pub fn paper_defaults() -> Self {
        Self::new(MapperConfig::default())
    }

    /// Runs the clustering kernel (and failure remaps) on `pool`.
    ///
    /// The pool is an execution detail, deliberately **not** part of
    /// [`MapperConfig`]: mapping results are byte-identical for any
    /// pool size, so the thread count must not leak into wire
    /// serialization or request fingerprints.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// The pool the clustering kernel runs on.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.cfg
    }

    /// Maps `program` for `version` on the platform described by
    /// `platform` (whose hierarchy tree is `tree`), producing the op
    /// streams to simulate. The data space must be built from the
    /// program's arrays with the platform's chunk size.
    pub fn map(
        &self,
        program: &Program,
        data: &DataSpace,
        platform: &PlatformConfig,
        tree: &HierarchyTree,
        version: Version,
    ) -> MappedProgram {
        self.map_profiled(
            program,
            data,
            platform,
            tree,
            version,
            &mut Profile::disabled(),
        )
    }

    /// [`Mapper::map`] with phase accounting: the pipeline stages record
    /// wall-clock spans (`tagging`, `dependences`, `cluster` with one
    /// child per hierarchy level, `refine`, `schedule`/`order`, `lower`)
    /// and deterministic counters (chunk, edge, merge, balance-move
    /// totals) into `prof`. With a disabled profile this is exactly
    /// [`Mapper::map`]; the baselines record only the outer `map` span
    /// since they bypass the pipeline.
    pub fn map_profiled(
        &self,
        program: &Program,
        data: &DataSpace,
        platform: &PlatformConfig,
        tree: &HierarchyTree,
        version: Version,
        prof: &mut Profile,
    ) -> MappedProgram {
        prof.scope("map", |prof| {
            let k = platform.num_clients;
            match version {
                Version::Original => baseline::original(program, data, k),
                Version::IntraProcessor => {
                    baseline::intra_processor(program, data, k, platform.client_cache_chunks)
                }
                Version::InterProcessor | Version::InterProcessorScheduled => {
                    let sched = version == Version::InterProcessorScheduled;
                    match self.map_inter(program, data, tree, sched, &[], prof) {
                        Ok(mp) => mp,
                        Err(_) => {
                            // Invariant: with no failed clients the remap step
                            // is skipped, so map_inter cannot fail.
                            debug_assert!(false, "mapping without failures cannot fail");
                            MappedProgram::new(tree.num_clients())
                        }
                    }
                }
            }
        })
    }

    /// Failure-aware mapping: like [`Mapper::map`], but the iteration
    /// ranges of `failed_clients` are redistributed over the survivors.
    ///
    /// For the inter-processor versions the failed clients' chunks are
    /// re-clustered against the *pruned* hierarchy tree (Figure 5 on the
    /// degraded platform, honoring `BThres`); for the baselines — which
    /// are hierarchy-agnostic by construction — the orphaned op streams
    /// are reassigned round-robin over the survivors.
    ///
    /// # Errors
    /// See [`RemapError`]; an empty `failed_clients` never fails.
    pub fn map_with_failures(
        &self,
        program: &Program,
        data: &DataSpace,
        platform: &PlatformConfig,
        tree: &HierarchyTree,
        version: Version,
        failed_clients: &[usize],
    ) -> Result<MappedProgram, RemapError> {
        self.map_with_failures_profiled(
            program,
            data,
            platform,
            tree,
            version,
            failed_clients,
            &mut Profile::disabled(),
        )
    }

    /// [`Mapper::map_with_failures`] with phase accounting (see
    /// [`Mapper::map_profiled`]); the failure-aware re-clustering shows
    /// up as a `remap` span inside the pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn map_with_failures_profiled(
        &self,
        program: &Program,
        data: &DataSpace,
        platform: &PlatformConfig,
        tree: &HierarchyTree,
        version: Version,
        failed_clients: &[usize],
        prof: &mut Profile,
    ) -> Result<MappedProgram, RemapError> {
        if failed_clients.is_empty() {
            return Ok(self.map_profiled(program, data, platform, tree, version, prof));
        }
        prof.scope("map", |prof| match version {
            Version::Original | Version::IntraProcessor => {
                let mp = self.map(program, data, platform, tree, version);
                reassign_round_robin(mp, failed_clients)
            }
            Version::InterProcessor => {
                self.map_inter(program, data, tree, false, failed_clients, prof)
            }
            Version::InterProcessorScheduled => {
                self.map_inter(program, data, tree, true, failed_clients, prof)
            }
        })
    }

    /// The inter-processor pipeline: tag → cluster → (remap) →
    /// (schedule) → (dependences) → lower.
    fn map_inter(
        &self,
        program: &Program,
        data: &DataSpace,
        tree: &HierarchyTree,
        with_schedule: bool,
        failed_clients: &[usize],
        prof: &mut Profile,
    ) -> Result<MappedProgram, RemapError> {
        let nest_groups: Vec<Vec<usize>> = if self.cfg.joint_nests {
            vec![(0..program.nests.len()).collect()]
        } else {
            (0..program.nests.len()).map(|i| vec![i]).collect()
        };
        prof.count("nest_groups", nest_groups.len() as u64);

        let mut mp = MappedProgram::new(tree.num_clients());
        for group in nest_groups {
            let part = self.map_nest_group(
                program,
                data,
                tree,
                &group,
                with_schedule,
                failed_clients,
                prof,
            )?;
            codegen::append_program(&mut mp, part);
        }
        Ok(mp)
    }

    #[allow(clippy::too_many_arguments)]
    fn map_nest_group(
        &self,
        program: &Program,
        data: &DataSpace,
        tree: &HierarchyTree,
        nest_indices: &[usize],
        with_schedule: bool,
        failed_clients: &[usize],
        prof: &mut Profile,
    ) -> Result<MappedProgram, RemapError> {
        // 1. Tagging (multi-nest groups share the data space).
        let (mut chunks, _ranges) = prof.scope("tagging", |prof| {
            let tagged = tags::tag_nests(program, nest_indices, data);
            prof.count("nests", nest_indices.len() as u64);
            prof.count("chunks", tagged.0.len() as u64);
            tagged
        });

        // 2. Dependence discovery at chunk level (per nest; cross-nest
        //    dependences are sequenced by the per-client program order).
        let mut edges = Vec::new();
        if self.cfg.dep_strategy != DepStrategy::Ignore {
            prof.scope("dependences", |prof| {
                let mut offset = 0usize;
                for &ni in nest_indices {
                    let tagged = tags::tag_nest(program, ni, data);
                    let nest_edges = deps::chunk_dependence_edges(program, ni, data, &tagged);
                    edges.extend(
                        nest_edges
                            .into_iter()
                            .map(|(a, b)| (a + offset, b + offset)),
                    );
                    offset += tagged.chunks.len();
                }
                prof.count("edges", edges.len() as u64);
            });
        }

        // 3. Strategy 1 (co-clustering) rewrites the chunk list so the
        //    dependent components are atomic; no synchronization needed.
        if self.cfg.dep_strategy == DepStrategy::CoCluster && !edges.is_empty() {
            chunks = deps::co_cluster(&chunks, &edges);
            edges.clear();
        }

        // 4. Hierarchical distribution (Figure 5).
        let mut dist = prof.scope("cluster", |prof| {
            cluster::distribute_pooled(&chunks, tree, &self.cfg.cluster, &self.pool, prof)
        });

        // 4b. Optional boundary refinement (extension; off by default).
        if self.cfg.refine_passes > 0 {
            prof.scope("refine", |_| {
                crate::refine::refine(&mut dist, &chunks, tree, self.cfg.refine_passes);
            });
        }

        // 4c. Failure-aware remap: re-cluster the failed clients' work
        //     over the pruned hierarchy before scheduling/lowering.
        if !failed_clients.is_empty() {
            dist = prof.scope("remap", |prof| {
                prof.count("failed_clients", failed_clients.len() as u64);
                cluster::remap_failed_pooled(
                    &dist,
                    &chunks,
                    tree,
                    failed_clients,
                    &self.cfg.cluster,
                    &self.pool,
                    prof,
                )
            })?;
        }

        // 5. Chunk execution order. The paper's base inter-processor
        //    scheme executed each client's chunks "randomly" (§5.4); we
        //    use deterministic program order (lexicographically first
        //    iteration) instead, which also preserves disk streaming.
        //    The Figure 15 scheduling enhancement replaces that order
        //    with the reuse-driven one.
        if with_schedule {
            dist = prof.scope("schedule", |_| {
                schedule::schedule(&dist, &chunks, tree, &self.cfg.schedule)
            });
        } else {
            prof.scope("order", |_| {
                for items in &mut dist.per_client {
                    items.sort_by_key(|it| {
                        chunks[it.chunk]
                            .points
                            .get(it.start)
                            .cloned()
                            .unwrap_or_default()
                    });
                }
            });
        }

        // 6. Respect dependences inside each client's order, then lower
        //    with synchronization for the cross-client edges.
        prof.scope("lower", |_| {
            if edges.is_empty() {
                Ok(codegen::lower_distribution(&dist, &chunks, program, data))
            } else {
                // Drop the (rare) cyclic artifacts of the conservative
                // chunk-granularity graph, impose one global topological
                // order on every client, then synchronize the remaining
                // forward edges — provably deadlock-free.
                let edges = deps::acyclic_edges(&edges);
                deps::enforce_intra_client_order(&mut dist, &edges);
                Ok(deps::lower_with_sync(&dist, &chunks, program, data, &edges))
            }
        })
    }
}

/// Reassigns the op streams of failed clients round-robin over the
/// survivors (the hierarchy-agnostic fallback used for the baseline
/// versions).
fn reassign_round_robin(
    mut mp: MappedProgram,
    failed: &[usize],
) -> Result<MappedProgram, RemapError> {
    use cachemap_storage::topology::PruneError;
    let n = mp.num_clients();
    let mut is_failed = vec![false; n];
    for &c in failed {
        if c >= n {
            return Err(RemapError::Prune(PruneError::UnknownClient {
                client: c,
                num_clients: n,
            }));
        }
        is_failed[c] = true;
    }
    let survivors: Vec<usize> = (0..n).filter(|&c| !is_failed[c]).collect();
    if survivors.is_empty() {
        return Err(RemapError::Prune(PruneError::NoSurvivors));
    }
    let mut rr = 0usize;
    for (c, &dead) in is_failed.iter().enumerate() {
        if dead {
            let ops = std::mem::take(&mut mp.per_client[c]);
            mp.per_client[survivors[rr % survivors.len()]].extend(ops);
            rr += 1;
        }
    }
    Ok(mp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_storage::Simulator;

    fn setup() -> (Program, DataSpace, PlatformConfig, HierarchyTree) {
        let (program, data) = crate::tags::tests::figure6_program(4);
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        (program, data, cfg, tree)
    }

    #[test]
    fn all_versions_execute_the_same_iterations() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        let counts: Vec<u64> = Version::ALL
            .iter()
            .map(|&v| mapper.map(&program, &data, &cfg, &tree, v).total_accesses())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "all versions must issue the same accesses: {counts:?}"
        );
    }

    #[test]
    fn versions_simulate_end_to_end() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        let sim = Simulator::new(cfg.clone()).unwrap();
        for v in Version::ALL {
            let mp = mapper.map(&program, &data, &cfg, &tree, v);
            let rep = sim.run(&mp).unwrap();
            assert!(rep.l1.accesses() > 0, "{v:?} produced no accesses");
            assert!(rep.exec_time_ns > 0);
        }
    }

    #[test]
    fn failure_mapping_preserves_total_work_in_every_version() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        for v in Version::ALL {
            let healthy = mapper.map(&program, &data, &cfg, &tree, v);
            let degraded = mapper
                .map_with_failures(&program, &data, &cfg, &tree, v, &[0])
                .unwrap();
            assert_eq!(
                degraded.total_accesses(),
                healthy.total_accesses(),
                "{v:?}: failures must not change the executed iterations"
            );
            assert!(
                degraded.per_client[0]
                    .iter()
                    .all(|op| !matches!(op, cachemap_storage::ClientOp::Access { .. })),
                "{v:?}: failed client 0 must issue no accesses"
            );
        }
    }

    #[test]
    fn failure_mapping_with_no_failures_matches_map() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        for v in Version::ALL {
            let a = mapper.map(&program, &data, &cfg, &tree, v);
            let b = mapper
                .map_with_failures(&program, &data, &cfg, &tree, v, &[])
                .unwrap();
            assert_eq!(a, b, "{v:?}");
        }
    }

    #[test]
    fn failure_mapping_rejects_bad_client_sets() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        for v in [Version::Original, Version::InterProcessor] {
            assert!(mapper
                .map_with_failures(&program, &data, &cfg, &tree, v, &[7])
                .is_err());
            assert!(mapper
                .map_with_failures(&program, &data, &cfg, &tree, v, &[0, 1, 2, 3])
                .is_err());
        }
    }

    #[test]
    fn degraded_inter_mapping_simulates_end_to_end() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        let sim = Simulator::new(cfg.clone()).unwrap();
        let mp = mapper
            .map_with_failures(
                &program,
                &data,
                &cfg,
                &tree,
                Version::InterProcessor,
                &[0, 1],
            )
            .unwrap();
        let rep = sim.run(&mp).unwrap();
        assert!(rep.l1.accesses() > 0);
        assert_eq!(rep.per_client_finish_ns[0], 0, "failed client idles");
        assert_eq!(rep.per_client_finish_ns[1], 0, "failed client idles");
    }

    #[test]
    fn joint_nests_covers_everything_once() {
        let (mut program, data, cfg, tree) = setup();
        let second = program.nests[0].clone();
        program.nests.push(second);
        let mapper = Mapper::new(MapperConfig {
            joint_nests: true,
            ..MapperConfig::default()
        });
        let joint = mapper.map(&program, &data, &cfg, &tree, Version::InterProcessor);
        let mapper2 = Mapper::paper_defaults();
        let separate = mapper2.map(&program, &data, &cfg, &tree, Version::InterProcessor);
        assert_eq!(joint.total_accesses(), separate.total_accesses());
    }

    #[test]
    fn profiled_map_matches_unprofiled_and_records_pipeline_phases() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        let v = Version::InterProcessorScheduled;
        let mut prof = Profile::enabled();
        let profiled = mapper.map_profiled(&program, &data, &cfg, &tree, v, &mut prof);
        assert_eq!(profiled, mapper.map(&program, &data, &cfg, &tree, v));

        let map = prof.root_named("map").expect("map span recorded");
        let names: Vec<&str> = map
            .children
            .iter()
            .map(|&i| prof.node(i).name.as_str())
            .collect();
        assert_eq!(names, ["tagging", "cluster", "schedule", "lower"]);
        let cluster = map
            .children
            .iter()
            .map(|&i| prof.node(i))
            .find(|n| n.name == "cluster")
            .unwrap();
        // tiny platform: storage root → I/O level → clients.
        let storage = cluster
            .children
            .iter()
            .map(|&i| prof.node(i))
            .find(|n| n.name == "level:storage")
            .expect("per-level span");
        assert!(storage.count("items").is_some_and(|v| v > 0));
        assert!(storage
            .children
            .iter()
            .any(|&i| prof.node(i).name == "level:io"));
    }

    #[test]
    fn profiled_failure_mapping_records_remap_span() {
        let (program, data, cfg, tree) = setup();
        let mapper = Mapper::paper_defaults();
        let mut prof = Profile::enabled();
        let mp = mapper
            .map_with_failures_profiled(
                &program,
                &data,
                &cfg,
                &tree,
                Version::InterProcessor,
                &[0],
                &mut prof,
            )
            .unwrap();
        assert_eq!(
            mp,
            mapper
                .map_with_failures(&program, &data, &cfg, &tree, Version::InterProcessor, &[0])
                .unwrap(),
            "profiling must not change the mapping"
        );
        let map = prof.root_named("map").expect("map span recorded");
        let remap = map
            .children
            .iter()
            .map(|&i| prof.node(i))
            .find(|n| n.name == "remap")
            .expect("remap span");
        assert_eq!(remap.count("failed_clients"), Some(1));
    }

    #[test]
    fn version_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Version::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
