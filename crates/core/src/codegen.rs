//! Lowering mapped iterations to simulator operation streams.
//!
//! The paper uses the Omega Library's `codegen(.)` to emit loops that
//! enumerate the iterations of each γΛ assigned to a client, and MPI-IO
//! calls for the actual accesses. Our equivalent lowers a
//! [`Distribution`] (or an explicit per-client iteration order, for the
//! baselines) into the [`MappedProgram`] op streams the discrete-event
//! simulator executes: one `Compute` op plus one `Access` op per array
//! reference for every iteration.

use crate::cluster::Distribution;
use crate::tags::IterationChunk;
use cachemap_polyhedral::{AccessKind, DataSpace, Point, Program};
use cachemap_storage::{ClientOp, MappedProgram};

/// Appends the ops of a single iteration of `nest_idx` to `out`.
pub fn emit_iteration(
    program: &Program,
    data: &DataSpace,
    nest_idx: usize,
    point: &Point,
    out: &mut Vec<ClientOp>,
) {
    let nest = &program.nests[nest_idx];
    let compute_ns = (nest.compute_us * 1000.0).round() as u64;
    if compute_ns > 0 {
        out.push(ClientOp::Compute { ns: compute_ns });
    }
    for r in &nest.refs {
        let lin = r.eval_linear(point, &program.arrays[r.array]);
        let chunk = data.chunk_of(r.array, lin);
        out.push(ClientOp::Access {
            chunk,
            write: r.kind == AccessKind::Write,
        });
    }
}

/// Lowers a distribution over iteration chunks to per-client op streams.
/// Items execute in their per-client order; iterations within an item in
/// their stored (lexicographic) order.
pub fn lower_distribution(
    dist: &Distribution,
    chunks: &[IterationChunk],
    program: &Program,
    data: &DataSpace,
) -> MappedProgram {
    let mut mp = MappedProgram::new(dist.per_client.len());
    for (c, items) in dist.per_client.iter().enumerate() {
        let ops = &mut mp.per_client[c];
        for item in items {
            let chunk = &chunks[item.chunk];
            for point in &chunk.points[item.start..item.end] {
                emit_iteration(program, data, chunk.nest, point, ops);
            }
        }
    }
    mp
}

/// Lowers explicit per-client iteration orders (used by the original and
/// intra-processor baselines, which do not operate at iteration-chunk
/// granularity). Each entry is `(nest index, iteration point)`.
pub fn lower_iteration_lists(
    per_client: &[Vec<(usize, Point)>],
    program: &Program,
    data: &DataSpace,
) -> MappedProgram {
    let mut mp = MappedProgram::new(per_client.len());
    for (c, list) in per_client.iter().enumerate() {
        let ops = &mut mp.per_client[c];
        for (nest_idx, point) in list {
            emit_iteration(program, data, *nest_idx, point, ops);
        }
    }
    mp
}

/// Appends the ops of another mapped program to this one, client by
/// client (used when a program has several nests mapped independently).
pub fn append_program(dst: &mut MappedProgram, src: MappedProgram) {
    assert_eq!(
        dst.num_clients(),
        src.num_clients(),
        "client counts must match"
    );
    for (d, s) in dst.per_client.iter_mut().zip(src.per_client) {
        d.extend(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::WorkItem;
    use cachemap_polyhedral::{AffineExpr, ArrayDecl, ArrayRef, IterationSpace, LoopNest};

    fn tiny_program() -> (Program, DataSpace) {
        let a = ArrayDecl::new("A", vec![16], 8);
        let space = IterationSpace::rectangular(&[16]);
        let refs = vec![
            ArrayRef::read(0, vec![AffineExpr::var(0)]),
            ArrayRef::write(0, vec![AffineExpr::var(0)]),
        ];
        let nest = LoopNest::new("n", space, refs).with_compute_us(2.0);
        let program = Program::new("p", vec![a], vec![nest]);
        let data = DataSpace::new(&program.arrays, 32); // 4 elems per chunk
        (program, data)
    }

    #[test]
    fn emit_iteration_shapes_ops() {
        let (program, data) = tiny_program();
        let mut ops = Vec::new();
        emit_iteration(&program, &data, 0, &vec![5], &mut ops);
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], ClientOp::Compute { ns: 2000 });
        assert_eq!(
            ops[1],
            ClientOp::Access {
                chunk: 1,
                write: false
            }
        );
        assert_eq!(
            ops[2],
            ClientOp::Access {
                chunk: 1,
                write: true
            }
        );
    }

    #[test]
    fn lower_distribution_respects_item_ranges() {
        let (program, data) = tiny_program();
        let chunk = IterationChunk {
            nest: 0,
            tag: cachemap_util::BitSet::from_tag_str("1000"),
            points: (0..4).map(|i| vec![i]).collect(),
        };
        let dist = Distribution {
            per_client: vec![
                vec![WorkItem {
                    chunk: 0,
                    start: 1,
                    end: 3,
                }],
                vec![],
            ],
        };
        let mp = lower_distribution(&dist, &[chunk], &program, &data);
        // 2 iterations × (1 compute + 2 accesses) = 6 ops.
        assert_eq!(mp.per_client[0].len(), 6);
        assert!(mp.per_client[1].is_empty());
        assert_eq!(mp.total_accesses(), 4);
    }

    #[test]
    fn lower_iteration_lists_orders_ops() {
        let (program, data) = tiny_program();
        let lists = vec![vec![(0usize, vec![15i64]), (0, vec![0])]];
        let mp = lower_iteration_lists(&lists, &program, &data);
        // First iteration (15) touches chunk 3, second (0) chunk 0.
        let accesses: Vec<usize> = mp.per_client[0]
            .iter()
            .filter_map(|op| match op {
                ClientOp::Access { chunk, .. } => Some(*chunk),
                _ => None,
            })
            .collect();
        assert_eq!(accesses, vec![3, 3, 0, 0]);
    }

    #[test]
    fn append_concatenates_streams() {
        let (program, data) = tiny_program();
        let lists = vec![vec![(0usize, vec![0i64])]];
        let mut a = lower_iteration_lists(&lists, &program, &data);
        let b = lower_iteration_lists(&lists, &program, &data);
        let before = a.per_client[0].len();
        append_program(&mut a, b);
        assert_eq!(a.per_client[0].len(), 2 * before);
    }

    #[test]
    fn zero_compute_emits_no_compute_op() {
        let (mut program, data) = tiny_program();
        program.nests[0].compute_us = 0.0;
        let mut ops = Vec::new();
        emit_iteration(&program, &data, 0, &vec![0], &mut ops);
        assert!(ops.iter().all(|op| !matches!(op, ClientOp::Compute { .. })));
    }
}
