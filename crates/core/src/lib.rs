//! Storage-cache-hierarchy-aware iteration-to-processor mapping.
//!
//! This crate implements the primary contribution of *"Computation
//! Mapping for Multi-Level Storage Cache Hierarchies"* (Kandemir et al.,
//! HPDC 2010): a compiler-directed scheme that distributes the parallel
//! iterations of I/O-intensive loop nests across client nodes so that the
//! multi-level storage cache hierarchy is used constructively rather than
//! destructively.
//!
//! The pipeline, mirroring Section 4 of the paper:
//!
//! 1. [`tags`] — assign every iteration its r-bit data-chunk access tag
//!    and group equal-tag iterations into **iteration chunks** (§4.2);
//! 2. [`graph`] — build the similarity graph whose edge weights are the
//!    common 1-bits between chunk tags (§4.3, *Initialization*);
//! 3. [`cluster`] — hierarchically cluster iteration chunks down the
//!    storage cache hierarchy tree, greedily merging by tag dot-product
//!    and load-balancing within the balance threshold (§4.3, Figure 5);
//! 4. [`schedule`] — optionally reorder each client's chunks to maximize
//!    vertical (own L1) and horizontal (shared I/O cache) reuse
//!    (§5.4, Figure 15);
//! 5. [`codegen`] — lower per-client chunk schedules to the simulator's
//!    operation streams (the stand-in for Omega `codegen` + MPI-IO
//!    calls);
//! 6. [`deps`] — the two §5.4 strategies for loops with cross-iteration
//!    dependences (forced co-clustering, or dependences-as-sharing with
//!    inserted synchronization);
//! 7. [`baseline`] — the two comparison versions of §5.1: the *original*
//!    lexicographic block mapping and the *intra-processor*
//!    state-of-the-art locality scheme (permutation + tiling chosen by
//!    search, cache-hierarchy agnostic);
//! 8. [`mapper`] — the top-level [`mapper::Mapper`] facade tying it all
//!    together, including multi-nest mapping (§5.4);
//! 9. [`refine`] / [`analysis`] — extensions beyond the paper: optional
//!    KL-style boundary refinement of the distribution, and static
//!    quality metrics (replication, affinity capture) for diagnostics;
//! 10. [`online`] — the online resilience supervisor: epoch-sliced
//!     execution with checkpointed progress, oracle-free failure
//!     detection from engine observations, and incremental live
//!     remapping of the remaining work onto surviving clusters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod baseline;
pub mod cluster;
pub mod codegen;
pub mod deps;
pub mod graph;
pub mod mapper;
pub mod online;
pub mod refine;
pub mod schedule;
pub mod tags;
pub mod wire;

pub use cluster::{Distribution, WorkItem};
pub use mapper::{Mapper, MapperConfig, Version};
pub use online::{run_online, OnlineConfig, OnlineDetection, OnlineError, OnlineOutcome};
pub use tags::{IterationChunk, TaggedNest};
pub use wire::fingerprint;
