//! Cache-hierarchy-conscious loop iteration distribution (Figure 5).
//!
//! The algorithm descends the storage cache hierarchy tree from the root
//! toward the client leaves. At each tree node it partitions the
//! iteration chunks it inherited into as many clusters as the node has
//! children:
//!
//! * **Stage 1 (clustering)** — greedy agglomerative merging: repeatedly
//!   merge the two clusters whose tags have the maximal dot product
//!   (a cluster's tag is the bitwise *sum* — a per-chunk count vector —
//!   of its members' tags). If there are fewer clusters than children,
//!   the largest clusters are split until the counts match.
//! * **Stage 2 (load balancing)** — greedy eviction from oversized to
//!   undersized clusters within the *balance threshold* `BThres`,
//!   choosing the evicted chunk to maximize the dot product with the
//!   recipient's tag, and splitting an iteration chunk when no whole
//!   chunk fits the limits.
//!
//! After `log` levels the leaves each hold one cluster: the set of
//! iteration chunks that client node will execute.

use crate::tags::IterationChunk;
use cachemap_obs::Profile;
use cachemap_par::Pool;
use cachemap_storage::topology::{CacheLevel, HierarchyTree, NodeId};
use cachemap_util::{BitSet, CountVec};

/// Minimum cluster count before the pairwise similarity build and the
/// initial best-partner scans go parallel; below this the spawn cost of
/// a scoped fan-out exceeds the dot-product work. Results are identical
/// either way — this is purely a work-size cutoff.
const PAR_MIN_SIM_CLUSTERS: usize = 96;

/// Minimum total item count at a tree node before its per-subtree
/// recursion fans out onto the pool.
const PAR_MIN_FANOUT_ITEMS: usize = 32;

/// A contiguous slice of one iteration chunk's iterations.
///
/// Initially each iteration chunk is one whole item; load balancing may
/// split an item into sub-ranges (`γΛa` split "according to the balance
/// threshold requirements"). `start..end` index into
/// [`IterationChunk::points`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Index into the chunk list this distribution was built from.
    pub chunk: usize,
    /// First iteration (inclusive).
    pub start: usize,
    /// Last iteration (exclusive).
    pub end: usize,
}

impl WorkItem {
    /// Whole-chunk item.
    pub fn whole(chunk: usize, len: usize) -> Self {
        WorkItem {
            chunk,
            start: 0,
            end: len,
        }
    }

    /// Number of iterations in this item.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the item covers no iterations.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// The output of the distribution algorithm: the ordered iteration-chunk
/// items assigned to each client node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    /// `per_client[c]` lists the items client `c` will execute, in
    /// (pre-scheduling) assignment order.
    pub per_client: Vec<Vec<WorkItem>>,
}

impl Distribution {
    /// Iterations assigned to each client.
    pub fn iterations_per_client(&self) -> Vec<u64> {
        self.per_client
            .iter()
            .map(|items| items.iter().map(|i| i.len() as u64).sum())
            .collect()
    }

    /// Total iterations over all clients.
    pub fn total_iterations(&self) -> u64 {
        self.iterations_per_client().iter().sum()
    }

    /// Largest relative imbalance vs. the mean client load, in `[0, ∞)`.
    pub fn imbalance(&self) -> f64 {
        let per = self.iterations_per_client();
        if per.is_empty() {
            return 0.0;
        }
        let mean = per.iter().sum::<u64>() as f64 / per.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        per.iter()
            .map(|&x| (x as f64 - mean).abs() / mean)
            .fold(0.0, f64::max)
    }
}

/// How Stage 1 scores a candidate merge of two clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Raw dot product of the bitwise-sum tags, exactly as written in
    /// Figure 5. Scores grow with cluster size, so early big clusters
    /// attract every subsequent merge (rich-get-richer), which degrades
    /// structure on large inputs — kept for fidelity and as an ablation.
    Total,
    /// Dot product normalized by the product of the clusters' member
    /// counts (average linkage). Immune to the rich-get-richer collapse:
    /// overlap through a small set of globally hot chunks (like the
    /// paper's chunk 0 in Figure 6) stays bounded instead of growing
    /// with cluster size. The default.
    Average,
    /// Dot product normalized by the *geometric mean* of the member
    /// counts (`dot / √(n_a·n_b)`). A middle ground kept as an ablation;
    /// still lets hot-chunk overlap grow with cluster size (as `√n`).
    Sqrt,
}

/// Tuning knobs for the distribution algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Balance threshold as a fraction of the mean cluster size
    /// (the paper's experiments use 10%, i.e. `0.10`).
    pub balance_threshold: f64,
    /// Merge scoring (see [`Linkage`]).
    pub linkage: Linkage,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            balance_threshold: 0.10,
            linkage: Linkage::Average,
        }
    }
}

/// One in-progress cluster during Stage 1/Stage 2.
#[derive(Debug, Clone)]
struct Cluster {
    items: Vec<WorkItem>,
    /// Bitwise-sum tag `α` (per-chunk access counts).
    tag: CountVec,
    /// Total iterations `S(cα)`.
    size: u64,
}

impl Cluster {
    fn empty(r: usize) -> Self {
        Cluster {
            items: Vec::new(),
            tag: CountVec::new(r),
            size: 0,
        }
    }

    fn singleton(item: WorkItem, tag: &BitSet) -> Self {
        let mut c = Cluster::empty(tag.len());
        c.tag.add_bitset(tag);
        c.size = item.len() as u64;
        c.items.push(item);
        c
    }

    fn absorb(&mut self, other: Cluster) {
        self.tag.add(&other.tag);
        self.size += other.size;
        self.items.extend(other.items);
    }
}

/// Runs the full hierarchical distribution of Figure 5.
///
/// `chunks` are the iteration chunks of the (possibly multi-nest) input;
/// `tree` is the storage cache hierarchy; the result assigns every
/// iteration of every chunk to exactly one client.
pub fn distribute(
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    params: &ClusterParams,
) -> Distribution {
    distribute_profiled(chunks, tree, params, &mut Profile::disabled())
}

/// [`distribute_profiled`] on a worker pool: the pairwise similarity
/// build, the initial best-partner scans, and the per-subtree recursion
/// at each hierarchy level fan out onto `pool`.
///
/// The result — the distribution *and* every profile counter — is
/// byte-identical to the sequential kernel for any pool size: work is
/// split by item index, per-subtree profiles are absorbed in child
/// order, and the greedy merge loop itself (inherently sequential)
/// never moves off the calling thread. `Pool::sequential()` recovers
/// [`distribute_profiled`] exactly.
pub fn distribute_pooled(
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    params: &ClusterParams,
    pool: &Pool,
    prof: &mut Profile,
) -> Distribution {
    let mut per_client: Vec<Vec<WorkItem>> = vec![Vec::new(); tree.num_clients()];
    let all_items: Vec<WorkItem> = chunks
        .iter()
        .enumerate()
        .map(|(i, c)| WorkItem::whole(i, c.len()))
        .collect();
    distribute_at_node(
        chunks,
        tree,
        tree.root(),
        all_items,
        params,
        &mut per_client,
        pool,
        prof,
    );
    Distribution { per_client }
}

/// [`distribute`] with phase accounting: one span per hierarchy level
/// (`level:root` → `level:storage` → `level:io`), each carrying the
/// merge/split/balance-move counters for that level plus a
/// `similarity-graph` child span for the pairwise dot-product build.
/// Sibling subtrees at the same depth accumulate into one span, so the
/// profile mirrors the levels of Figure 5, not the tree fan-out. With a
/// disabled profile this is exactly [`distribute`].
pub fn distribute_profiled(
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    params: &ClusterParams,
    prof: &mut Profile,
) -> Distribution {
    distribute_pooled(chunks, tree, params, &Pool::sequential(), prof)
}

/// Span name for the clustering step performed *at* a node of `level`.
fn level_span_name(level: CacheLevel) -> &'static str {
    match level {
        CacheLevel::DummyRoot => "level:root",
        CacheLevel::Storage => "level:storage",
        CacheLevel::Io => "level:io",
        CacheLevel::Client => "level:client",
    }
}

/// Recursive descent: partition `items` among the children of `node`.
#[allow(clippy::too_many_arguments)]
fn distribute_at_node(
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    node: NodeId,
    items: Vec<WorkItem>,
    params: &ClusterParams,
    per_client: &mut [Vec<WorkItem>],
    pool: &Pool,
    prof: &mut Profile,
) {
    let tn = tree.node(node);
    if tn.level == CacheLevel::Client {
        per_client[tn.layer_index] = items;
        return;
    }
    // The span stays open across the recursion so each level nests under
    // its parent; `push` resumes the same-named span for sibling nodes.
    prof.push(level_span_name(tn.level));
    prof.count("items", items.len() as u64);
    let num_clusters = tn.children.len();
    let mut clusters = partition_into(chunks, items, num_clusters, params, pool, prof);
    // Hand clusters to children in a deterministic order: by the
    // earliest iteration chunk each cluster contains (this also matches
    // the per-client assignment of the paper's worked example,
    // Figure 17). Sibling caches are symmetric, so this is purely a
    // tie-breaking convention.
    clusters.sort_by_key(|c| {
        c.items
            .iter()
            .map(|i| (i.chunk, i.start))
            .min()
            .unwrap_or((usize::MAX, usize::MAX))
    });
    // On an asymmetric tree (a pruned degraded hierarchy), the children
    // lead unequal numbers of clients, so the per-child shares must be
    // proportional to subtree width, not equal.
    let weights: Vec<u64> = tn
        .children
        .iter()
        .map(|&ch| tree.clients_under(ch).len() as u64)
        .collect();
    if weights.windows(2).any(|w| w[0] != w[1]) {
        balance_to_weights(&mut clusters, chunks, params, &weights, prof);
    }
    let total_items: usize = clusters.iter().map(|c| c.items.len()).sum();
    if !pool.is_sequential() && tn.children.len() > 1 && total_items >= PAR_MIN_FANOUT_ITEMS {
        // Subtrees are independent: fan them out, each task recursing
        // into a fresh profile, then absorb the task profiles in child
        // order so spans and counters match the sequential recursion.
        let tasks: Vec<(Vec<WorkItem>, NodeId)> = clusters
            .into_iter()
            .zip(&tn.children)
            .map(|(c, &child)| (c.items, child))
            .collect();
        let num_clients = per_client.len();
        let prof_on = prof.is_enabled();
        let results = pool.map(&tasks, |_, (task_items, child)| {
            let mut local: Vec<Vec<WorkItem>> = vec![Vec::new(); num_clients];
            let mut sub_prof = if prof_on {
                Profile::enabled()
            } else {
                Profile::disabled()
            };
            distribute_at_node(
                chunks,
                tree,
                *child,
                task_items.clone(),
                params,
                &mut local,
                pool,
                &mut sub_prof,
            );
            (local, sub_prof)
        });
        for (local, sub_prof) in results {
            for (client, assigned) in local.into_iter().enumerate() {
                if !assigned.is_empty() {
                    per_client[client] = assigned;
                }
            }
            prof.absorb(&sub_prof);
        }
    } else {
        for (cluster, &child) in clusters.into_iter().zip(&tn.children) {
            distribute_at_node(
                chunks,
                tree,
                child,
                cluster.items,
                params,
                per_client,
                pool,
                prof,
            );
        }
    }
    prof.pop();
}

/// One level of Figure 5: Stage 1 clustering + Stage 2 load balancing.
/// Always returns exactly `num_clusters` clusters (some possibly empty
/// when there are fewer iterations than clusters).
fn partition_into(
    chunks: &[IterationChunk],
    items: Vec<WorkItem>,
    num_clusters: usize,
    params: &ClusterParams,
    pool: &Pool,
    prof: &mut Profile,
) -> Vec<Cluster> {
    let r = chunks.first().map_or(0, |c| c.tag.len());
    let mut clusters: Vec<Cluster> = items
        .into_iter()
        .filter(|i| !i.is_empty())
        .map(|i| Cluster::singleton(i, &chunks[i.chunk].tag))
        .collect();

    if clusters.len() > num_clusters {
        merge_stage(&mut clusters, num_clusters, params.linkage, pool, prof);
    }
    while clusters.len() < num_clusters {
        // "Select cαq such that S(cαq) is max; break it into two."
        let idx = clusters
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.size, std::cmp::Reverse(*i)))
            .map(|(i, _)| i);
        match idx {
            Some(i) if clusters[i].size > 1 => {
                let half = split_cluster(&mut clusters[i], chunks);
                clusters.push(half);
                prof.count("splits", 1);
            }
            _ => {
                // Nothing splittable left: pad with empty clusters.
                clusters.push(Cluster::empty(r));
            }
        }
    }

    balance_stage(&mut clusters, chunks, params, prof);
    clusters
}

/// Total order on candidate merge pairs: higher (possibly normalized)
/// dot first; ties → smaller combined iteration count (helps balance);
/// ties → lowest `(i, j)` indices. Scores are rationals compared by
/// exact u128 cross-multiplication.
#[derive(Clone, Copy, Debug)]
struct PairKey {
    num: u128,
    den: u128,
    combined: u64,
    i: usize,
    j: usize,
}

impl PairKey {
    fn better_than(&self, other: &PairKey) -> bool {
        match (self.num * other.den).cmp(&(other.num * self.den)) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.combined.cmp(&other.combined) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => (self.i, self.j) < (other.i, other.j),
            },
        }
    }
}

/// Stage 1: greedy agglomerative merging by maximal tag dot product.
///
/// Two incremental structures keep this fast:
/// * the pairwise dot-product matrix — merging `p` and `q` updates row
///   `p` additively (`dot(p∪q, x) = dot(p, x) + dot(q, x)`);
/// * a **best-partner cache** per cluster — only partners pointing at
///   the merged pair (or beaten by the new cluster) are recomputed, so
///   a merge costs `O(n)` plus the occasional rescan instead of the
///   naive `O(n²)` full pair search.
fn merge_stage(
    clusters: &mut Vec<Cluster>,
    target: usize,
    linkage: Linkage,
    pool: &Pool,
    prof: &mut Profile,
) {
    let n = clusters.len();
    let mut dots = vec![0u64; n * n];
    let par = !pool.is_sequential() && n >= PAR_MIN_SIM_CLUSTERS;
    prof.scope("similarity-graph", |prof| {
        let mut nonzero = 0u64;
        if par {
            // Row i of the strict upper triangle is a pure function of
            // the (immutable) cluster tags: build rows in parallel,
            // then mirror them into the symmetric matrix in order.
            let row_ids: Vec<usize> = (0..n).collect();
            let rows: Vec<(Vec<u64>, u64)> = pool.map(&row_ids, |_, &i| {
                let mut row = Vec::with_capacity(n - i - 1);
                let mut row_nonzero = 0u64;
                for j in (i + 1)..n {
                    let d = clusters[i].tag.dot(&clusters[j].tag);
                    row_nonzero += u64::from(d > 0);
                    row.push(d);
                }
                (row, row_nonzero)
            });
            for (i, (row, row_nonzero)) in rows.into_iter().enumerate() {
                for (off, d) in row.into_iter().enumerate() {
                    let j = i + 1 + off;
                    dots[i * n + j] = d;
                    dots[j * n + i] = d;
                }
                nonzero += row_nonzero;
            }
        } else {
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = clusters[i].tag.dot(&clusters[j].tag);
                    dots[i * n + j] = d;
                    dots[j * n + i] = d;
                    nonzero += u64::from(d > 0);
                }
            }
        }
        prof.count("pairs", (n * (n - 1) / 2) as u64);
        prof.count("nonzero", nonzero);
    });
    let mut members = vec![1u64; n]; // iteration chunks per cluster
    let mut alive: Vec<bool> = vec![true; n];
    let mut alive_count = n;

    let key = |dots: &[u64], members: &[u64], clusters: &[Cluster], a: usize, b: usize| {
        let (i, j) = (a.min(b), a.max(b));
        let d = dots[i * n + j];
        let (num, den) = match linkage {
            Linkage::Total => (d as u128, 1u128),
            Linkage::Average => (d as u128, (members[i] * members[j]) as u128),
            // d/√(mi·mj) compared by squaring both sides.
            Linkage::Sqrt => ((d as u128) * (d as u128), (members[i] * members[j]) as u128),
        };
        PairKey {
            num,
            den,
            combined: clusters[i].size + clusters[j].size,
            i,
            j,
        }
    };

    // best[i] = the partner j maximizing key(i, j) over alive j ≠ i
    // with a **nonzero** dot, cached together with its key. A cached
    // key only goes stale when one of its endpoints is merged — exactly
    // the cases the repair rules below rescan — so the argmax loop can
    // compare cached keys instead of recomputing them every round.
    // Zero-dot pairs are never cached: they can't beat any nonzero pair
    // under the key order, and once only zero pairs remain the loop
    // hands off to `zero_phase_merges` (the same tie-break order).
    let scan_best = |dots: &[u64],
                     members: &[u64],
                     clusters: &[Cluster],
                     alive: &[bool],
                     i: usize|
     -> Option<(usize, PairKey)> {
        let mut best: Option<(usize, PairKey)> = None;
        for (j, &alive_j) in alive.iter().enumerate() {
            if j == i || !alive_j {
                continue;
            }
            if dots[i.min(j) * n + i.max(j)] == 0 {
                continue;
            }
            let k = key(dots, members, clusters, i, j);
            match &best {
                Some((_, bk)) if !k.better_than(bk) => {}
                _ => best = Some((j, k)),
            }
        }
        best
    };

    // The initial scans are independent per cluster (everything is
    // still alive); `scan_best` itself is deterministic, so parallel
    // and sequential builds of the cache are identical.
    let mut best: Vec<Option<(usize, PairKey)>> = if par {
        let ids: Vec<usize> = (0..n).collect();
        pool.map(&ids, |_, &i| {
            scan_best(&dots, &members, clusters, &alive, i)
        })
    } else {
        (0..n)
            .map(|i| scan_best(&dots, &members, clusters, &alive, i))
            .collect()
    };

    while alive_count > target {
        // Global argmax over the per-cluster best partners (keys come
        // from the cache, kept fresh by the repair rules below).
        let mut top: Option<PairKey> = None;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            if let Some((_, k)) = &best[i] {
                match &top {
                    Some(tk) if !k.better_than(tk) => {}
                    _ => top = Some(*k),
                }
            }
        }
        let Some(top) = top else {
            // Every remaining alive pair has a zero dot product (the
            // cache only holds nonzero-similarity partners), so the
            // greedy order reduces to the size/index tie-break.
            zero_phase_merges(
                clusters,
                &mut members,
                &mut alive,
                &mut alive_count,
                target,
                prof,
            );
            break;
        };

        // Once the best remaining dot product is zero, every remaining
        // pair is zero (dots only ever sum), so the greedy order reduces
        // to the tie-break: repeatedly merge the two smallest clusters
        // (lowest indices on ties). Finish in O(n log n) instead of
        // paying cache-repair rescans for meaningless merges.
        if top.num == 0 {
            zero_phase_merges(
                clusters,
                &mut members,
                &mut alive,
                &mut alive_count,
                target,
                prof,
            );
            break;
        }
        let (p, q) = (top.i, top.j);
        prof.count("merges", 1);
        prof.count("merge_dot_sum", dots[p * n + q]);

        // Merge q into p.
        let q_cluster = std::mem::replace(&mut clusters[q], Cluster::empty(0));
        clusters[p].absorb(q_cluster);
        members[p] += members[q];
        alive[q] = false;
        best[q] = None;
        alive_count -= 1;
        // dot(p', x) = dot(p, x) + dot(q, x); the diagonal is unused.
        for x in 0..n {
            if x != p && x != q {
                let d = dots[p * n + x] + dots[q * n + x];
                dots[p * n + x] = d;
                dots[x * n + p] = d;
            }
        }
        if alive_count <= target {
            break;
        }

        // Repair the best-partner cache: p changed, q died.
        best[p] = scan_best(&dots, &members, clusters, &alive, p);
        for i in 0..n {
            if !alive[i] || i == p {
                continue;
            }
            match best[i] {
                Some((b, _)) if b == p || b == q => {
                    // The cached partner changed or died: full rescan.
                    best[i] = scan_best(&dots, &members, clusters, &alive, i);
                }
                // Only pair (i, p) changed; adopt it if it now wins. A
                // zero dot can never beat the cached (nonzero) key.
                Some((_, cur)) if dots[i.min(p) * n + i.max(p)] > 0 => {
                    let with_p = key(&dots, &members, clusters, i, p);
                    if with_p.better_than(&cur) {
                        best[i] = Some((p, with_p));
                    }
                }
                Some(_) => {}
                // An all-zero row stays all-zero: dot(p∪q, i) is the sum
                // of two entries that were both zero, so nothing to do.
                None => {}
            }
        }
    }

    let mut out: Vec<Cluster> = Vec::with_capacity(target);
    for (i, keep) in alive.iter().enumerate() {
        if *keep {
            out.push(std::mem::replace(&mut clusters[i], Cluster::empty(0)));
        }
    }
    *clusters = out;
}

/// Merges clusters down to `target` when no remaining pair shares any
/// data: pure tie-break order — smallest combined size first, lowest
/// indices on ties (matching [`PairKey`]'s order for zero scores).
fn zero_phase_merges(
    clusters: &mut [Cluster],
    members: &mut [u64],
    alive: &mut [bool],
    alive_count: &mut usize,
    target: usize,
    prof: &mut Profile,
) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = alive
        .iter()
        .enumerate()
        .filter(|(_, a)| **a)
        .map(|(i, _)| Reverse((clusters[i].size, i)))
        .collect();
    while *alive_count > target {
        // Invariant: alive_count > target ≥ 1 keeps at least two alive
        // clusters in the heap (plus stale entries); exhaustion can only
        // mean the invariant broke, so stop merging rather than panic.
        let Some(Reverse((sp, p))) = heap.pop() else {
            debug_assert!(false, "heap exhausted while above target");
            break;
        };
        // Skip stale heap entries.
        if !alive[p] || clusters[p].size != sp {
            continue;
        }
        let mut second = None;
        while let Some(Reverse((s, i))) = heap.pop() {
            if alive[i] && clusters[i].size == s {
                second = Some(i);
                break;
            }
        }
        let Some(q) = second else {
            debug_assert!(false, "at least two clusters remain");
            break;
        };
        // Merge the higher index into the lower, as PairKey's (i, j)
        // tie-break does.
        let (lo, hi) = (p.min(q), p.max(q));
        let hi_cluster = std::mem::replace(&mut clusters[hi], Cluster::empty(0));
        clusters[lo].absorb(hi_cluster);
        members[lo] += members[hi];
        alive[hi] = false;
        *alive_count -= 1;
        prof.count("zero_merges", 1);
        heap.push(Reverse((clusters[lo].size, lo)));
    }
}

/// Splits roughly half of a cluster's iterations into a new cluster,
/// splitting an individual iteration chunk at the boundary if needed.
fn split_cluster(cluster: &mut Cluster, chunks: &[IterationChunk]) -> Cluster {
    let r = cluster.tag.len();
    let want = cluster.size / 2;
    let mut moved = Cluster::empty(r);
    while moved.size < want {
        let need = want - moved.size;
        // Invariant: moved.size < want ≤ cluster.size implies the donor
        // still holds items; an empty pop means the size bookkeeping
        // broke, so return the partial split instead of panicking.
        let Some(item) = cluster.items.pop() else {
            debug_assert!(false, "non-empty cluster while splitting");
            break;
        };
        let ilen = item.len() as u64;
        let tag = &chunks[item.chunk].tag;
        if ilen <= need {
            cluster.tag.sub_bitset(tag);
            cluster.size -= ilen;
            moved.tag.add_bitset(tag);
            moved.size += ilen;
            moved.items.push(item);
        } else {
            // Split the item: keep the front in `cluster`, move the tail.
            let cut = item.end - need as usize;
            let keep = WorkItem {
                chunk: item.chunk,
                start: item.start,
                end: cut,
            };
            let tail = WorkItem {
                chunk: item.chunk,
                start: cut,
                end: item.end,
            };
            cluster.items.push(keep);
            cluster.size -= need;
            moved.tag.add_bitset(tag);
            moved.size += need;
            moved.items.push(tail);
            break;
        }
    }
    moved
}

/// Stage 2: greedy load balancing within `BThres`.
fn balance_stage(
    clusters: &mut [Cluster],
    chunks: &[IterationChunk],
    params: &ClusterParams,
    prof: &mut Profile,
) {
    let n = clusters.len();
    if n < 2 {
        return;
    }
    let total: u64 = clusters.iter().map(|c| c.size).sum();
    let avg = total as f64 / n as f64;
    let bthres = params.balance_threshold.max(0.0) * avg;
    let ulim = avg + bthres;
    let llim = (avg - bthres).max(0.0);

    // Bounded greedy loop; each pass must make progress or we stop.
    let max_rounds = 4 * n * chunks.len().max(1);
    for _ in 0..max_rounds {
        let donor = match clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.size as f64 > ulim)
            .max_by_key(|(i, c)| (c.size, std::cmp::Reverse(*i)))
        {
            Some((i, _)) => i,
            None => break,
        };
        // The paper selects a recipient below LLim; when every sibling
        // sits just above LLim (one big donor, the rest marginally fine)
        // that rule starves, so fall back to the smallest cluster that
        // still has headroom below ULim — same greedy intent, guaranteed
        // progress.
        let recipient = match clusters
            .iter()
            .enumerate()
            .filter(|&(i, c)| i != donor && (c.size as f64) < ulim)
            .min_by_key(|(i, c)| (c.size, *i))
        {
            Some((i, _)) => i,
            None => break,
        };

        // Whole-item eviction: donor stays ≥ LLim, recipient stays ≤ ULim,
        // maximize Λa • α_recipient.
        let donor_size = clusters[donor].size;
        let recipient_size = clusters[recipient].size;
        let max_evict = (donor_size as f64 - llim).floor().max(0.0) as u64;
        let max_accept = (ulim - recipient_size as f64).floor().max(0.0) as u64;
        let allowed = max_evict.min(max_accept);

        let mut best: Option<(usize, u64)> = None; // (item index, dot)
        for (ii, item) in clusters[donor].items.iter().enumerate() {
            let ilen = item.len() as u64;
            if ilen == 0 || ilen > allowed {
                continue;
            }
            let d = clusters[recipient].tag.dot_bitset(&chunks[item.chunk].tag);
            match best {
                Some((_, bd)) if d <= bd => {}
                _ => best = Some((ii, d)),
            }
        }

        if let Some((ii, _)) = best {
            let item = clusters[donor].items.remove(ii);
            let tag = &chunks[item.chunk].tag;
            clusters[donor].tag.sub_bitset(tag);
            clusters[donor].size -= item.len() as u64;
            clusters[recipient].tag.add_bitset(tag);
            clusters[recipient].size += item.len() as u64;
            clusters[recipient].items.push(item);
            prof.count("balance_moves", 1);
            continue;
        }

        // No whole chunk fits: split one "according to the balance
        // threshold requirements" and evict the part.
        if allowed == 0 {
            break;
        }
        // Evict the part from the item with the best dot to the recipient.
        let (ii, _) = match clusters[donor]
            .items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.len() as u64 > allowed)
            .map(|(ii, it)| {
                (
                    ii,
                    clusters[recipient].tag.dot_bitset(&chunks[it.chunk].tag),
                )
            })
            .max_by_key(|&(ii, d)| (d, std::cmp::Reverse(ii)))
        {
            Some(x) => x,
            None => break,
        };
        let item = clusters[donor].items[ii];
        let cut = item.end - allowed as usize;
        clusters[donor].items[ii] = WorkItem {
            chunk: item.chunk,
            start: item.start,
            end: cut,
        };
        clusters[donor].size -= allowed;
        let tail = WorkItem {
            chunk: item.chunk,
            start: cut,
            end: item.end,
        };
        let tag = &chunks[item.chunk].tag;
        clusters[recipient].tag.add_bitset(tag);
        clusters[recipient].size += allowed;
        clusters[recipient].items.push(tail);
        prof.count("balance_split_moves", 1);
    }
}

/// Weighted variant of [`balance_stage`] for asymmetric (pruned) trees:
/// cluster `i`'s target load is `total · weights[i] / Σweights`, and the
/// `BThres` band is taken around each target. Clusters stay aligned with
/// their position (the caller pairs position `i` with child `i`), so only
/// sizes move, not assignments.
fn balance_to_weights(
    clusters: &mut [Cluster],
    chunks: &[IterationChunk],
    params: &ClusterParams,
    weights: &[u64],
    prof: &mut Profile,
) {
    let n = clusters.len();
    debug_assert_eq!(n, weights.len(), "one weight per cluster");
    let total_weight: u64 = weights.iter().sum();
    if n < 2 || total_weight == 0 {
        return;
    }
    let total: u64 = clusters.iter().map(|c| c.size).sum();
    let bthres = params.balance_threshold.max(0.0);
    let target = |i: usize| total as f64 * weights[i] as f64 / total_weight as f64;
    let ulim = |i: usize| target(i) * (1.0 + bthres);
    let llim = |i: usize| (target(i) * (1.0 - bthres)).max(0.0);

    let max_rounds = 4 * n * chunks.len().max(1);
    for _ in 0..max_rounds {
        // Donor: largest absolute excess over its upper band edge.
        let donor = match (0..n)
            .filter(|&i| clusters[i].size as f64 > ulim(i))
            .max_by(|&a, &b| {
                let ea = clusters[a].size as f64 - ulim(a);
                let eb = clusters[b].size as f64 - ulim(b);
                ea.total_cmp(&eb).then(b.cmp(&a)) // ties → lowest index
            }) {
            Some(i) => i,
            None => break,
        };
        // Recipient: largest headroom below its upper band edge.
        let recipient = match (0..n)
            .filter(|&i| i != donor && (clusters[i].size as f64) < ulim(i))
            .max_by(|&a, &b| {
                let ha = ulim(a) - clusters[a].size as f64;
                let hb = ulim(b) - clusters[b].size as f64;
                ha.total_cmp(&hb).then(b.cmp(&a))
            }) {
            Some(i) => i,
            None => break,
        };

        let donor_size = clusters[donor].size;
        let recipient_size = clusters[recipient].size;
        let max_evict = (donor_size as f64 - llim(donor)).floor().max(0.0) as u64;
        let max_accept = (ulim(recipient) - recipient_size as f64).floor().max(0.0) as u64;
        let allowed = max_evict.min(max_accept);
        if allowed == 0 {
            break;
        }

        // Prefer moving a whole item with the best affinity to the
        // recipient; otherwise split the best-affinity oversized item.
        let mut best: Option<(usize, u64)> = None;
        for (ii, item) in clusters[donor].items.iter().enumerate() {
            let ilen = item.len() as u64;
            if ilen == 0 || ilen > allowed {
                continue;
            }
            let d = clusters[recipient].tag.dot_bitset(&chunks[item.chunk].tag);
            match best {
                Some((_, bd)) if d <= bd => {}
                _ => best = Some((ii, d)),
            }
        }
        if let Some((ii, _)) = best {
            let item = clusters[donor].items.remove(ii);
            let tag = &chunks[item.chunk].tag;
            clusters[donor].tag.sub_bitset(tag);
            clusters[donor].size -= item.len() as u64;
            clusters[recipient].tag.add_bitset(tag);
            clusters[recipient].size += item.len() as u64;
            clusters[recipient].items.push(item);
            prof.count("weighted_moves", 1);
            continue;
        }
        let (ii, _) = match clusters[donor]
            .items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.len() as u64 > allowed)
            .map(|(ii, it)| {
                (
                    ii,
                    clusters[recipient].tag.dot_bitset(&chunks[it.chunk].tag),
                )
            })
            .max_by_key(|&(ii, d)| (d, std::cmp::Reverse(ii)))
        {
            Some(x) => x,
            None => break,
        };
        let item = clusters[donor].items[ii];
        let cut = item.end - allowed as usize;
        clusters[donor].items[ii] = WorkItem {
            chunk: item.chunk,
            start: item.start,
            end: cut,
        };
        clusters[donor].size -= allowed;
        let tail = WorkItem {
            chunk: item.chunk,
            start: cut,
            end: item.end,
        };
        let tag = &chunks[item.chunk].tag;
        clusters[recipient].tag.add_bitset(tag);
        clusters[recipient].size += allowed;
        clusters[recipient].items.push(tail);
        prof.count("weighted_moves", 1);
    }
}

/// Why a failure-aware remap could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemapError {
    /// Pruning the hierarchy tree failed (bad client index, or no
    /// survivors to remap onto).
    Prune(cachemap_storage::topology::PruneError),
    /// The distribution was built for a different client count than the
    /// tree has.
    ClientCountMismatch {
        /// Clients in the distribution.
        distribution_clients: usize,
        /// Clients in the tree.
        tree_clients: usize,
    },
    /// A work item references a chunk index outside the chunk list.
    ChunkIndexOutOfRange {
        /// The offending chunk index.
        chunk: usize,
        /// Length of the chunk list.
        num_chunks: usize,
    },
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::Prune(e) => write!(f, "{e}"),
            RemapError::ClientCountMismatch {
                distribution_clients,
                tree_clients,
            } => write!(
                f,
                "distribution has {distribution_clients} clients, tree has {tree_clients}"
            ),
            RemapError::ChunkIndexOutOfRange { chunk, num_chunks } => {
                write!(f, "work item references chunk {chunk} of {num_chunks}")
            }
        }
    }
}

impl std::error::Error for RemapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RemapError::Prune(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cachemap_storage::topology::PruneError> for RemapError {
    fn from(e: cachemap_storage::topology::PruneError) -> Self {
        RemapError::Prune(e)
    }
}

/// Failure-aware remapping: redistributes the whole iteration load over
/// the survivors by re-running the hierarchical clustering of Figure 5
/// against the *pruned* tree.
///
/// Re-clustering everything (rather than just the failed clients' items)
/// keeps the `BThres` load balance *global*: each survivor ends near
/// `total / survivors` iterations, and the affinity structure is rebuilt
/// for the degraded hierarchy, so orphan work lands with the clients
/// that already share its data. The translated result uses the original
/// client numbering; failed clients end with empty item lists.
///
/// # Errors
/// See [`RemapError`].
pub fn remap_failed(
    dist: &Distribution,
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    failed: &[usize],
    params: &ClusterParams,
) -> Result<Distribution, RemapError> {
    remap_failed_profiled(dist, chunks, tree, failed, params, &mut Profile::disabled())
}

/// [`remap_failed`] with phase accounting for the re-clustering pass
/// over the pruned tree (see [`distribute_profiled`]).
pub fn remap_failed_profiled(
    dist: &Distribution,
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    failed: &[usize],
    params: &ClusterParams,
    prof: &mut Profile,
) -> Result<Distribution, RemapError> {
    remap_failed_pooled(
        dist,
        chunks,
        tree,
        failed,
        params,
        &Pool::sequential(),
        prof,
    )
}

/// [`remap_failed_profiled`] on a worker pool: the re-clustering pass
/// over the pruned tree runs through [`distribute_pooled`], with the
/// same byte-identity guarantee for any pool size.
#[allow(clippy::too_many_arguments)]
pub fn remap_failed_pooled(
    dist: &Distribution,
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    failed: &[usize],
    params: &ClusterParams,
    pool: &Pool,
    prof: &mut Profile,
) -> Result<Distribution, RemapError> {
    if dist.per_client.len() != tree.num_clients() {
        return Err(RemapError::ClientCountMismatch {
            distribution_clients: dist.per_client.len(),
            tree_clients: tree.num_clients(),
        });
    }
    for items in &dist.per_client {
        for item in items {
            if item.chunk >= chunks.len() {
                return Err(RemapError::ChunkIndexOutOfRange {
                    chunk: item.chunk,
                    num_chunks: chunks.len(),
                });
            }
        }
    }
    if failed.is_empty() {
        return Ok(dist.clone());
    }
    let (pruned, survivor_map) = tree.prune_clients(failed)?;

    let sub_dist = distribute_pooled(chunks, &pruned, params, pool, prof);
    let mut out = Distribution {
        per_client: vec![Vec::new(); dist.per_client.len()],
    };
    for (new_client, items) in sub_dist.per_client.iter().enumerate() {
        out.per_client[survivor_map[new_client]] = items.clone();
    }
    Ok(out)
}

/// Incremental failure-aware remapping for the online supervisor's live
/// remap: in contrast to [`remap_failed`], the survivors **keep their
/// own remaining items untouched** (preserving the cache affinity they
/// have already built up mid-run) and only the failed clients' remaining
/// items are reassigned. Instead of re-running the full Figure 5
/// clustering, each survivor's **tag aggregate** — the [`CountVec`] sum
/// over its remaining items, exactly the cluster tag Stage 1 maintained —
/// is reused: every orphan item goes to the survivor with the highest
/// tag dot-product whose post-assignment load stays within the `BThres`
/// cap (`mean · (1 + balance_threshold)` over the survivors), ties
/// broken by lower load, then lower client index. When no survivor fits
/// under the cap the affinity winner takes the item anyway, so the remap
/// always terminates with every orphan placed.
///
/// `remaining` holds each client's **not-yet-executed** items in the
/// original client numbering; the result uses the same numbering, with
/// failed clients left empty.
///
/// # Errors
/// See [`RemapError`]; an empty `failed` returns `remaining` unchanged.
pub fn remap_incremental(
    remaining: &Distribution,
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    failed: &[usize],
    params: &ClusterParams,
) -> Result<Distribution, RemapError> {
    if remaining.per_client.len() != tree.num_clients() {
        return Err(RemapError::ClientCountMismatch {
            distribution_clients: remaining.per_client.len(),
            tree_clients: tree.num_clients(),
        });
    }
    for items in &remaining.per_client {
        for item in items {
            if item.chunk >= chunks.len() {
                return Err(RemapError::ChunkIndexOutOfRange {
                    chunk: item.chunk,
                    num_chunks: chunks.len(),
                });
            }
        }
    }
    if failed.is_empty() {
        return Ok(remaining.clone());
    }
    // Reuse the prune validation (bad indices, no survivors) without
    // keeping the pruned tree — the incremental path never re-clusters.
    let _ = tree.prune_clients(failed)?;

    let n = remaining.per_client.len();
    let mut is_failed = vec![false; n];
    for &c in failed {
        is_failed[c] = true;
    }
    let r = chunks.first().map_or(0, |c| c.tag.len());

    let mut out = Distribution {
        per_client: vec![Vec::new(); n],
    };
    let mut tags: Vec<CountVec> = (0..n).map(|_| CountVec::new(r)).collect();
    let mut load = vec![0u64; n];
    let mut orphans: Vec<WorkItem> = Vec::new();
    for (c, items) in remaining.per_client.iter().enumerate() {
        if is_failed[c] {
            orphans.extend(items.iter().copied());
        } else {
            for it in items {
                tags[c].add_bitset(&chunks[it.chunk].tag);
                load[c] += it.len() as u64;
            }
            out.per_client[c] = items.clone();
        }
    }
    if orphans.is_empty() {
        return Ok(out);
    }
    // Deterministic placement order independent of which client held an
    // orphan: earliest iterations first.
    orphans.sort_by_key(|it| (it.chunk, it.start));

    let survivors: Vec<usize> = (0..n).filter(|&c| !is_failed[c]).collect();
    let total: u64 =
        load.iter().sum::<u64>() + orphans.iter().map(|it| it.len() as u64).sum::<u64>();
    let mean = total as f64 / survivors.len() as f64;
    let cap = (mean * (1.0 + params.balance_threshold)).ceil() as u64;

    for it in orphans {
        let tag = &chunks[it.chunk].tag;
        let mut best = survivors[0];
        let mut best_key = (false, 0u64, u64::MAX);
        for &s in &survivors {
            let under_cap = load[s] + it.len() as u64 <= cap;
            let affinity = tags[s].dot_bitset(tag);
            // Prefer fitting under the cap, then affinity, then the
            // lighter client; the ascending scan settles index ties low.
            let key = (under_cap, affinity, u64::MAX - load[s]);
            if key > best_key {
                best_key = key;
                best = s;
            }
        }
        load[best] += it.len() as u64;
        tags[best].add_bitset(tag);
        out.per_client[best].push(it);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::tag_nest;
    use cachemap_storage::PlatformConfig;
    use cachemap_util::FxHashSet;

    /// Figure 6 program on the Figure 7 hierarchy (4 clients, 2 I/O
    /// nodes, 1 storage node).
    fn figure_example() -> (Vec<IterationChunk>, HierarchyTree) {
        let (program, data) = crate::tags::tests::figure6_program(4);
        let tagged = tag_nest(&program, 0, &data);
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
        (tagged.chunks, tree)
    }

    fn client_chunk_sets(dist: &Distribution) -> Vec<FxHashSet<usize>> {
        dist.per_client
            .iter()
            .map(|items| items.iter().map(|i| i.chunk).collect())
            .collect()
    }

    #[test]
    fn figure9_17_clustering_reproduced() {
        // Expected final clusters (Figure 9/17): {γ2,γ4}, {γ6,γ8},
        // {γ1,γ3}, {γ5,γ7} — chunk indices {1,3},{5,7},{0,2},{4,6}.
        let (chunks, tree) = figure_example();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        let sets = client_chunk_sets(&dist);
        let expected: Vec<FxHashSet<usize>> = [vec![0, 2], vec![4, 6], vec![1, 3], vec![5, 7]]
            .into_iter()
            .map(|v| v.into_iter().collect())
            .collect();
        // Client↔cluster pairing is symmetric; compare as a set of sets.
        for want in &expected {
            assert!(
                sets.contains(want),
                "expected cluster {want:?} not found in {sets:?}"
            );
        }
        // Odd/even families must not mix across I/O nodes: clients 0,1
        // (I/O node 0) together hold one full family.
        let io0: FxHashSet<usize> = sets[0].union(&sets[1]).copied().collect();
        assert!(
            io0 == [0, 2, 4, 6].into_iter().collect::<FxHashSet<_>>()
                || io0 == [1, 3, 5, 7].into_iter().collect::<FxHashSet<_>>(),
            "I/O node 0 must hold a whole tag family, got {io0:?}"
        );
    }

    #[test]
    fn distribution_is_a_partition() {
        let (chunks, tree) = figure_example();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        let total: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        assert_eq!(dist.total_iterations(), total);
        // Every (chunk, iteration index) appears exactly once.
        let mut seen = FxHashSet::default();
        for items in &dist.per_client {
            for it in items {
                for k in it.start..it.end {
                    assert!(seen.insert((it.chunk, k)), "duplicate iteration");
                }
            }
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn balanced_within_threshold_on_example() {
        let (chunks, tree) = figure_example();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        // The example is perfectly balanceable: 8 iterations per client.
        assert_eq!(dist.iterations_per_client(), vec![8, 8, 8, 8]);
        assert!(dist.imbalance() < 1e-9);
    }

    #[test]
    fn skewed_chunk_sizes_get_balanced_by_splitting() {
        // One huge chunk and three tiny ones: splitting must kick in.
        let mk = |tag: &str, n: usize| IterationChunk {
            nest: 0,
            tag: cachemap_util::BitSet::from_tag_str(tag),
            points: (0..n).map(|i| vec![i as i64]).collect(),
        };
        let chunks = vec![mk("1000", 97), mk("0100", 1), mk("0010", 1), mk("0001", 1)];
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        assert_eq!(dist.total_iterations(), 100);
        // 100 iterations over 4 clients, 10% threshold → all within
        // [22.5, 27.5] definitely better than the unbalanced 97/1/1/1.
        let per = dist.iterations_per_client();
        assert!(
            per.iter().all(|&x| (20..=30).contains(&x)),
            "balancing failed: {per:?}"
        );
    }

    #[test]
    fn more_clusters_than_chunks_yields_empty_clients() {
        let chunks = vec![IterationChunk {
            nest: 0,
            tag: cachemap_util::BitSet::from_tag_str("1"),
            points: vec![vec![0]],
        }];
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        assert_eq!(dist.total_iterations(), 1);
        let nonempty = dist.per_client.iter().filter(|v| !v.is_empty()).count();
        assert_eq!(nonempty, 1);
    }

    #[test]
    fn empty_input_distributes_nothing() {
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
        let dist = distribute(&[], &tree, &ClusterParams::default());
        assert_eq!(dist.total_iterations(), 0);
        assert_eq!(dist.per_client.len(), 4);
    }

    #[test]
    fn zero_threshold_still_terminates() {
        let (chunks, tree) = figure_example();
        let params = ClusterParams {
            balance_threshold: 0.0,
            linkage: Linkage::Average,
        };
        let dist = distribute(&chunks, &tree, &params);
        assert_eq!(dist.total_iterations(), 32);
        assert_eq!(dist.iterations_per_client(), vec![8, 8, 8, 8]);
    }

    #[test]
    fn disjoint_families_never_share_a_cache_when_avoidable() {
        // Two disjoint tag families of equal weight; rule 1 of Section 3
        // says they should end up under different caches.
        let mk = |tag: &str, n: usize| IterationChunk {
            nest: 0,
            tag: cachemap_util::BitSet::from_tag_str(tag),
            points: (0..n).map(|i| vec![i as i64]).collect(),
        };
        let chunks = vec![
            mk("11000000", 10),
            mk("01100000", 10),
            mk("00001100", 10),
            mk("00000110", 10),
        ];
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        let sets = client_chunk_sets(&dist);
        // Clients 0,1 share L2; the pair {0,1} and the pair {2,3} of
        // chunks must not straddle the two I/O nodes.
        let io0: FxHashSet<usize> = sets[0].union(&sets[1]).copied().collect();
        assert!(
            io0 == [0, 1].into_iter().collect::<FxHashSet<_>>()
                || io0 == [2, 3].into_iter().collect::<FxHashSet<_>>(),
            "disjoint families must separate: {io0:?}"
        );
    }

    #[test]
    fn deep_hierarchy_paper_default() {
        // 64 clients / 32 I/O / 16 storage with 128 synthetic chunks.
        let mut chunks = Vec::new();
        for f in 0..12 {
            for k in 0..6 {
                let mut tag = cachemap_util::BitSet::new(64);
                tag.set(f * 4);
                tag.set(f * 4 + (k % 4));
                chunks.push(IterationChunk {
                    nest: 0,
                    tag,
                    points: (0..8)
                        .map(|i| vec![(f * 128 + k * 16 + i) as i64])
                        .collect(),
                });
            }
        }
        let cfg = PlatformConfig::paper_default();
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        assert_eq!(dist.total_iterations(), 12 * 6 * 8);
        assert_eq!(dist.per_client.len(), 64);
        // Mean load 9; threshold keeps clients within a sane band.
        let per = dist.iterations_per_client();
        let mean = dist.total_iterations() as f64 / 64.0;
        assert!(
            per.iter().all(|&x| (x as f64) <= mean * 2.0 + 8.0),
            "{per:?}"
        );
    }

    /// All `(chunk, iteration)` pairs a distribution covers.
    fn covered(dist: &Distribution) -> FxHashSet<(usize, usize)> {
        let mut seen = FxHashSet::default();
        for items in &dist.per_client {
            for it in items {
                for k in it.start..it.end {
                    assert!(seen.insert((it.chunk, k)), "duplicate iteration");
                }
            }
        }
        seen
    }

    #[test]
    fn remap_moves_all_failed_work_to_survivors() {
        let (chunks, tree) = figure_example();
        let params = ClusterParams::default();
        let dist = distribute(&chunks, &tree, &params);
        let before = covered(&dist);

        let failed = vec![0, 1]; // whole I/O-node-0 subtree fails
        let remapped = remap_failed(&dist, &chunks, &tree, &failed, &params).unwrap();
        assert!(remapped.per_client[0].is_empty());
        assert!(remapped.per_client[1].is_empty());
        // Exact-partition: the same iterations, each exactly once.
        assert_eq!(covered(&remapped), before);
        // Every surviving client carries some of the rebalanced load.
        assert!(!remapped.per_client[2].is_empty());
        assert!(!remapped.per_client[3].is_empty());
    }

    #[test]
    fn remap_balances_over_survivors() {
        let (chunks, tree) = figure_example();
        let params = ClusterParams::default();
        let dist = distribute(&chunks, &tree, &params);
        let remapped = remap_failed(&dist, &chunks, &tree, &[2], &params).unwrap();
        let per = remapped.iterations_per_client();
        assert_eq!(per[2], 0);
        // 32 iterations over 3 survivors: each within BThres of the
        // 10.67 mean after splitting (11 ± 1).
        let survivors: Vec<u64> = [0, 1, 3].iter().map(|&c| per[c]).collect();
        assert_eq!(survivors.iter().sum::<u64>(), 32);
        assert!(
            survivors.iter().all(|&x| (10..=12).contains(&x)),
            "survivor loads {survivors:?} must stay near the mean"
        );
    }

    #[test]
    fn remap_with_no_failures_is_identity() {
        let (chunks, tree) = figure_example();
        let params = ClusterParams::default();
        let dist = distribute(&chunks, &tree, &params);
        let same = remap_failed(&dist, &chunks, &tree, &[], &params).unwrap();
        assert_eq!(same, dist);
    }

    #[test]
    fn remap_rejects_bad_inputs() {
        let (chunks, tree) = figure_example();
        let params = ClusterParams::default();
        let dist = distribute(&chunks, &tree, &params);
        assert!(matches!(
            remap_failed(&dist, &chunks, &tree, &[9], &params),
            Err(RemapError::Prune(_))
        ));
        assert!(matches!(
            remap_failed(&dist, &chunks, &tree, &[0, 1, 2, 3], &params),
            Err(RemapError::Prune(_))
        ));
        let short = Distribution {
            per_client: vec![Vec::new(); 2],
        };
        assert!(matches!(
            remap_failed(&short, &chunks, &tree, &[0], &params),
            Err(RemapError::ClientCountMismatch { .. })
        ));
        let bogus = Distribution {
            per_client: {
                let mut v = vec![Vec::new(); 4];
                v[0].push(WorkItem::whole(99, 4));
                v
            },
        };
        assert!(matches!(
            remap_failed(&bogus, &chunks, &tree, &[0], &params),
            Err(RemapError::ChunkIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn incremental_remap_preserves_survivor_items_and_covers_orphans() {
        let (chunks, tree) = figure_example();
        let params = ClusterParams::default();
        let dist = distribute(&chunks, &tree, &params);
        let before = covered(&dist);

        let remapped = remap_incremental(&dist, &chunks, &tree, &[0], &params).unwrap();
        assert!(remapped.per_client[0].is_empty());
        // Exact partition is preserved.
        assert_eq!(covered(&remapped), before);
        // Unlike the full re-cluster, every survivor keeps its original
        // items as a prefix — mid-run state stays valid.
        for c in [1, 2, 3] {
            assert!(
                remapped.per_client[c].starts_with(&dist.per_client[c]),
                "client {c} must keep its own remaining items in place"
            );
        }
    }

    #[test]
    fn incremental_remap_follows_tag_affinity() {
        // Figure 9/17 clustering puts one tag family per I/O-node pair.
        // When one member of a pair fails, its items share chunks with
        // its partner's — the aggregate-tag greedy must send every
        // orphan iteration to a client of the same family when the cap
        // allows, never to the unrelated family.
        let (chunks, tree) = figure_example();
        let params = ClusterParams {
            // Loose cap: affinity alone decides.
            balance_threshold: 1.0,
            ..ClusterParams::default()
        };
        let dist = distribute(&chunks, &tree, &params);
        // Find the partner of client 0: the other client whose chunks
        // overlap the same family (clients 0,1 share I/O node 0 and the
        // clustering keeps a family within the pair).
        let fam0: Vec<usize> = dist.per_client[0].iter().map(|it| it.chunk).collect();
        let remapped = remap_incremental(&dist, &chunks, &tree, &[0], &params).unwrap();
        // All of client 0's items must land on client 1 (same family,
        // highest dot product), not on the other I/O node's family.
        let added_to_1 = remapped.per_client[1].len() - dist.per_client[1].len();
        assert_eq!(
            added_to_1,
            dist.per_client[0].len(),
            "family partner must absorb the orphans (orphan chunks {fam0:?})"
        );
    }

    #[test]
    fn incremental_remap_respects_balance_cap_when_spreading() {
        let (chunks, tree) = figure_example();
        let params = ClusterParams::default(); // 10% threshold
        let dist = distribute(&chunks, &tree, &params);
        let remapped = remap_incremental(&dist, &chunks, &tree, &[2], &params).unwrap();
        let per = remapped.iterations_per_client();
        assert_eq!(per[2], 0);
        assert_eq!(per.iter().sum::<u64>(), 32);
        // 32 iterations over 3 survivors, mean 10.67, cap = ceil(11.7) =
        // 12: whole 4-iteration chunks can honor it (8+4 = 12).
        let survivors: Vec<u64> = [0, 1, 3].iter().map(|&c| per[c]).collect();
        assert!(
            survivors.iter().all(|&x| x <= 12),
            "loads {survivors:?} must stay under the BThres cap"
        );
    }

    #[test]
    fn incremental_remap_identity_and_errors_match_full_remap() {
        let (chunks, tree) = figure_example();
        let params = ClusterParams::default();
        let dist = distribute(&chunks, &tree, &params);
        assert_eq!(
            remap_incremental(&dist, &chunks, &tree, &[], &params).unwrap(),
            dist
        );
        assert!(matches!(
            remap_incremental(&dist, &chunks, &tree, &[9], &params),
            Err(RemapError::Prune(_))
        ));
        assert!(matches!(
            remap_incremental(&dist, &chunks, &tree, &[0, 1, 2, 3], &params),
            Err(RemapError::Prune(_))
        ));
        let short = Distribution {
            per_client: vec![Vec::new(); 2],
        };
        assert!(matches!(
            remap_incremental(&short, &chunks, &tree, &[0], &params),
            Err(RemapError::ClientCountMismatch { .. })
        ));
        let bogus = Distribution {
            per_client: {
                let mut v = vec![Vec::new(); 4];
                v[0].push(WorkItem::whole(99, 4));
                v
            },
        };
        assert!(matches!(
            remap_incremental(&bogus, &chunks, &tree, &[0], &params),
            Err(RemapError::ChunkIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn incremental_remap_handles_partial_items() {
        // Orphans that are split mid-chunk (the supervisor hands over
        // half-executed chunks) still cover exactly the remaining range.
        let (chunks, tree) = figure_example();
        let params = ClusterParams::default();
        let mut dist = distribute(&chunks, &tree, &params);
        // Simulate partial progress: client 0 already executed the first
        // half of its first item.
        let first = &mut dist.per_client[0][0];
        first.start = first.end / 2;
        let before = covered(&dist);
        let remapped = remap_incremental(&dist, &chunks, &tree, &[0], &params).unwrap();
        assert_eq!(covered(&remapped), before);
    }
}

#[cfg(test)]
mod balance_probe {
    use super::*;
    use cachemap_storage::PlatformConfig;

    /// Mirrors the astro workload's tag structure at paper scale:
    /// (t, b) chunks with a streaming bit, a template bit, and a
    /// per-timestep stats bit.
    #[test]
    fn astro_shaped_input_balances_within_threshold() {
        let t_steps = 6usize;
        let v = 128usize;
        let r = t_steps * v + t_steps + v;
        let mut chunks = Vec::new();
        for t in 0..t_steps {
            for b in 0..v {
                let mut tag = cachemap_util::BitSet::new(r);
                tag.set(t * v + b); // stream chunk
                tag.set(t_steps * v + b); // template chunk
                tag.set(t_steps * v + v + t); // stats chunk
                chunks.push(IterationChunk {
                    nest: 0,
                    tag,
                    points: vec![vec![t as i64, b as i64, 0], vec![t as i64, b as i64, 1]],
                });
            }
        }
        let tree = HierarchyTree::from_config(&PlatformConfig::paper_default()).unwrap();
        let dist = distribute(&chunks, &tree, &ClusterParams::default());
        let per = dist.iterations_per_client();
        let mean = per.iter().sum::<u64>() as f64 / per.len() as f64;
        let max = *per.iter().max().unwrap() as f64;
        let min = *per.iter().min().unwrap() as f64;
        assert!(
            max / mean < 1.45 && min / mean > 0.55,
            "imbalance: min {min} mean {mean:.1} max {max} per={per:?}"
        );
    }
}
