//! JSON wire codec for mapper parameters, plus the request fingerprint.
//!
//! The mapping service identifies a request by the *content* of its
//! pipeline inputs: `(program, platform, mapper params, version)`. This
//! module provides the [`ToJson`]/parse pair for [`MapperConfig`] and
//! [`Version`], and [`fingerprint`] — the canonical content hash used as
//! the memoization key. Two requests with equal fingerprints run the
//! identical deterministic pipeline, so serving one from cache is
//! byte-for-byte indistinguishable from recomputing it (the
//! cache-coherence argument; see DESIGN.md "Service layer").
//!
//! The module also carries the `Send` audit for the worker-pool path:
//! every value a service worker thread owns or touches is statically
//! asserted `Send` here, so a future non-`Send` field (an `Rc`, a raw
//! pointer) fails the build, not the server at 2 a.m.

use crate::cluster::{ClusterParams, Linkage};
use crate::deps::DepStrategy;
use crate::mapper::{Mapper, MapperConfig, Version};
use crate::schedule::{ReuseMetric, ScheduleParams};
use cachemap_polyhedral::wire::WireError;
use cachemap_polyhedral::Program;
use cachemap_storage::{HierarchyTree, MappedProgram, PlatformConfig};
use cachemap_util::{fingerprint_json, Fingerprint, Json, ToJson};

// ---- Send audit -----------------------------------------------------------
// The service's worker threads move requests (program + platform + params)
// and results (mapped programs) across thread boundaries. Assert the whole
// surface is `Send + Sync` at compile time.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Mapper>();
    assert_send_sync::<MapperConfig>();
    assert_send_sync::<Version>();
    assert_send_sync::<Program>();
    assert_send_sync::<PlatformConfig>();
    assert_send_sync::<HierarchyTree>();
    assert_send_sync::<MappedProgram>();
    assert_send_sync::<cachemap_polyhedral::DataSpace>();
};

impl ToJson for Version {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

/// Parses a [`Version`] from its harness label.
pub fn version_from_json(v: &Json) -> Result<Version, WireError> {
    let s = v
        .as_str()
        .ok_or_else(|| WireError::new("version", "expected a string"))?;
    Version::ALL
        .iter()
        .copied()
        .find(|ver| ver.label() == s)
        .ok_or_else(|| {
            WireError::new(
                "version",
                format!(
                    "unknown version '{s}' (expected one of: {})",
                    Version::ALL.map(|v| v.label()).join(", ")
                ),
            )
        })
}

impl ToJson for MapperConfig {
    fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "cluster",
                Json::object(vec![
                    (
                        "balance_threshold",
                        Json::Float(self.cluster.balance_threshold),
                    ),
                    (
                        "linkage",
                        Json::Str(
                            match self.cluster.linkage {
                                Linkage::Total => "total",
                                Linkage::Average => "average",
                                Linkage::Sqrt => "sqrt",
                            }
                            .to_string(),
                        ),
                    ),
                ]),
            ),
            (
                "schedule",
                Json::object(vec![
                    ("alpha", Json::Float(self.schedule.alpha)),
                    ("beta", Json::Float(self.schedule.beta)),
                    (
                        "metric",
                        Json::Str(
                            match self.schedule.metric {
                                ReuseMetric::DotProduct => "dot",
                                ReuseMetric::HammingDistance => "hamming",
                            }
                            .to_string(),
                        ),
                    ),
                ]),
            ),
            (
                "dep_strategy",
                Json::Str(
                    match self.dep_strategy {
                        DepStrategy::Ignore => "ignore",
                        DepStrategy::CoCluster => "co-cluster",
                        DepStrategy::SyncInsert => "sync-insert",
                    }
                    .to_string(),
                ),
            ),
            ("joint_nests", Json::Bool(self.joint_nests)),
            ("refine_passes", Json::UInt(self.refine_passes as u64)),
        ])
    }
}

fn get_f64(v: &Json, key: &str, path: &str) -> Result<f64, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(path, format!("missing field '{key}'")))?
        .as_f64()
        .ok_or_else(|| WireError::new(format!("{path}.{key}"), "expected a number"))
}

/// Parses a [`MapperConfig`]. Missing sections fall back to the paper
/// defaults, so `{}` is the default configuration.
pub fn mapper_config_from_json(v: &Json) -> Result<MapperConfig, WireError> {
    if !matches!(v, Json::Object(_)) {
        return Err(WireError::new("mapper", "expected an object"));
    }
    let mut cfg = MapperConfig::default();
    if let Some(c) = v.get("cluster") {
        let threshold = get_f64(c, "balance_threshold", "cluster")?;
        if threshold.is_nan() || threshold < 0.0 {
            return Err(WireError::new(
                "cluster.balance_threshold",
                "must be a non-negative number",
            ));
        }
        let linkage = match c.get("linkage").and_then(Json::as_str) {
            Some("total") => Linkage::Total,
            Some("average") | None => Linkage::Average,
            Some("sqrt") => Linkage::Sqrt,
            Some(other) => {
                return Err(WireError::new(
                    "cluster.linkage",
                    format!("unknown linkage '{other}'"),
                ))
            }
        };
        cfg.cluster = ClusterParams {
            balance_threshold: threshold,
            linkage,
        };
    }
    if let Some(s) = v.get("schedule") {
        let metric = match s.get("metric").and_then(Json::as_str) {
            Some("dot") | None => ReuseMetric::DotProduct,
            Some("hamming") => ReuseMetric::HammingDistance,
            Some(other) => {
                return Err(WireError::new(
                    "schedule.metric",
                    format!("unknown metric '{other}'"),
                ))
            }
        };
        cfg.schedule = ScheduleParams {
            alpha: get_f64(s, "alpha", "schedule")?,
            beta: get_f64(s, "beta", "schedule")?,
            metric,
        };
    }
    if let Some(d) = v.get("dep_strategy") {
        cfg.dep_strategy = match d.as_str() {
            Some("ignore") => DepStrategy::Ignore,
            Some("co-cluster") => DepStrategy::CoCluster,
            Some("sync-insert") => DepStrategy::SyncInsert,
            _ => {
                return Err(WireError::new(
                    "dep_strategy",
                    "expected \"ignore\", \"co-cluster\", or \"sync-insert\"",
                ))
            }
        };
    }
    if let Some(j) = v.get("joint_nests") {
        cfg.joint_nests = match j {
            Json::Bool(b) => *b,
            _ => return Err(WireError::new("joint_nests", "expected a boolean")),
        };
    }
    if let Some(r) = v.get("refine_passes") {
        cfg.refine_passes = r
            .as_u64()
            .ok_or_else(|| WireError::new("refine_passes", "expected a non-negative integer"))?
            as usize;
    }
    Ok(cfg)
}

impl ToJson for crate::cluster::Distribution {
    /// Canonical wire form of a distribution: one array per client, each
    /// item as `[chunk, start, end]`. Compact and deterministic, so two
    /// distributions are equal iff their serializations are
    /// byte-identical — the comparison the parallel-kernel property
    /// tests and `bench-cluster` rely on.
    fn to_json(&self) -> Json {
        Json::Array(
            self.per_client
                .iter()
                .map(|items| {
                    Json::Array(
                        items
                            .iter()
                            .map(|it| {
                                Json::Array(vec![
                                    Json::UInt(it.chunk as u64),
                                    Json::UInt(it.start as u64),
                                    Json::UInt(it.end as u64),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

/// Parses the [`ToJson`] form of a [`crate::cluster::Distribution`].
pub fn distribution_from_json(v: &Json) -> Result<crate::cluster::Distribution, WireError> {
    let clients = v
        .as_array()
        .ok_or_else(|| WireError::new("distribution", "expected an array of client item lists"))?;
    let mut per_client = Vec::with_capacity(clients.len());
    for items in clients {
        let items = items
            .as_array()
            .ok_or_else(|| WireError::new("distribution", "client entry: expected an array"))?;
        let mut out = Vec::with_capacity(items.len());
        for it in items {
            let triple = it.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                WireError::new("distribution", "item: expected [chunk,start,end]")
            })?;
            let mut f = [0usize; 3];
            for (slot, x) in f.iter_mut().zip(triple) {
                *slot = x
                    .as_u64()
                    .ok_or_else(|| WireError::new("distribution", "item field: expected a u64"))?
                    as usize;
            }
            let item = crate::cluster::WorkItem {
                chunk: f[0],
                start: f[1],
                end: f[2],
            };
            if item.start > item.end {
                return Err(WireError::new("distribution", "item: start > end"));
            }
            out.push(item);
        }
        per_client.push(out);
    }
    Ok(crate::cluster::Distribution { per_client })
}

/// The canonical content fingerprint of one mapping request: the inputs
/// that fully determine the pipeline's output.
///
/// Stability contract (property-tested in `cachemap-service`): the
/// fingerprint is invariant under JSON field-insertion order and
/// serialize → parse round trips, and changes when any single input
/// field changes. Since the pipeline itself is deterministic, equal
/// fingerprints imply byte-identical mappings — which is exactly the
/// invariant the service's cache relies on.
pub fn fingerprint(
    program: &Program,
    platform: &PlatformConfig,
    mapper: &MapperConfig,
    version: Version,
) -> Fingerprint {
    let v = Json::object(vec![
        ("program", program.to_json()),
        ("platform", platform.to_json()),
        ("mapper", mapper.to_json()),
        ("version", version.to_json()),
    ]);
    fingerprint_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_config_round_trips() {
        let cfg = MapperConfig {
            cluster: ClusterParams {
                balance_threshold: 0.25,
                linkage: Linkage::Sqrt,
            },
            schedule: ScheduleParams {
                alpha: 0.3,
                beta: 0.7,
                metric: ReuseMetric::HammingDistance,
            },
            dep_strategy: DepStrategy::SyncInsert,
            joint_nests: true,
            refine_passes: 2,
        };
        let back = mapper_config_from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn empty_object_is_the_default_config() {
        let cfg = mapper_config_from_json(&Json::Object(Vec::new())).unwrap();
        assert_eq!(cfg, MapperConfig::default());
    }

    #[test]
    fn distribution_round_trips_byte_for_byte() {
        use crate::cluster::{Distribution, WorkItem};
        let dist = Distribution {
            per_client: vec![
                vec![
                    WorkItem {
                        chunk: 0,
                        start: 0,
                        end: 5,
                    },
                    WorkItem {
                        chunk: 3,
                        start: 2,
                        end: 4,
                    },
                ],
                vec![],
                vec![WorkItem {
                    chunk: 1,
                    start: 0,
                    end: 1,
                }],
            ],
        };
        let json = dist.to_json();
        let back = distribution_from_json(&json).unwrap();
        assert_eq!(back, dist);
        assert_eq!(json.to_string_compact(), back.to_json().to_string_compact());
        // Malformed shapes are rejected.
        assert!(distribution_from_json(&Json::Bool(true)).is_err());
        let bad = Json::Array(vec![Json::Array(vec![Json::Array(vec![
            Json::UInt(0),
            Json::UInt(9),
            Json::UInt(3),
        ])])]);
        assert!(distribution_from_json(&bad).is_err(), "start > end");
    }

    #[test]
    fn all_version_labels_round_trip() {
        for v in Version::ALL {
            assert_eq!(version_from_json(&v.to_json()).unwrap(), v);
        }
        assert!(version_from_json(&Json::Str("bogus".into())).is_err());
    }

    #[test]
    fn fingerprint_depends_on_every_component() {
        let (program, data) = crate::tags::tests::figure6_program(4);
        let _ = data;
        let platform = PlatformConfig::tiny();
        let base = fingerprint(
            &program,
            &platform,
            &MapperConfig::default(),
            Version::InterProcessor,
        );
        // Version change.
        assert_ne!(
            base,
            fingerprint(
                &program,
                &platform,
                &MapperConfig::default(),
                Version::Original
            )
        );
        // Params change.
        let cfg = MapperConfig {
            refine_passes: 1,
            ..MapperConfig::default()
        };
        assert_ne!(
            base,
            fingerprint(&program, &platform, &cfg, Version::InterProcessor)
        );
        // Platform change.
        let platform2 = platform.clone().with_cache_chunks(3, 3, 3);
        assert_ne!(
            base,
            fingerprint(
                &program,
                &platform2,
                &MapperConfig::default(),
                Version::InterProcessor
            )
        );
        // Stable across calls.
        assert_eq!(
            base,
            fingerprint(
                &program,
                &platform,
                &MapperConfig::default(),
                Version::InterProcessor
            )
        );
    }

    #[test]
    fn fingerprint_sees_every_levels_eviction_policy() {
        // Service-cache correctness for the policy zoo: flipping any
        // single level's policy must move the fingerprint, while the
        // uniform default must keep the exact pre-zoo fingerprint bytes
        // (its wire encoding is the legacy single string).
        use cachemap_storage::config::PolicyKind;
        let (program, _) = crate::tags::tests::figure6_program(4);
        let platform = PlatformConfig::tiny();
        let cfg = MapperConfig::default();
        let base = fingerprint(&program, &platform, &cfg, Version::InterProcessor);
        let mut seen = vec![base];
        for level in 0..3 {
            let mut p = platform.clone();
            p.policies[level] = PolicyKind::Slru;
            let fp = fingerprint(&program, &p, &cfg, Version::InterProcessor);
            assert!(
                !seen.contains(&fp),
                "changing level {level}'s policy must change the fingerprint"
            );
            seen.push(fp);
        }
        // Uniform sweeps change it too (each policy is distinct).
        for kind in PolicyKind::ALL {
            let p = platform.clone().with_policy(kind);
            let fp = fingerprint(&program, &p, &cfg, Version::InterProcessor);
            if kind == PolicyKind::Lru {
                assert_eq!(fp, base, "all-LRU is the default and must not move");
            } else {
                assert!(!seen.contains(&fp), "{kind:?}");
                seen.push(fp);
            }
        }
    }
}
