//! The two comparison versions of Section 5.1.
//!
//! * [`original`] — "the set of iterations to be executed in parallel is
//!   first ordered lexicographically (the default order implied by the
//!   sequential execution) and then divided into K clusters, where K is
//!   the number of client nodes. Each cluster is then assigned to a
//!   client node."
//! * [`intra_processor`] — "well-known data locality enhancing
//!   transformations … loop permutation … and iteration space tiling …
//!   To approximate the ideal tile size, we experimented with different
//!   tile sizes and selected the one that performs the best. After these
//!   locality optimizations, the iterations are divided into k clusters
//!   and each cluster is assigned to a client node." The tile-size /
//!   permutation search uses a *single-processor-centric* metric — a
//!   private LRU simulated over the whole traversal — deliberately blind
//!   to inter-client sharing, exactly as the paper characterizes this
//!   baseline.

use cachemap_polyhedral::deps::exact_dependences;
use cachemap_polyhedral::transform::Traversal;
use cachemap_polyhedral::{DataSpace, Point, Program};
use cachemap_storage::cache::{ChunkCache, LruCache};
use cachemap_storage::MappedProgram;

use crate::codegen::lower_iteration_lists;

/// Splits an ordered iteration sequence into `k` contiguous blocks of
/// near-equal size (block `c` gets iterations
/// `[c·N/k, (c+1)·N/k)`).
pub fn block_partition(points: Vec<Point>, nest_idx: usize, k: usize) -> Vec<Vec<(usize, Point)>> {
    let n = points.len();
    let mut out: Vec<Vec<(usize, Point)>> = vec![Vec::new(); k];
    for (i, p) in points.into_iter().enumerate() {
        // Stable proportional assignment without floats.
        let c = i * k / n.max(1);
        out[c.min(k - 1)].push((nest_idx, p));
    }
    out
}

/// The *original* version: lexicographic order, contiguous block
/// distribution over `k` clients, one mapped program per nest
/// concatenated in program order.
pub fn original(program: &Program, data: &DataSpace, k: usize) -> MappedProgram {
    let mut mp = MappedProgram::new(k);
    for (ni, nest) in program.nests.iter().enumerate() {
        let points: Vec<Point> = nest.space.iter().collect();
        let lists = block_partition(points, ni, k);
        let part = lower_iteration_lists(&lists, program, data);
        crate::codegen::append_program(&mut mp, part);
    }
    mp
}

/// Candidate traversals considered by the intra-processor search for one
/// nest: identity, all legal loop permutations (nest depth ≤ 4 keeps
/// this cheap), and — for rectangular spaces with legal tiling — uniform
/// tile sizes 4..=64 with and without the best tile-loop permutation.
pub fn candidate_traversals(program: &Program, nest_idx: usize) -> Vec<Traversal> {
    let nest = &program.nests[nest_idx];
    let deps = exact_dependences(nest, &program.arrays);
    let depth = nest.depth();
    let mut out = vec![Traversal::Identity];

    // All permutations for small depths.
    if (2..=4).contains(&depth) {
        let mut perm: Vec<usize> = (0..depth).collect();
        permutations(&mut perm, 0, &mut |p| {
            if p != (0..depth).collect::<Vec<_>>() {
                let t = Traversal::Permuted(p.to_vec());
                if t.is_legal(&deps) {
                    out.push(t);
                }
            }
        });
    }

    if nest.space.is_rectangular() && depth >= 2 {
        for ts in [4i64, 8, 16, 32, 64] {
            let t = Traversal::Tiled(vec![ts; depth]);
            if t.is_legal(&deps) {
                out.push(t);
            }
        }
    }
    out
}

fn permutations(perm: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        f(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permutations(perm, k + 1, f);
        perm.swap(k, i);
    }
}

/// Single-processor locality cost of a traversal: misses of one private
/// LRU of `l1_chunks` chunks replayed over the full chunk trace.
pub fn locality_cost(
    program: &Program,
    data: &DataSpace,
    nest_idx: usize,
    order: &[Point],
    l1_chunks: usize,
) -> u64 {
    let nest = &program.nests[nest_idx];
    let mut lru = LruCache::new(l1_chunks.max(1));
    for p in order {
        for r in &nest.refs {
            let lin = r.eval_linear(p, &program.arrays[r.array]);
            let chunk = data.chunk_of(r.array, lin);
            if !lru.access(chunk, false) {
                lru.insert(chunk, false);
            }
        }
    }
    lru.stats().misses
}

/// The *intra-processor* version: per nest, search the candidate
/// traversals for the one minimizing the private-LRU miss count, then
/// block-partition the winning order over `k` clients.
pub fn intra_processor(
    program: &Program,
    data: &DataSpace,
    k: usize,
    l1_chunks: usize,
) -> MappedProgram {
    let mut mp = MappedProgram::new(k);
    for ni in 0..program.nests.len() {
        let order = best_traversal_order(program, data, ni, l1_chunks);
        let lists = block_partition(order, ni, k);
        let part = lower_iteration_lists(&lists, program, data);
        crate::codegen::append_program(&mut mp, part);
    }
    mp
}

/// The winning iteration order for one nest under the intra-processor
/// search (exposed for tests and the ablation harness).
pub fn best_traversal_order(
    program: &Program,
    data: &DataSpace,
    nest_idx: usize,
    l1_chunks: usize,
) -> Vec<Point> {
    let mut best: Option<(u64, Vec<Point>)> = None;
    for t in candidate_traversals(program, nest_idx) {
        let order = t.enumerate(&program.nests[nest_idx].space);
        let cost = locality_cost(program, data, nest_idx, &order, l1_chunks);
        match &best {
            Some((bc, _)) if *bc <= cost => {}
            _ => best = Some((cost, order)),
        }
    }
    match best {
        Some((_, order)) => order,
        None => {
            // Invariant: candidate_traversals always yields at least the
            // identity traversal, so best is always set.
            debug_assert!(false, "at least the identity traversal exists");
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_polyhedral::{AffineExpr, ArrayDecl, ArrayRef, IterationSpace, LoopNest};

    /// Column-major walk over a row-major array: identity order has
    /// terrible chunk locality; permuting the loops fixes it.
    fn column_major_program(n: i64) -> (Program, DataSpace) {
        let a = ArrayDecl::new("A", vec![n, n], 8);
        let space = IterationSpace::rectangular(&[n, n]);
        // A[i1][i0]: inner loop strides by a whole row.
        let r = ArrayRef::read(0, vec![AffineExpr::var(1), AffineExpr::var(0)]);
        let nest = LoopNest::new("colmajor", space, vec![r]);
        let program = Program::new("p", vec![a], vec![nest]);
        let data = DataSpace::new(&program.arrays, 64); // 8 elements/chunk
        (program, data)
    }

    #[test]
    fn block_partition_is_contiguous_and_balanced() {
        let points: Vec<Point> = (0..10).map(|i| vec![i]).collect();
        let parts = block_partition(points, 0, 4);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (2..=3).contains(&s)), "{sizes:?}");
        // Contiguity: each part's points are consecutive.
        for part in &parts {
            for w in part.windows(2) {
                assert_eq!(w[1].1[0], w[0].1[0] + 1);
            }
        }
    }

    #[test]
    fn original_covers_all_iterations() {
        let (program, data) = column_major_program(8);
        let mp = original(&program, &data, 4);
        assert_eq!(mp.total_accesses(), 64);
        let per = mp.accesses_per_client();
        assert!(per.iter().all(|&x| x == 16), "{per:?}");
    }

    #[test]
    fn intra_processor_beats_original_locality_on_bad_nest() {
        let (program, data) = column_major_program(16);
        let identity: Vec<Point> = program.nests[0].space.iter().collect();
        let ident_cost = locality_cost(&program, &data, 0, &identity, 4);
        let best = best_traversal_order(&program, &data, 0, 4);
        let best_cost = locality_cost(&program, &data, 0, &best, 4);
        assert!(
            best_cost < ident_cost,
            "search must improve locality: {best_cost} vs {ident_cost}"
        );
        // The permuted (row-of-array) order is optimal here: one miss per
        // chunk.
        assert_eq!(best_cost, data.num_chunks() as u64);
    }

    #[test]
    fn candidate_set_respects_dependences() {
        // A[i][j] = A[i-1][j] + A[i][j-1]: no permutation is illegal
        // (all distances non-negative), but check the recurrence version:
        // A[i][j] = A[i-1][j+1] forbids interchange.
        let a = ArrayDecl::new("A", vec![8, 8], 8);
        let space = IterationSpace::new(vec![
            cachemap_polyhedral::Loop::constant(1, 7),
            cachemap_polyhedral::Loop::constant(0, 6),
        ]);
        let refs = vec![
            ArrayRef::read(
                0,
                vec![AffineExpr::var_plus(0, -1), AffineExpr::var_plus(1, 1)],
            ),
            ArrayRef::write(0, vec![AffineExpr::var(0), AffineExpr::var(1)]),
        ];
        let nest = LoopNest::new("skew", space, refs);
        let program = Program::new("p", vec![a], vec![nest]);
        let cands = candidate_traversals(&program, 0);
        assert!(
            !cands.contains(&Traversal::Permuted(vec![1, 0])),
            "interchange must be rejected for distance (1,-1)"
        );
        assert!(cands.contains(&Traversal::Identity));
    }

    #[test]
    fn intra_processor_same_iteration_set_as_original() {
        let (program, data) = column_major_program(8);
        let o = original(&program, &data, 4);
        let i = intra_processor(&program, &data, 4, 4);
        assert_eq!(o.total_accesses(), i.total_accesses());
    }

    #[test]
    fn single_loop_nest_candidates() {
        // Depth-1 nests only get the identity (nothing to permute/tile).
        let a = ArrayDecl::new("A", vec![32], 8);
        let space = IterationSpace::rectangular(&[32]);
        let r = ArrayRef::read(0, vec![AffineExpr::var(0)]);
        let nest = LoopNest::new("n", space, vec![r]);
        let program = Program::new("p", vec![a], vec![nest]);
        let cands = candidate_traversals(&program, 0);
        assert_eq!(cands, vec![Traversal::Identity]);
    }
}
