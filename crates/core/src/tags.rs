//! Iteration tags and iteration chunks (Section 4.2).
//!
//! Every iteration `σ` gets an r-bit tag `Λ = λ0…λ(r-1)` with `λk = 1`
//! iff `σ` accesses data chunk `π_k` through any reference in the loop
//! body. An **iteration chunk** `γΛ` is the set of iterations sharing a
//! tag: all of them have the same chunk-level data access pattern, so
//! they are executed back-to-back when scheduled (exploiting reuse), and
//! their tags measure similarity between chunks of work.

use cachemap_polyhedral::{DataSpace, LoopNest, Point, Program};
use cachemap_util::{BitSet, FxHashMap};

/// A set of iterations with identical data-chunk access tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationChunk {
    /// Index of the loop nest (within its program) these iterations come
    /// from — needed to evaluate the right references at codegen time.
    pub nest: usize,
    /// The r-bit tag `Λ`.
    pub tag: BitSet,
    /// Member iterations in lexicographic order.
    pub points: Vec<Point>,
}

impl IterationChunk {
    /// Size `S(γΛ)` — the number of member iterations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the chunk has no iterations (never produced by tagging).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The result of tagging one loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedNest {
    /// Iteration chunks in order of first appearance.
    pub chunks: Vec<IterationChunk>,
    /// For the `i`-th iteration in lexicographic order, the index of its
    /// chunk in `chunks` (used by the dependence machinery to translate
    /// iteration-level dependences to chunk level).
    pub iter_chunk_of: Vec<u32>,
}

impl TaggedNest {
    /// Total iterations across all chunks.
    pub fn total_iterations(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }
}

/// Computes the tag of a single iteration of a nest.
pub fn tag_of_iteration(
    nest: &LoopNest,
    nest_arrays: &[cachemap_polyhedral::ArrayDecl],
    data: &DataSpace,
    point: &Point,
) -> BitSet {
    let mut tag = BitSet::new(data.num_chunks());
    for r in &nest.refs {
        let lin = r.eval_linear(point, &nest_arrays[r.array]);
        tag.set(data.chunk_of(r.array, lin));
    }
    tag
}

/// Tags every iteration of nest `nest_idx` of `program` and groups them
/// into iteration chunks (equal-tag classes, first-appearance order).
pub fn tag_nest(program: &Program, nest_idx: usize, data: &DataSpace) -> TaggedNest {
    let nest = &program.nests[nest_idx];
    let mut index: FxHashMap<BitSet, u32> = FxHashMap::default();
    let mut chunks: Vec<IterationChunk> = Vec::new();
    let mut iter_chunk_of: Vec<u32> = Vec::with_capacity(nest.space.size().min(1 << 24) as usize);

    for point in nest.space.iter() {
        let tag = tag_of_iteration(nest, &program.arrays, data, &point);
        let idx = *index.entry(tag.clone()).or_insert_with(|| {
            chunks.push(IterationChunk {
                nest: nest_idx,
                tag,
                points: Vec::new(),
            });
            (chunks.len() - 1) as u32
        });
        chunks[idx as usize].points.push(point);
        iter_chunk_of.push(idx);
    }

    TaggedNest {
        chunks,
        iter_chunk_of,
    }
}

/// Tags several nests of a program against one shared data space and
/// concatenates their chunk lists (the multi-nest extension of §5.4:
/// "we simply form G to contain iterations of both the nests").
///
/// Returns the combined chunk list plus, per nest, the range of chunk
/// indices belonging to it.
pub fn tag_nests(
    program: &Program,
    nest_indices: &[usize],
    data: &DataSpace,
) -> (Vec<IterationChunk>, Vec<std::ops::Range<usize>>) {
    let mut chunks = Vec::new();
    let mut ranges = Vec::with_capacity(nest_indices.len());
    for &ni in nest_indices {
        let tagged = tag_nest(program, ni, data);
        let start = chunks.len();
        chunks.extend(tagged.chunks);
        ranges.push(start..chunks.len());
    }
    (chunks, ranges)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cachemap_polyhedral::{AccessKind, AffineExpr, ArrayDecl, ArrayRef, IterationSpace, Loop};

    /// The paper's running example (Figure 6): a 1-D array of `m`
    /// elements split into 12 chunks of size `d`; each iteration `i`
    /// accesses `A[i]`, `A[i%d]`, `A[i+4d]`, `A[i+2d]`.
    ///
    /// The `i%d` reference is quasi-affine and expressed exactly with a
    /// modular subscript; since `0 ≤ i%d < d`, it always lands in chunk
    /// π0, producing precisely the Figure 8 tags.
    pub(crate) fn figure6_program(d: i64) -> (Program, DataSpace) {
        let m = 12 * d;
        let elem = 8u64;
        let a = ArrayDecl::new("A", vec![m], elem);
        // for i = 0 to m - 4d - 1
        let space = IterationSpace::new(vec![Loop::constant(0, m - 4 * d - 1)]);
        let refs = vec![
            ArrayRef::write(0, vec![AffineExpr::var(0)]), // A[i] =
            ArrayRef::read(0, vec![AffineExpr::var(0).with_mod(d)]), // A[i % d]
            ArrayRef::read(0, vec![AffineExpr::var_plus(0, 4 * d)]), // A[i+4d]
            ArrayRef::read(0, vec![AffineExpr::var_plus(0, 2 * d)]), // A[i+2d]
        ];
        let nest = cachemap_polyhedral::LoopNest::new("fig6", space, refs);
        let program = Program::new("fig6", vec![a], vec![nest]);
        let chunk_bytes = d as u64 * elem; // chunk size d elements
        let data = DataSpace::new(&program.arrays, chunk_bytes);
        (program, data)
    }

    #[test]
    fn figure8_tags_reproduced() {
        // With d = 4 (12 chunks), the paper's Figure 8 lists 8 iteration
        // chunks with these tags.
        let (program, data) = figure6_program(4);
        assert_eq!(data.num_chunks(), 12);
        let tagged = tag_nest(&program, 0, &data);
        let expected = [
            "101010000000", // γ1: i = 0..d-1
            "110101000000", // γ2: i = d..2d-1
            "101010100000", // γ3: i = 2d..3d-1
            "100101010000", // γ4: i = 3d..4d-1
            "100010101000", // γ5
            "100001010100", // γ6
            "100000101010", // γ7
            "100000010101", // γ8
        ];
        assert_eq!(tagged.chunks.len(), 8);
        for (k, want) in expected.iter().enumerate() {
            assert_eq!(
                tagged.chunks[k].tag.to_tag_string(),
                *want,
                "iteration chunk γ{}",
                k + 1
            );
            assert_eq!(tagged.chunks[k].len(), 4, "each chunk spans d iterations");
        }
    }

    #[test]
    fn chunks_partition_the_iteration_space() {
        let (program, data) = figure6_program(4);
        let tagged = tag_nest(&program, 0, &data);
        let total: usize = tagged.chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total as u64, program.nests[0].num_iterations());
        assert_eq!(tagged.iter_chunk_of.len(), total);
        // Each iteration mapped to the chunk that contains it.
        for (idx, point) in program.nests[0].space.iter().enumerate() {
            let c = tagged.iter_chunk_of[idx] as usize;
            assert!(tagged.chunks[c].points.contains(&point));
        }
    }

    #[test]
    fn tag_reflects_all_references() {
        let (program, data) = figure6_program(4);
        let nest = &program.nests[0];
        // Iteration 0 touches chunks {0 (A[0], A[i%d]), 2 (A[8]), 4 (A[16])}.
        let tag = tag_of_iteration(nest, &program.arrays, &data, &vec![0]);
        let ones: Vec<usize> = tag.iter_ones().collect();
        assert_eq!(ones, vec![0, 2, 4]);
    }

    #[test]
    fn iterations_within_chunk_are_lexicographic() {
        let (program, data) = figure6_program(4);
        let tagged = tag_nest(&program, 0, &data);
        for c in &tagged.chunks {
            for w in c.points.windows(2) {
                assert!(w[0] < w[1], "points must stay in lexicographic order");
            }
        }
    }

    #[test]
    fn multi_nest_tagging_concatenates() {
        let (mut program, data) = figure6_program(4);
        let second = program.nests[0].clone();
        program.nests.push(second);
        let (chunks, ranges) = tag_nests(&program, &[0, 1], &data);
        assert_eq!(chunks.len(), 16);
        assert_eq!(ranges, vec![0..8, 8..16]);
        assert!(chunks[..8].iter().all(|c| c.nest == 0));
        assert!(chunks[8..].iter().all(|c| c.nest == 1));
    }

    #[test]
    fn two_d_nest_tags_group_rows() {
        // A[8][8] with 64-byte chunks of 8 elements: each row is one
        // chunk, so each row of iterations forms one iteration chunk.
        let a = ArrayDecl::new("A", vec![8, 8], 8);
        let space = IterationSpace::rectangular(&[8, 8]);
        let r = ArrayRef::read(0, vec![AffineExpr::var(0), AffineExpr::var(1)]);
        assert_eq!(r.kind, AccessKind::Read);
        let nest = cachemap_polyhedral::LoopNest::new("rows", space, vec![r]);
        let program = Program::new("p", vec![a], vec![nest]);
        let data = DataSpace::new(&program.arrays, 64);
        let tagged = tag_nest(&program, 0, &data);
        assert_eq!(tagged.chunks.len(), 8);
        assert!(tagged.chunks.iter().all(|c| c.len() == 8));
        assert!(tagged.chunks.iter().all(|c| c.tag.count_ones() == 1));
    }
}
