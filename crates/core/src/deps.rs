//! Handling loops with cross-iteration dependences (Section 5.4).
//!
//! The paper offers two extensions, both implemented here:
//!
//! 1. **Co-clustering** — "associate an infinite edge weight between
//!    iteration chunks that have dependencies between them", so all
//!    dependent chunks land in a single cluster and execute on one
//!    client, needing no synchronization. Implemented as a union-find
//!    pre-merge of the iteration chunks connected by dependence edges.
//! 2. **Dependences as sharing + synchronization** (the paper's chosen
//!    implementation) — the clustering step treats dependences as normal
//!    data sharing (the tags already capture the shared chunks), and the
//!    scheduling step inserts inter-client synchronization directives to
//!    respect the dependences: the client finishing a source chunk
//!    signals a token; every client holding a dependent chunk waits on
//!    it before starting that chunk.

use crate::cluster::Distribution;
use crate::tags::{IterationChunk, TaggedNest};
use cachemap_polyhedral::access::AccessKind;
use cachemap_polyhedral::{DataSpace, Program};
use cachemap_storage::{ClientOp, MappedProgram};
use cachemap_util::{FxHashMap, FxHashSet};

/// How the mapper handles loops with cross-iteration dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepStrategy {
    /// Assume the parallelized iterations are dependence-free (the
    /// baseline assumption of Section 4; cheapest, skips the dependence
    /// scan entirely).
    Ignore,
    /// Strategy 1: infinite edge weights — dependent chunks are merged
    /// before clustering so they land on one client.
    CoCluster,
    /// Strategy 2 (the paper's implementation): dependences are treated
    /// as data sharing and inter-client synchronization is inserted at
    /// scheduling time.
    SyncInsert,
}

/// A chunk-level dependence edge: every iteration of `dst` that depends
/// on an iteration of `src` comes lexicographically later, so `src` must
/// complete before `dst` starts (conservative chunk-granularity view).
pub type ChunkDep = (usize, usize);

/// Computes chunk-level dependence edges for one tagged nest by scanning
/// the iteration space once (same adjacent-pair technique as
/// `cachemap_polyhedral::deps::exact_dependences`, lifted to iteration
/// chunks). Self-edges are dropped — intra-chunk order is sequential on
/// one client anyway.
pub fn chunk_dependence_edges(
    program: &Program,
    nest_idx: usize,
    data: &DataSpace,
    tagged: &TaggedNest,
) -> Vec<ChunkDep> {
    let nest = &program.nests[nest_idx];
    let _ = data; // element→chunk mapping not needed: deps are on elements

    #[derive(Default, Clone)]
    struct LastTouch {
        write: Option<u32>, // iteration chunk of last writer
        read: Option<u32>,
    }

    let mut last: FxHashMap<(usize, u64), LastTouch> = FxHashMap::default();
    let mut edges: FxHashSet<ChunkDep> = FxHashSet::default();

    for (idx, point) in nest.space.iter().enumerate() {
        let me = tagged.iter_chunk_of[idx];
        for r in &nest.refs {
            let lin = r.eval_linear(&point, &program.arrays[r.array]);
            let entry = last.entry((r.array, lin)).or_default();
            match r.kind {
                AccessKind::Read => {
                    if let Some(w) = entry.write {
                        if w != me {
                            edges.insert((w as usize, me as usize));
                        }
                    }
                    entry.read = Some(me);
                }
                AccessKind::Write => {
                    if let Some(rd) = entry.read {
                        if rd != me {
                            edges.insert((rd as usize, me as usize));
                        }
                    }
                    if let Some(w) = entry.write {
                        if w != me {
                            edges.insert((w as usize, me as usize));
                        }
                    }
                    entry.write = Some(me);
                }
            }
        }
    }

    let mut out: Vec<ChunkDep> = edges.into_iter().collect();
    out.sort_unstable();
    out
}

/// Strategy 1: merges every dependence-connected component of chunks
/// into a single iteration chunk (union of members, union of tags), so
/// clustering keeps dependent work together and no synchronization is
/// needed. Iterations inside a merged chunk stay in lexicographic order.
pub fn co_cluster(chunks: &[IterationChunk], edges: &[ChunkDep]) -> Vec<IterationChunk> {
    let n = chunks.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }

    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut roots: Vec<usize> = groups.keys().copied().collect();
    roots.sort_unstable();

    roots
        .into_iter()
        .map(|r| {
            let members = &groups[&r];
            if members.len() == 1 {
                return chunks[members[0]].clone();
            }
            let mut tag = chunks[members[0]].tag.clone();
            let mut points = Vec::new();
            for &m in members {
                tag.union_with(&chunks[m].tag);
                points.extend(chunks[m].points.iter().cloned());
            }
            points.sort();
            IterationChunk {
                nest: chunks[members[0]].nest,
                tag,
                points,
            }
        })
        .collect()
}

/// Strategy 2: lowers a distribution to a mapped program with
/// synchronization. For each dependence edge whose source and
/// destination chunks live (at least partly) on different clients, the
/// source's owners signal a token after their last source item, and
/// every other owner of the destination waits on those tokens before its
/// first destination item.
///
/// # Panics
/// The resulting program panics *at simulation time* if the chunk-level
/// dependence graph had a cycle across clients (the engine detects the
/// deadlock); the workloads exercised here have forward-only chunk
/// dependences.
pub fn lower_with_sync(
    dist: &Distribution,
    chunks: &[IterationChunk],
    program: &Program,
    data: &DataSpace,
    edges: &[ChunkDep],
) -> MappedProgram {
    // Owners of each chunk (clients executing at least one item of it).
    let mut owners: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (c, items) in dist.per_client.iter().enumerate() {
        for it in items {
            let v = owners.entry(it.chunk).or_default();
            if !v.contains(&c) {
                v.push(c);
            }
        }
    }

    // Token per (edge, source owner). Signal goes after the owner's last
    // item of the source chunk; waits go before the first item of the
    // destination chunk on every *other* client.
    let mut next_token: u32 = 0;
    // signals[client][item position] → tokens to signal after that item.
    let mut signal_after: FxHashMap<(usize, usize), Vec<u32>> = FxHashMap::default();
    let mut wait_before: FxHashMap<(usize, usize), Vec<u32>> = FxHashMap::default();

    for &(src, dst) in edges {
        let src_owners = match owners.get(&src) {
            Some(o) => o.clone(),
            None => continue,
        };
        let dst_owners = match owners.get(&dst) {
            Some(o) => o.clone(),
            None => continue,
        };
        for &so in &src_owners {
            // Destinations on other clients need to wait on this owner.
            let external: Vec<usize> = dst_owners.iter().copied().filter(|&d| d != so).collect();
            if external.is_empty() {
                continue;
            }
            let token = next_token;
            next_token += 1;
            // Invariant: `owners` was built from `dist`, so every owner
            // listed for a chunk holds an item of it; skip the edge if
            // the bookkeeping ever disagrees rather than panic.
            let Some(last_pos) = dist.per_client[so].iter().rposition(|it| it.chunk == src) else {
                debug_assert!(false, "owner has a source item");
                continue;
            };
            signal_after.entry((so, last_pos)).or_default().push(token);
            for d in external {
                let Some(first_pos) = dist.per_client[d].iter().position(|it| it.chunk == dst)
                else {
                    debug_assert!(false, "owner has a destination item");
                    continue;
                };
                wait_before.entry((d, first_pos)).or_default().push(token);
            }
        }
    }

    let mut mp = MappedProgram::new(dist.per_client.len());
    for (c, items) in dist.per_client.iter().enumerate() {
        let ops = &mut mp.per_client[c];
        for (pos, item) in items.iter().enumerate() {
            if let Some(tokens) = wait_before.get(&(c, pos)) {
                for &t in tokens {
                    ops.push(ClientOp::Wait { token: t });
                }
            }
            let chunk = &chunks[item.chunk];
            for point in &chunk.points[item.start..item.end] {
                crate::codegen::emit_iteration(program, data, chunk.nest, point, ops);
            }
            if let Some(tokens) = signal_after.get(&(c, pos)) {
                for &t in tokens {
                    ops.push(ClientOp::Signal { token: t });
                }
            }
        }
    }
    mp
}

/// Reorders each client's items so that all orders are consistent with
/// **one global topological order** of the chunk dependence DAG —
/// applied after scheduling, which is reuse-driven and
/// dependence-oblivious.
///
/// Per-client forward edges alone are not enough: with the signal/wait
/// protocol of [`lower_with_sync`], two clients whose item orders
/// interleave two independent dependence chains in opposite directions
/// deadlock even though the chunk DAG is acyclic. Sorting every client's
/// items by a single topological rank makes the union of dependence
/// edges and program-order edges acyclic, which guarantees progress.
/// Within equal ranks the scheduler's (reuse-driven) order is preserved.
///
/// If the conservative chunk-level graph contains a cycle, the cycle is
/// broken at an arbitrary (deterministic) edge — the affected chunks get
/// the same rank and their cross-client edges are dropped by
/// [`lower_with_sync`]'s caller passing the reduced edge list.
pub fn enforce_intra_client_order(dist: &mut Distribution, edges: &[ChunkDep]) {
    if edges.is_empty() {
        return;
    }
    let rank = topological_ranks(edges);
    for items in &mut dist.per_client {
        items.sort_by_key(|it| rank.get(&it.chunk).copied().unwrap_or(0));
        // sort_by_key is stable: equal-rank items keep schedule order.
    }
}

/// Kahn's algorithm over the chunk dependence graph; chunks left in a
/// cycle (conservative over-approximation artifacts) share the maximum
/// rank seen so far.
pub fn topological_ranks(edges: &[ChunkDep]) -> FxHashMap<usize, usize> {
    let mut succs: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    let mut indeg: FxHashMap<usize, usize> = FxHashMap::default();
    for &(a, b) in edges {
        succs.entry(a).or_default().push(b);
        *indeg.entry(b).or_default() += 1;
        indeg.entry(a).or_default();
    }
    let mut ready: Vec<usize> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    ready.sort_unstable();
    let mut rank: FxHashMap<usize, usize> = FxHashMap::default();
    let mut next_rank = 0usize;
    let mut frontier = ready;
    while !frontier.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for &n in &frontier {
            rank.insert(n, next_rank);
            if let Some(ss) = succs.get(&n) {
                for &s in ss {
                    // Invariant: every successor got an indegree entry
                    // when the edge was recorded.
                    let Some(d) = indeg.get_mut(&s) else {
                        debug_assert!(false, "successor has indegree");
                        continue;
                    };
                    *d -= 1;
                    if *d == 0 {
                        next.push(s);
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        next_rank += 1;
        frontier = next;
    }
    // Any node not ranked sits in a cycle: give it the max rank.
    for &n in indeg.keys() {
        rank.entry(n).or_insert(next_rank);
    }
    rank
}

/// Removes edges that are part of a cycle in the conservative chunk
/// graph (both endpoints unranked by a clean topological pass, or an
/// edge going backward in rank). The remaining forward edges are safe
/// for [`lower_with_sync`].
pub fn acyclic_edges(edges: &[ChunkDep]) -> Vec<ChunkDep> {
    let rank = topological_ranks(edges);
    edges
        .iter()
        .copied()
        .filter(|&(a, b)| rank.get(&a) < rank.get(&b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{distribute, ClusterParams, WorkItem};
    use crate::tags::tag_nest;
    use cachemap_polyhedral::{AffineExpr, ArrayDecl, ArrayRef, IterationSpace, Loop, LoopNest};
    use cachemap_storage::{HierarchyTree, PlatformConfig, Simulator};

    /// for i = 8..63: A[i] = A[i-8] — forward flow dependence crossing
    /// chunk boundaries (8 elements per chunk).
    fn recurrence_program() -> (Program, DataSpace) {
        let a = ArrayDecl::new("A", vec![64], 8);
        let space = IterationSpace::new(vec![Loop::constant(8, 63)]);
        let refs = vec![
            ArrayRef::read(0, vec![AffineExpr::var_plus(0, -8)]),
            ArrayRef::write(0, vec![AffineExpr::var(0)]),
        ];
        let nest = LoopNest::new("rec", space, refs);
        let program = Program::new("rec", vec![a], vec![nest]);
        let data = DataSpace::new(&program.arrays, 64); // 8 elems/chunk
        (program, data)
    }

    #[test]
    fn chunk_edges_follow_the_recurrence() {
        let (program, data) = recurrence_program();
        let tagged = tag_nest(&program, 0, &data);
        let edges = chunk_dependence_edges(&program, 0, &data, &tagged);
        assert!(!edges.is_empty());
        // All edges go forward in chunk index (forward-only recurrence).
        for &(s, d) in &edges {
            assert!(s < d, "edge ({s},{d}) must be forward");
        }
    }

    #[test]
    fn co_cluster_merges_connected_components() {
        let (program, data) = recurrence_program();
        let tagged = tag_nest(&program, 0, &data);
        let edges = chunk_dependence_edges(&program, 0, &data, &tagged);
        let merged = co_cluster(&tagged.chunks, &edges);
        // The chain i → i-8 connects everything into one component.
        assert_eq!(merged.len(), 1);
        assert_eq!(
            merged[0].points.len() as u64,
            program.nests[0].num_iterations()
        );
        // Points stay sorted lexicographically.
        for w in merged[0].points.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn co_cluster_keeps_independent_chunks_separate() {
        let mk = |tag: &str| IterationChunk {
            nest: 0,
            tag: cachemap_util::BitSet::from_tag_str(tag),
            points: vec![vec![0]],
        };
        let chunks = vec![mk("10"), mk("01"), mk("11")];
        let merged = co_cluster(&chunks, &[(0, 2)]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn sync_program_runs_without_deadlock_and_orders_clients() {
        let (program, data) = recurrence_program();
        let tagged = tag_nest(&program, 0, &data);
        let edges = chunk_dependence_edges(&program, 0, &data, &tagged);
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        let mut dist = distribute(&tagged.chunks, &tree, &ClusterParams::default());
        enforce_intra_client_order(&mut dist, &edges);
        let mp = lower_with_sync(&dist, &tagged.chunks, &program, &data, &edges);
        // Must contain some synchronization if chunks crossed clients.
        let has_sync = mp
            .per_client
            .iter()
            .flatten()
            .any(|op| matches!(op, ClientOp::Signal { .. }));
        assert!(has_sync, "cross-client dependences must synchronize");
        // And it must simulate to completion (engine would panic on
        // deadlock).
        let sim = Simulator::new(cfg).unwrap();
        let rep = sim.run(&mp).unwrap();
        assert!(rep.exec_time_ns > 0);
    }

    #[test]
    fn enforce_order_moves_sources_first() {
        let mk = |tag: &str, n: usize| IterationChunk {
            nest: 0,
            tag: cachemap_util::BitSet::from_tag_str(tag),
            points: (0..n).map(|i| vec![i as i64]).collect(),
        };
        let chunks = vec![mk("10", 2), mk("01", 2)];
        let mut dist = Distribution {
            per_client: vec![vec![WorkItem::whole(1, 2), WorkItem::whole(0, 2)]],
        };
        // Chunk 0 must precede chunk 1.
        enforce_intra_client_order(&mut dist, &[(0, 1)]);
        let order: Vec<usize> = dist.per_client[0].iter().map(|i| i.chunk).collect();
        assert_eq!(order, vec![0, 1]);
        let _ = chunks;
    }

    #[test]
    fn no_edges_no_sync_ops() {
        let (program, data) = recurrence_program();
        let tagged = tag_nest(&program, 0, &data);
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        let dist = distribute(&tagged.chunks, &tree, &ClusterParams::default());
        let mp = lower_with_sync(&dist, &tagged.chunks, &program, &data, &[]);
        assert!(mp
            .per_client
            .iter()
            .flatten()
            .all(|op| !matches!(op, ClientOp::Signal { .. } | ClientOp::Wait { .. })));
    }
}
