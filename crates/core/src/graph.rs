//! The iteration-chunk similarity graph (Section 4.3, *Initialization*).
//!
//! Nodes are iteration chunks; the weight of edge `(γΛi, γΛj)` is
//! `ω = popcount(Λi ∧ Λj)` — the number of data chunks the two iteration
//! chunks share. A zero weight (zero common bits) means the two chunks
//! share no data and should *not* be mapped to clients with affinity at
//! any storage cache; a large weight means mapping them to
//! cache-sharing clients converts reuse into locality.

use crate::tags::IterationChunk;

/// Dense symmetric similarity graph over iteration chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimilarityGraph {
    n: usize,
    /// Row-major `n × n` weight matrix; diagonal holds the tag popcount.
    weights: Vec<u32>,
}

impl SimilarityGraph {
    /// Builds the graph from the chunks' tags. `O(n² · r/64)`.
    pub fn build(chunks: &[IterationChunk]) -> Self {
        let n = chunks.len();
        let mut weights = vec![0u32; n * n];
        for i in 0..n {
            for j in i..n {
                let w = chunks[i].tag.and_count(&chunks[j].tag);
                weights[i * n + j] = w;
                weights[j * n + i] = w;
            }
        }
        SimilarityGraph { n, weights }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Edge weight `ω(γΛi, γΛj)`.
    pub fn weight(&self, i: usize, j: usize) -> u32 {
        self.weights[i * self.n + j]
    }

    /// Edges with non-zero weight, as `(i, j, w)` with `i < j`.
    pub fn edges(&self) -> Vec<(usize, usize, u32)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let w = self.weight(i, j);
                if w > 0 {
                    out.push((i, j, w));
                }
            }
        }
        out
    }

    /// Edges with weight at least `min_w` (Figure 8 omits weight-1 edges
    /// for legibility; this supports the same filtering).
    pub fn edges_at_least(&self, min_w: u32) -> Vec<(usize, usize, u32)> {
        self.edges()
            .into_iter()
            .filter(|&(_, _, w)| w >= min_w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::IterationChunk;
    use cachemap_util::BitSet;

    fn chunk(tag: &str) -> IterationChunk {
        IterationChunk {
            nest: 0,
            tag: BitSet::from_tag_str(tag),
            points: vec![vec![0]],
        }
    }

    #[test]
    fn weights_are_common_ones() {
        let chunks = vec![chunk("1100"), chunk("0110"), chunk("0001")];
        let g = SimilarityGraph::build(&chunks);
        assert_eq!(g.weight(0, 1), 1);
        assert_eq!(g.weight(0, 2), 0);
        assert_eq!(g.weight(1, 2), 0);
        assert_eq!(g.weight(1, 0), g.weight(0, 1), "symmetric");
        assert_eq!(g.weight(0, 0), 2, "diagonal is tag popcount");
    }

    #[test]
    fn figure8_graph_weights() {
        // Rebuild the Figure 8 example graph and check the highlighted
        // weights: ω(γ1,γ3)=3, ω(γ3,γ5)=3, ω(γ5,γ7)=3, ω(γ1,γ5)=2,
        // ω(γ3,γ7)=2 (same pattern on the even side).
        let (program, data) = crate::tags::tests::figure6_program(4);
        let tagged = crate::tags::tag_nest(&program, 0, &data);
        let g = SimilarityGraph::build(&tagged.chunks);
        // Odd family (indices 0,2,4,6 = γ1,γ3,γ5,γ7).
        assert_eq!(g.weight(0, 2), 3);
        assert_eq!(g.weight(2, 4), 3);
        assert_eq!(g.weight(4, 6), 3);
        assert_eq!(g.weight(0, 4), 2);
        assert_eq!(g.weight(2, 6), 2);
        // Even family (indices 1,3,5,7 = γ2,γ4,γ6,γ8).
        assert_eq!(g.weight(1, 3), 3);
        assert_eq!(g.weight(3, 5), 3);
        assert_eq!(g.weight(5, 7), 3);
        assert_eq!(g.weight(1, 5), 2);
        assert_eq!(g.weight(3, 7), 2);
        // Cross-family pairs share only chunk 0 (weight 1) — these are
        // the edges Figure 8 leaves out for legibility.
        assert_eq!(g.weight(0, 1), 1);
        let strong = g.edges_at_least(2);
        assert_eq!(strong.len(), 10);
    }

    #[test]
    fn empty_graph() {
        let g = SimilarityGraph::build(&[]);
        assert!(g.is_empty());
        assert!(g.edges().is_empty());
    }
}
