//! Pairwise boundary refinement of a distribution (extension).
//!
//! The Figure 5 pipeline is greedy and hierarchical: once the descent
//! has split a cluster, no later stage reconsiders the boundary. This
//! optional pass — in the spirit of Kernighan-Lin graph-partitioning
//! refinement, and a natural "future work" step the paper's conclusion
//! gestures at — revisits each pair of sibling clients under one I/O
//! cache and swaps mis-assigned iteration chunks:
//!
//! an item prefers the sibling when its tag overlaps the sibling's
//! aggregate tag more than its own cluster's (minus itself). Swapping
//! two such items (of comparable size, to preserve the load balance)
//! strictly increases the total intra-client affinity, so the pass
//! terminates.
//!
//! Off by default (`MapperConfig::refine_passes = 0`): the headline
//! reproduction uses the paper's pipeline only. `repro refine` measures
//! what the extension buys.

use crate::cluster::{Distribution, WorkItem};
use crate::tags::IterationChunk;
use cachemap_storage::topology::HierarchyTree;
use cachemap_util::CountVec;

/// Runs up to `passes` refinement sweeps over every sibling pair; stops
/// early when a sweep makes no swap. Returns the number of swaps made.
pub fn refine(
    dist: &mut Distribution,
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    passes: usize,
) -> usize {
    if chunks.is_empty() {
        return 0;
    }
    let r = chunks[0].tag.len();
    let mut total_swaps = 0;
    for _ in 0..passes {
        let mut swapped_this_pass = 0;
        // Sibling pairs under each I/O node.
        let num_io = (0..tree.num_clients())
            .map(|c| tree.io_of_client(c))
            .max()
            .map_or(0, |m| m + 1);
        for io in 0..num_io {
            let group: Vec<usize> = (0..tree.num_clients())
                .filter(|&c| tree.io_of_client(c) == io)
                .collect();
            for ai in 0..group.len() {
                for bi in (ai + 1)..group.len() {
                    swapped_this_pass += refine_pair(dist, chunks, group[ai], group[bi], r);
                }
            }
        }
        total_swaps += swapped_this_pass;
        if swapped_this_pass == 0 {
            break;
        }
    }
    total_swaps
}

/// One greedy sweep over the (a, b) boundary. Returns swaps made.
fn refine_pair(
    dist: &mut Distribution,
    chunks: &[IterationChunk],
    a: usize,
    b: usize,
    r: usize,
) -> usize {
    let mut tag_a = aggregate_tag(&dist.per_client[a], chunks, r);
    let mut tag_b = aggregate_tag(&dist.per_client[b], chunks, r);
    let mut swaps = 0;

    loop {
        // Joint KL gain of swapping item i (from a) with item j (from b):
        //   gain_a(i) + gain_b(j) − 2·ω(i, j)
        // where gain_x(k) = external − internal affinity of item k, and
        // the cross term corrects for i and j sharing data with *each
        // other* (they end up on opposite sides either way).
        let gain_of = |it: &WorkItem, own: &CountVec, other: &CountVec| {
            let t = &chunks[it.chunk].tag;
            let internal = own.dot_bitset(t) as i64 - t.count_ones() as i64;
            let external = other.dot_bitset(t) as i64;
            external - internal
        };

        let mut best: Option<(usize, usize, i64)> = None;
        for (i, ita) in dist.per_client[a].iter().enumerate() {
            let ga = gain_of(ita, &tag_a, &tag_b);
            for (j, itb) in dist.per_client[b].iter().enumerate() {
                // Keep the load balance: sizes must be comparable.
                let (sa, sb) = (ita.len() as i64, itb.len() as i64);
                if (sa - sb).abs() > sa.max(sb) / 2 {
                    continue;
                }
                let gb = gain_of(itb, &tag_b, &tag_a);
                let cross = chunks[ita.chunk].tag.and_count(&chunks[itb.chunk].tag) as i64;
                let joint = ga + gb - 2 * cross;
                match best {
                    Some((_, _, g)) if g >= joint => {}
                    _ => best = Some((i, j, joint)),
                }
            }
        }
        let Some((ia, ib, joint)) = best else { break };
        if joint <= 0 {
            break;
        }

        let item_a = dist.per_client[a].remove(ia);
        let item_b = dist.per_client[b].remove(ib);
        tag_a.sub_bitset(&chunks[item_a.chunk].tag);
        tag_a.add_bitset(&chunks[item_b.chunk].tag);
        tag_b.sub_bitset(&chunks[item_b.chunk].tag);
        tag_b.add_bitset(&chunks[item_a.chunk].tag);
        dist.per_client[a].push(item_b);
        dist.per_client[b].push(item_a);
        swaps += 1;

        // Safety valve: a pathological oscillation cannot occur (each
        // swap strictly increases total affinity), but bound the loop
        // against arithmetic surprises anyway.
        if swaps > dist.per_client[a].len() + dist.per_client[b].len() {
            break;
        }
    }
    swaps
}

fn aggregate_tag(items: &[WorkItem], chunks: &[IterationChunk], r: usize) -> CountVec {
    let mut cv = CountVec::new(r);
    for it in items {
        cv.add_bitset(&chunks[it.chunk].tag);
    }
    cv
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_storage::PlatformConfig;
    use cachemap_util::BitSet;

    fn mk(tag: &str, iters: usize) -> IterationChunk {
        IterationChunk {
            nest: 0,
            tag: BitSet::from_tag_str(tag),
            points: (0..iters).map(|i| vec![i as i64]).collect(),
        }
    }

    fn tiny_tree() -> HierarchyTree {
        HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap()
    }

    #[test]
    fn fixes_a_deliberately_crossed_assignment() {
        // Two tag families; one member of each family starts on the
        // wrong sibling. Refinement must swap them back.
        let chunks = vec![
            mk("11100000", 4), // family A
            mk("11010000", 4), // family A
            mk("00001110", 4), // family B
            mk("00001101", 4), // family B
        ];
        let mut dist = Distribution {
            per_client: vec![
                vec![WorkItem::whole(0, 4), WorkItem::whole(2, 4)], // mixed!
                vec![WorkItem::whole(1, 4), WorkItem::whole(3, 4)], // mixed!
                vec![],
                vec![],
            ],
        };
        let swaps = refine(&mut dist, &chunks, &tiny_tree(), 4);
        assert!(swaps >= 1, "refinement must find the crossed pair");
        let sets: Vec<std::collections::BTreeSet<usize>> = dist
            .per_client
            .iter()
            .map(|v| v.iter().map(|i| i.chunk).collect())
            .collect();
        assert!(
            sets.contains(&[0usize, 1].into_iter().collect())
                && sets.contains(&[2usize, 3].into_iter().collect()),
            "families must be reunited: {sets:?}"
        );
    }

    #[test]
    fn leaves_a_good_assignment_alone() {
        let chunks = vec![mk("1100", 4), mk("1010", 4), mk("0011", 4), mk("0101", 4)];
        let mut dist = Distribution {
            per_client: vec![
                vec![WorkItem::whole(0, 4), WorkItem::whole(1, 4)],
                vec![WorkItem::whole(2, 4), WorkItem::whole(3, 4)],
                vec![],
                vec![],
            ],
        };
        let before = dist.clone();
        let swaps = refine(&mut dist, &chunks, &tiny_tree(), 4);
        assert_eq!(swaps, 0);
        assert_eq!(dist, before);
    }

    #[test]
    fn preserves_the_partition_and_balance() {
        let chunks: Vec<IterationChunk> = (0..12)
            .map(|k| mk(&format!("{:012b}", 1u32 << (k % 12)), 3))
            .collect();
        let mut dist = Distribution {
            per_client: (0..4)
                .map(|c| (0..3).map(|j| WorkItem::whole(3 * c + j, 3)).collect())
                .collect(),
        };
        let total_before = dist.total_iterations();
        let per_before = dist.iterations_per_client();
        refine(&mut dist, &chunks, &tiny_tree(), 3);
        assert_eq!(dist.total_iterations(), total_before);
        // Equal-size swaps keep per-client loads identical here.
        assert_eq!(dist.iterations_per_client(), per_before);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut dist = Distribution {
            per_client: vec![vec![]; 4],
        };
        assert_eq!(refine(&mut dist, &[], &tiny_tree(), 5), 0);
    }
}
