//! Static quality analysis of a distribution — the "two rules" of
//! Section 3, measured.
//!
//! The paper's intuition: (1) iterations that share no data should not
//! be mapped to clients with affinity at some cache, and (2) iterations
//! that do share data should. This module quantifies how well a
//! [`Distribution`] follows those rules *before* simulation:
//!
//! * **replication factor** — across how many level-ℓ cache domains the
//!   average data chunk is spread (rule 2 violations inflate it: the
//!   same chunk must be fetched into several sibling caches);
//! * **footprints** — distinct chunks per client/domain vs. accesses
//!   (rule 1 violations inflate a shared domain's footprint relative to
//!   its members');
//! * **affinity capture** — how much of the total pairwise tag overlap
//!   (the similarity graph's edge mass) falls *inside* cache domains
//!   rather than across them.
//!
//! The harness's `analyze:<app>` diagnostic prints these side by side
//! for every version; EXPERIMENTS.md uses them to explain the simulated
//! outcomes.

use crate::cluster::Distribution;
use crate::tags::IterationChunk;
use cachemap_storage::topology::{CacheLevel, HierarchyTree};
use cachemap_util::{FxHashMap, FxHashSet};

/// Quality metrics of one distribution at one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelAnalysis {
    /// Which level the domains belong to.
    pub level: CacheLevel,
    /// Number of cache domains at this level.
    pub domains: usize,
    /// Mean distinct chunks per domain.
    pub mean_footprint: f64,
    /// Mean number of domains each used chunk appears in (1.0 = every
    /// chunk confined to one domain; higher = replication).
    pub replication_factor: f64,
    /// Fraction of the similarity graph's edge mass captured inside
    /// domains (both endpoints in the same domain), in `[0, 1]`.
    pub affinity_captured: f64,
}

/// Full analysis across the hierarchy's levels (client, I/O, storage).
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionAnalysis {
    /// Per-level metrics, leaf level first.
    pub levels: Vec<LevelAnalysis>,
    /// Total distinct chunks used by the program.
    pub total_chunks_used: usize,
}

/// Analyzes a distribution against the hierarchy.
pub fn analyze(
    dist: &Distribution,
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
) -> DistributionAnalysis {
    // Chunk sets per client.
    let client_sets: Vec<FxHashSet<usize>> = dist
        .per_client
        .iter()
        .map(|items| {
            let mut s = FxHashSet::default();
            for it in items {
                if !it.is_empty() {
                    s.extend(chunks[it.chunk].tag.iter_ones());
                }
            }
            s
        })
        .collect();
    let total_chunks_used = {
        let mut all = FxHashSet::default();
        for s in &client_sets {
            all.extend(s.iter().copied());
        }
        all.len()
    };

    // Pairwise edge mass between clients: ω(a, b) summed over iteration
    // chunk pairs is expensive; the per-client chunk-set overlap is the
    // domain-level equivalent and what replication actually feels.
    let mut levels = Vec::new();
    for level in [CacheLevel::Client, CacheLevel::Io, CacheLevel::Storage] {
        let domains = domains_at(tree, level);
        if domains.is_empty() {
            continue;
        }
        // Union footprint per domain.
        let domain_sets: Vec<FxHashSet<usize>> = domains
            .iter()
            .map(|clients| {
                let mut s = FxHashSet::default();
                for &c in clients {
                    s.extend(client_sets[c].iter().copied());
                }
                s
            })
            .collect();
        let mean_footprint =
            domain_sets.iter().map(|s| s.len() as f64).sum::<f64>() / domain_sets.len() as f64;

        // Replication: in how many domains does each used chunk appear?
        let mut appearances: FxHashMap<usize, u32> = FxHashMap::default();
        for s in &domain_sets {
            for &c in s {
                *appearances.entry(c).or_insert(0) += 1;
            }
        }
        let replication_factor = if appearances.is_empty() {
            0.0
        } else {
            appearances.values().map(|&v| v as f64).sum::<f64>() / appearances.len() as f64
        };

        // Affinity capture: edge mass = Σ over client pairs of
        // |chunks(a) ∩ chunks(b)|; captured = pairs in the same domain.
        let mut total_mass = 0u64;
        let mut captured = 0u64;
        let domain_of: Vec<usize> = {
            let mut v = vec![0usize; client_sets.len()];
            for (d, clients) in domains.iter().enumerate() {
                for &c in clients {
                    v[c] = d;
                }
            }
            v
        };
        for a in 0..client_sets.len() {
            for b in (a + 1)..client_sets.len() {
                let overlap = client_sets[a]
                    .iter()
                    .filter(|c| client_sets[b].contains(c))
                    .count() as u64;
                total_mass += overlap;
                if domain_of[a] == domain_of[b] {
                    captured += overlap;
                }
            }
        }
        let affinity_captured = if total_mass == 0 {
            1.0
        } else {
            captured as f64 / total_mass as f64
        };

        levels.push(LevelAnalysis {
            level,
            domains: domains.len(),
            mean_footprint,
            replication_factor,
            affinity_captured,
        });
    }

    DistributionAnalysis {
        levels,
        total_chunks_used,
    }
}

/// The client groups under each cache domain of `level`.
fn domains_at(tree: &HierarchyTree, level: CacheLevel) -> Vec<Vec<usize>> {
    tree.nodes()
        .iter()
        .filter(|n| n.level == level)
        .map(|n| tree.clients_under(n.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::WorkItem;
    use cachemap_storage::PlatformConfig;
    use cachemap_util::BitSet;

    fn mk(tag: &str) -> IterationChunk {
        IterationChunk {
            nest: 0,
            tag: BitSet::from_tag_str(tag),
            points: vec![vec![0]],
        }
    }

    fn tiny_tree() -> HierarchyTree {
        HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap()
    }

    #[test]
    fn disjoint_perfect_mapping_has_no_replication() {
        // Four chunks with disjoint tags, one per client.
        let chunks = vec![mk("1000"), mk("0100"), mk("0010"), mk("0001")];
        let dist = Distribution {
            per_client: (0..4).map(|c| vec![WorkItem::whole(c, 1)]).collect(),
        };
        let a = analyze(&dist, &chunks, &tiny_tree());
        assert_eq!(a.total_chunks_used, 4);
        for lvl in &a.levels {
            assert!((lvl.replication_factor - 1.0).abs() < 1e-12, "{lvl:?}");
            assert!((lvl.affinity_captured - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shared_chunk_across_io_domains_counts_as_replication() {
        // Clients 0 and 2 (different I/O nodes) share data chunk 0.
        let chunks = vec![mk("1100"), mk("1010")];
        let dist = Distribution {
            per_client: vec![
                vec![WorkItem::whole(0, 1)],
                vec![],
                vec![WorkItem::whole(1, 1)],
                vec![],
            ],
        };
        let a = analyze(&dist, &chunks, &tiny_tree());
        let io = a
            .levels
            .iter()
            .find(|l| l.level == CacheLevel::Io)
            .expect("io level");
        // Chunk 0 appears in both I/O domains; chunks 1, 2, 3 in one.
        assert!(io.replication_factor > 1.0);
        assert!(io.affinity_captured < 1.0, "cross-domain sharing missed");
    }

    #[test]
    fn same_domain_sharing_is_captured() {
        // Clients 0 and 1 share I/O node 0 and the shared chunk.
        let chunks = vec![mk("1100"), mk("1010")];
        let dist = Distribution {
            per_client: vec![
                vec![WorkItem::whole(0, 1)],
                vec![WorkItem::whole(1, 1)],
                vec![],
                vec![],
            ],
        };
        let a = analyze(&dist, &chunks, &tiny_tree());
        let io = a.levels.iter().find(|l| l.level == CacheLevel::Io).unwrap();
        assert!((io.affinity_captured - 1.0).abs() < 1e-12);
        let client = a
            .levels
            .iter()
            .find(|l| l.level == CacheLevel::Client)
            .unwrap();
        // At the private level the shared chunk necessarily replicates.
        assert!(client.replication_factor > 1.0);
    }

    #[test]
    fn inter_mapping_captures_more_affinity_than_block_mapping() {
        // The Figure 6 example: tag families straddle a block partition
        // but align with clustering.
        let (program, data) = crate::tags::tests::figure6_program(4);
        let tagged = crate::tags::tag_nest(&program, 0, &data);
        let tree = tiny_tree();

        // Block partition: chunks 0-1 → client 0, 2-3 → client 1, …
        let block = Distribution {
            per_client: (0..4)
                .map(|c| vec![WorkItem::whole(2 * c, 4), WorkItem::whole(2 * c + 1, 4)])
                .collect(),
        };
        let clustered = crate::cluster::distribute(
            &tagged.chunks,
            &tree,
            &crate::cluster::ClusterParams::default(),
        );
        let a_block = analyze(&block, &tagged.chunks, &tree);
        let a_clustered = analyze(&clustered, &tagged.chunks, &tree);
        let io_block = a_block
            .levels
            .iter()
            .find(|l| l.level == CacheLevel::Io)
            .unwrap();
        let io_clust = a_clustered
            .levels
            .iter()
            .find(|l| l.level == CacheLevel::Io)
            .unwrap();
        assert!(
            io_clust.affinity_captured >= io_block.affinity_captured,
            "clustering must not capture less affinity: {} vs {}",
            io_clust.affinity_captured,
            io_block.affinity_captured
        );
        assert!(io_clust.replication_factor <= io_block.replication_factor);
    }
}
