//! Cache-hierarchy-conscious iteration chunk scheduling (Figure 15).
//!
//! The distribution algorithm decides *which* chunks a client executes
//! but not in what order. This enhancement (Section 5.4) reorders each
//! client's chunks to exploit chunk-level data reuse in two dimensions:
//!
//! * **vertical** — consecutive chunks on the *same* client should reuse
//!   each other's data (own L1 locality), weighted by `β`;
//! * **horizontal** — chunks scheduled in the same round on *adjacent*
//!   clients of one I/O-cache group should reuse each other's data
//!   (shared L2 locality), weighted by `α`.
//!
//! Scheduling proceeds round-robin over the clients of each I/O-node
//! group: the first client's first pick is the chunk touching the fewest
//! data chunks; an empty-schedule client picks the chunk maximizing
//! `α·(Λa • Λx)` against the last chunk of its left neighbor; afterwards
//! each visit picks chunks maximizing `α·(Λa • Λx) + β·(Λa • Λy)` (left
//! neighbor and own last), scheduling until the client's iteration count
//! catches up with its predecessor's — the circular iteration-count
//! balancing the paper describes.

use crate::cluster::{Distribution, WorkItem};
use crate::tags::IterationChunk;
use cachemap_storage::topology::HierarchyTree;

/// How chunk-to-chunk reuse affinity is measured when scheduling.
///
/// The paper's prose first motivates **Hamming distance** ("scheduling
/// the iteration chunks such that the tags … have the least possible
/// Hamming Distance") while the Figure 15 algorithm box maximizes **dot
/// products**; both are provided, with the algorithm box's choice as the
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseMetric {
    /// Maximize `Λa • Λx` (Figure 15). The default.
    DotProduct,
    /// Minimize the Hamming distance between tags (§5.4 prose).
    HammingDistance,
}

/// Scheduling weights (the paper's α and β; both 0.5 in its experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleParams {
    /// Weight of the horizontal (shared I/O cache) reuse term.
    pub alpha: f64,
    /// Weight of the vertical (own cache) reuse term.
    pub beta: f64,
    /// Affinity measure between tags.
    pub metric: ReuseMetric,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        ScheduleParams {
            alpha: 0.5,
            beta: 0.5,
            metric: ReuseMetric::DotProduct,
        }
    }
}

/// Reorders every client's items per Figure 15 and returns the new
/// distribution (same items per client, scheduled order).
pub fn schedule(
    dist: &Distribution,
    chunks: &[IterationChunk],
    tree: &HierarchyTree,
    params: &ScheduleParams,
) -> Distribution {
    let mut out: Vec<Vec<WorkItem>> = vec![Vec::new(); dist.per_client.len()];

    // One group per I/O node ("the algorithm starts out by considering
    // each level in the storage cache hierarchy individually; an
    // iteration chunk schedule is computed for each client node
    // considering the I/O nodes").
    let num_io = {
        // Number of distinct I/O nodes = highest io index + 1.
        (0..tree.num_clients())
            .map(|c| tree.io_of_client(c))
            .max()
            .map_or(0, |m| m + 1)
    };
    for io in 0..num_io {
        let group: Vec<usize> = (0..tree.num_clients())
            .filter(|&c| tree.io_of_client(c) == io)
            .collect();
        schedule_group(&group, dist, chunks, params, &mut out);
    }
    Distribution { per_client: out }
}

/// Schedules the clients of one I/O-cache group.
fn schedule_group(
    group: &[usize],
    dist: &Distribution,
    chunks: &[IterationChunk],
    params: &ScheduleParams,
    out: &mut [Vec<WorkItem>],
) {
    let n = group.len();
    let mut remaining: Vec<Vec<WorkItem>> =
        group.iter().map(|&c| dist.per_client[c].clone()).collect();
    let mut counts: Vec<u64> = vec![0; n];

    let tag_of = |item: &WorkItem| &chunks[item.chunk].tag;
    // Affinity score — higher is always better: dot product directly,
    // Hamming distance negated.
    let dot = |a: &WorkItem, b: &WorkItem| match params.metric {
        ReuseMetric::DotProduct => tag_of(a).and_count(tag_of(b)) as f64,
        ReuseMetric::HammingDistance => -(tag_of(a).hamming(tag_of(b)) as f64),
    };

    while remaining.iter().any(|r| !r.is_empty()) {
        for pos in 0..n {
            if remaining[pos].is_empty() {
                continue;
            }
            let client = group[pos];
            let left_pos = (pos + n - 1) % n;
            let left_client = group[left_pos];
            // Target for circular iteration-count balancing: the
            // predecessor in group order (the last client for position 0).
            let target = counts[left_pos];

            let mut scheduled_this_visit = 0usize;
            loop {
                if remaining[pos].is_empty() {
                    break;
                }
                // Pick the next item per the Figure 15 case analysis.
                let own_last = out[client].last().copied();
                let left_last = out[left_client].last().copied();
                let pick = match (own_last, left_last) {
                    (None, None) => {
                        // First client, first chunk: least number of "1"
                        // bits (fewest data chunks touched).
                        argmin_by(&remaining[pos], |it| tag_of(it).count_ones() as u64)
                    }
                    (None, Some(lx)) => {
                        // Empty own schedule: follow the left neighbor.
                        argmax_by_f64(&remaining[pos], |it| params.alpha * dot(it, &lx))
                    }
                    (Some(ly), None) => {
                        argmax_by_f64(&remaining[pos], |it| params.beta * dot(it, &ly))
                    }
                    (Some(ly), Some(lx)) => argmax_by_f64(&remaining[pos], |it| {
                        params.alpha * dot(it, &lx) + params.beta * dot(it, &ly)
                    }),
                };
                let item = remaining[pos].remove(pick);
                counts[pos] += item.len() as u64;
                out[client].push(item);
                scheduled_this_visit += 1;

                // Keep scheduling while behind the predecessor; the
                // at-least-one-per-visit rule (already satisfied here)
                // guarantees every round makes progress.
                if counts[pos] >= target {
                    break;
                }
            }
            debug_assert!(scheduled_this_visit >= 1);
        }
    }
}

/// Index of the item minimizing `key` (ties → lowest chunk index, then
/// lowest position).
fn argmin_by(items: &[WorkItem], key: impl Fn(&WorkItem) -> u64) -> usize {
    // Invariant: callers only invoke this on non-empty item lists.
    debug_assert!(!items.is_empty(), "non-empty item list");
    items
        .iter()
        .enumerate()
        .min_by_key(|(i, it)| (key(it), it.chunk, *i))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Index of the item maximizing `key` (ties → lowest chunk index, then
/// lowest position). Uses total ordering on finite f64 keys.
fn argmax_by_f64(items: &[WorkItem], key: impl Fn(&WorkItem) -> f64) -> usize {
    let mut best = 0usize;
    let mut best_key = f64::NEG_INFINITY;
    for (i, it) in items.iter().enumerate() {
        let k = key(it);
        if k > best_key || (k == best_key && (it.chunk, i) < (items[best].chunk, best)) {
            best = i;
            best_key = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{distribute, ClusterParams};
    use crate::tags::tag_nest;
    use cachemap_storage::PlatformConfig;

    fn figure_example() -> (Vec<IterationChunk>, HierarchyTree, Distribution) {
        let (program, data) = crate::tags::tests::figure6_program(4);
        let tagged = tag_nest(&program, 0, &data);
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
        let dist = distribute(&tagged.chunks, &tree, &ClusterParams::default());
        (tagged.chunks, tree, dist)
    }

    #[test]
    fn figure17_schedule_reproduced() {
        // Final schedule of Figure 17: each client executes its family
        // pair in ascending order — {γ2,γ4} as (γ2, γ4), {γ6,γ8} as
        // (γ6, γ8), {γ1,γ3} as (γ1, γ3), {γ5,γ7} as (γ5, γ7).
        let (chunks, tree, dist) = figure_example();
        let sched = schedule(&dist, &chunks, &tree, &ScheduleParams::default());
        let orders: Vec<Vec<usize>> = sched
            .per_client
            .iter()
            .map(|items| items.iter().map(|i| i.chunk).collect())
            .collect();
        // Chunk indices: γk has index k-1. Figure 17 orders each family
        // pair ascending: (γ2,γ4), (γ6,γ8), (γ1,γ3), (γ5,γ7).
        let expected_orders = [vec![1, 3], vec![5, 7], vec![0, 2], vec![4, 6]];
        for want in &expected_orders {
            assert!(
                orders.contains(want),
                "expected order {want:?} not among {orders:?}"
            );
        }
    }

    #[test]
    fn schedule_preserves_items() {
        let (chunks, tree, dist) = figure_example();
        let sched = schedule(&dist, &chunks, &tree, &ScheduleParams::default());
        for c in 0..4 {
            let mut a: Vec<WorkItem> = dist.per_client[c].clone();
            let mut b: Vec<WorkItem> = sched.per_client[c].clone();
            a.sort_by_key(|i| (i.chunk, i.start));
            b.sort_by_key(|i| (i.chunk, i.start));
            assert_eq!(a, b, "client {c} must keep exactly its items");
        }
        assert_eq!(sched.total_iterations(), dist.total_iterations());
    }

    #[test]
    fn first_pick_is_least_populated_tag() {
        let (chunks, tree, dist) = figure_example();
        let sched = schedule(&dist, &chunks, &tree, &ScheduleParams::default());
        // Whichever client holds {γ1, γ3} must start with γ1 (popcount 3
        // beats γ3's 4) — it is the first client of its group in every
        // symmetric assignment.
        let holder = sched
            .per_client
            .iter()
            .find(|items| items.iter().any(|i| i.chunk == 0))
            .expect("some client holds γ1");
        assert_eq!(holder[0].chunk, 0, "γ1 must be scheduled first");
    }

    #[test]
    fn alpha_beta_extremes_still_schedule_everything() {
        let (chunks, tree, dist) = figure_example();
        for (alpha, beta) in [(1.0, 0.0), (0.0, 1.0), (0.0, 0.0)] {
            let sched = schedule(
                &dist,
                &chunks,
                &tree,
                &ScheduleParams {
                    alpha,
                    beta,
                    ..Default::default()
                },
            );
            assert_eq!(sched.total_iterations(), 32, "α={alpha} β={beta}");
        }
    }

    #[test]
    fn handles_unequal_client_loads() {
        // Client with many items vs client with one: circular balancing
        // must still drain everything.
        let mk = |tag: &str, n: usize| IterationChunk {
            nest: 0,
            tag: cachemap_util::BitSet::from_tag_str(tag),
            points: (0..n).map(|i| vec![i as i64]).collect(),
        };
        let chunks = vec![mk("1100", 4), mk("0110", 4), mk("0011", 4), mk("1000", 50)];
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
        let dist = Distribution {
            per_client: vec![
                vec![
                    WorkItem::whole(0, 4),
                    WorkItem::whole(1, 4),
                    WorkItem::whole(2, 4),
                ],
                vec![WorkItem::whole(3, 50)],
                vec![],
                vec![],
            ],
        };
        let sched = schedule(&dist, &chunks, &tree, &ScheduleParams::default());
        assert_eq!(sched.total_iterations(), 62);
        assert_eq!(sched.per_client[0].len(), 3);
        assert_eq!(sched.per_client[1].len(), 1);
        assert!(sched.per_client[2].is_empty());
    }

    #[test]
    fn empty_distribution_schedules_empty() {
        let tree = HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap();
        let dist = Distribution {
            per_client: vec![vec![]; 4],
        };
        let sched = schedule(&dist, &[], &tree, &ScheduleParams::default());
        assert!(sched.per_client.iter().all(Vec::is_empty));
    }
}
