//! Online resilience supervisor: epoch loop, live detection, remap.
//!
//! This is the mapping-side half of the resilience layer whose
//! storage-side primitives live in `cachemap_storage::supervisor`. The
//! [`run_online`] loop executes a mapped distribution as a sequence of
//! **epochs**:
//!
//! ```text
//!            ┌────────────────────────────────────────────────┐
//!            ▼                                                │
//!   slice next epoch ──► lower ──► run_epoch ──► checkpoint   │
//!   (per-client quota)             (carried      (dirty       │
//!            ▲                      clocks)       manifest)   │
//!            │                                        │       │
//!            │                                     detect     │
//!            │                                        │       │
//!            │          no verdicts ─────────────────┤────────┘
//!            │                                        │
//!            └── remap_incremental ◄── Down verdicts ─┘
//!                (orphans → surviving clusters)
//! ```
//!
//! Detection is **oracle-free**: it sees only the epoch's
//! [`cachemap_obs::EngineObs`] — per-node hit/miss/queue series and
//! client-side distress events (failovers, missed deadlines) — never the
//! `FaultPlan`. When an I/O node is declared down, every client homed on
//! it is treated as failed and the *remaining* (not yet executed) work is
//! redistributed with [`remap_incremental`], which grafts the orphaned
//! items onto the surviving clusters by aggregate-tag affinity instead of
//! re-clustering from scratch. Completed epochs are never re-executed:
//! the checkpoint records their progress, and dirty lines lost inside the
//! crash epoch are replayed from storage by the engine on first re-use.

use std::collections::BTreeSet;
use std::fmt;

use crate::cluster::{
    distribute, remap_incremental, ClusterParams, Distribution, RemapError, WorkItem,
};
use crate::codegen::lower_distribution;
use crate::schedule::{self, ScheduleParams};
use crate::tags::{tag_nests, IterationChunk};
use cachemap_obs::Recorder;
use cachemap_polyhedral::{DataSpace, Program};
use cachemap_storage::supervisor::{detect, Verdict};
use cachemap_storage::{
    CacheSnapshot, Checkpoint, ClientOp, Detection, DetectorConfig, EpochOptions, HierarchyTree,
    RequestPolicy, SimError, SimReport, Simulator,
};

/// Supervisor knobs.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Number of epochs the run is sliced into (detection opportunities).
    /// Must be at least 1. Clean cache residency is carried across
    /// boundaries (only dirty lines are flushed), so extra epochs cost
    /// checkpoint flushes, not full cache refills.
    pub epochs: usize,
    /// Recorder bucket width for the per-epoch observations, ns.
    pub bucket_ns: u64,
    /// Request-level robustness policy applied inside every epoch
    /// (deadlines feed the detector; disabled = failovers only).
    pub policy: RequestPolicy,
    /// Failure-detection thresholds.
    pub detector: DetectorConfig,
    /// Clustering parameters reused by the incremental remap (the
    /// balance threshold bounds how much load a survivor may absorb).
    pub cluster: ClusterParams,
    /// Gate remaps behind the observed-rate cost model (`true`): on a
    /// Down verdict the supervisor predicts the makespan of both
    /// keeping the orphans limping and shifting them, and picks the
    /// cheaper. With `false` every Down verdict remaps unconditionally.
    pub remap_gate: bool,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            epochs: 8,
            bucket_ns: 50_000,
            policy: RequestPolicy::default(),
            detector: DetectorConfig::default(),
            cluster: ClusterParams::default(),
            remap_gate: true,
        }
    }
}

/// A detection stamped with the epoch whose observations produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineDetection {
    /// Epoch index (0-based) at whose boundary the verdict was reached.
    pub epoch: usize,
    /// The detector's conclusion.
    pub detection: Detection,
}

/// Result of a supervised online run.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Final simulated time: the latest client clock after the last
    /// epoch (absolute — epochs carry clocks forward).
    pub exec_time_ns: u64,
    /// Epochs actually executed (≤ `OnlineConfig::epochs`).
    pub epochs_run: usize,
    /// Incremental remaps performed.
    pub remaps: usize,
    /// Down verdicts where the cost gate predicted the remap would
    /// lengthen the critical path and kept the current assignment
    /// (the orphaned clients keep limping on the failover path).
    pub remaps_declined: usize,
    /// All verdicts, in epoch order.
    pub detections: Vec<OnlineDetection>,
    /// Progress snapshot per epoch boundary.
    pub checkpoints: Vec<Checkpoint>,
    /// The slice of work executed in each epoch. Their union is the
    /// supervisor's coverage record: the chaos harness checks it equals
    /// the initial distribution exactly (every iteration exactly once).
    pub executed: Vec<Distribution>,
    /// Per-epoch engine reports.
    pub reports: Vec<SimReport>,
    /// Clients declared failed (homed on a down I/O node), sorted.
    pub failed_clients: Vec<usize>,
}

impl OnlineOutcome {
    /// Final simulated time in milliseconds.
    pub fn exec_time_ms(&self) -> f64 {
        self.exec_time_ns as f64 / 1e6
    }

    /// Simulated detection latency relative to an injection instant the
    /// *caller* knows from its fault plan: time from `injected_at_ns` to
    /// the first `Down` verdict. `None` when nothing was detected. The
    /// supervisor itself never sees the injection time — this is for
    /// experiments grading the detector against ground truth.
    pub fn detection_latency_ns(&self, injected_at_ns: u64) -> Option<u64> {
        self.detections
            .iter()
            .find(|d| d.detection.verdict == Verdict::Down)
            .map(|d| d.detection.detected_at_ns.saturating_sub(injected_at_ns))
    }

    /// Multiset of executed (chunk, iteration) coverage counts summed
    /// over all epochs, as `(chunk, iter) → times executed`.
    pub fn coverage(&self) -> std::collections::BTreeMap<(usize, usize), u64> {
        let mut cov = std::collections::BTreeMap::new();
        for dist in &self.executed {
            for items in &dist.per_client {
                for it in items {
                    for i in it.start..it.end {
                        *cov.entry((it.chunk, i)).or_insert(0u64) += 1;
                    }
                }
            }
        }
        cov
    }
}

/// Errors from [`run_online`].
#[derive(Debug)]
pub enum OnlineError {
    /// The engine failed.
    Sim(SimError),
    /// The incremental remap failed (e.g. every client is down).
    Remap(RemapError),
    /// `OnlineConfig::epochs` was zero.
    NoEpochs,
    /// The distribution's client count does not match the platform.
    ClientCountMismatch {
        /// Clients in the distribution.
        given: usize,
        /// Clients in the platform topology.
        platform: usize,
    },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Sim(e) => write!(f, "engine error: {e}"),
            OnlineError::Remap(e) => write!(f, "incremental remap failed: {e}"),
            OnlineError::NoEpochs => write!(f, "online supervisor needs at least one epoch"),
            OnlineError::ClientCountMismatch { given, platform } => write!(
                f,
                "distribution has {given} clients but the platform has {platform}"
            ),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<SimError> for OnlineError {
    fn from(e: SimError) -> Self {
        OnlineError::Sim(e)
    }
}

impl From<RemapError> for OnlineError {
    fn from(e: RemapError) -> Self {
        OnlineError::Remap(e)
    }
}

/// Builds the initial plan artifacts the supervisor needs — the joint
/// iteration-chunk list over all nests plus the scheduled distribution.
/// This is the §4.2–§5.4 pipeline without the lowering step, exposed so
/// the online loop can re-slice and re-lower the distribution epoch by
/// epoch.
pub fn plan_joint(
    program: &Program,
    data: &DataSpace,
    tree: &HierarchyTree,
    cluster: &ClusterParams,
    sched: &ScheduleParams,
) -> (Vec<IterationChunk>, Distribution) {
    let all: Vec<usize> = (0..program.nests.len()).collect();
    let (chunks, _) = tag_nests(program, &all, data);
    let dist = distribute(&chunks, tree, cluster);
    let dist = schedule::schedule(&dist, &chunks, tree, sched);
    (chunks, dist)
}

/// Set of data chunks a distribution writes when executed (used by the
/// chaos harness to check that a recovered run produces the same output
/// set as the fault-free run).
pub fn written_chunks(
    dist: &Distribution,
    chunks: &[IterationChunk],
    program: &Program,
    data: &DataSpace,
) -> BTreeSet<usize> {
    let prog = lower_distribution(dist, chunks, program, data);
    let mut out = BTreeSet::new();
    for ops in &prog.per_client {
        for op in ops {
            if let ClientOp::Access { chunk, write: true } = op {
                out.insert(*chunk);
            }
        }
    }
    out
}

/// Splits off each client's next epoch's worth of work: a per-client
/// quota of `ceil(remaining / epochs_left)` iterations, taken from the
/// front of the client's item list (splitting the last item mid-chunk
/// when the quota lands inside it). `remaining` is left holding the
/// untaken suffix.
fn take_epoch_slice(remaining: &mut Distribution, epochs_left: usize) -> Distribution {
    let mut slice: Vec<Vec<WorkItem>> = Vec::with_capacity(remaining.per_client.len());
    for items in &mut remaining.per_client {
        let total: usize = items.iter().map(WorkItem::len).sum();
        let quota = total.div_ceil(epochs_left);
        let mut taken: Vec<WorkItem> = Vec::new();
        let mut got = 0usize;
        let mut rest: Vec<WorkItem> = Vec::new();
        for it in items.drain(..) {
            if got >= quota {
                rest.push(it);
                continue;
            }
            let need = quota - got;
            if it.len() <= need {
                got += it.len();
                taken.push(it);
            } else {
                taken.push(WorkItem {
                    chunk: it.chunk,
                    start: it.start,
                    end: it.start + need,
                });
                rest.push(WorkItem {
                    chunk: it.chunk,
                    start: it.start + need,
                    end: it.end,
                });
                got = quota;
            }
        }
        *items = rest;
        slice.push(taken);
    }
    Distribution { per_client: slice }
}

/// Predicted makespan of running `dist` from the given per-client
/// clocks at the given per-iteration rates: the cost model behind the
/// remap gate. It deliberately ignores cache effects — it only has to
/// rank "keep limping" against "shift the orphans", both predicted with
/// the same model.
fn predicted_finish_ns(dist: &Distribution, clocks: &[u64], rate_ns: &[f64]) -> f64 {
    dist.per_client
        .iter()
        .enumerate()
        .map(|(c, items)| {
            let iters: usize = items.iter().map(WorkItem::len).sum();
            clocks[c] as f64 + iters as f64 * rate_ns[c]
        })
        .fold(0.0, f64::max)
}

/// Dirty-line manifest of one epoch's lowered program: sorted,
/// deduplicated chunk ids written during the epoch.
fn dirty_manifest(prog: &cachemap_storage::MappedProgram) -> Vec<u64> {
    let mut set = BTreeSet::new();
    for ops in &prog.per_client {
        for op in ops {
            if let ClientOp::Access { chunk, write: true } = op {
                set.insert(*chunk as u64);
            }
        }
    }
    set.into_iter().collect()
}

/// Runs `initial` under the online supervisor: epoch slicing, oracle-free
/// failure detection at epoch boundaries, incremental live remapping of
/// the remaining work, and checkpointed progress.
///
/// The caller provides the plan artifacts (`chunks` + `initial`, e.g.
/// from [`plan_joint`]) rather than a lowered program, because the
/// supervisor needs to re-slice and re-lower the distribution as the
/// run evolves.
pub fn run_online(
    sim: &Simulator,
    program: &Program,
    data: &DataSpace,
    chunks: &[IterationChunk],
    initial: &Distribution,
    cfg: &OnlineConfig,
) -> Result<OnlineOutcome, OnlineError> {
    if cfg.epochs == 0 {
        return Err(OnlineError::NoEpochs);
    }
    let tree = sim.tree();
    let n = tree.num_clients();
    if initial.per_client.len() != n {
        return Err(OnlineError::ClientCountMismatch {
            given: initial.per_client.len(),
            platform: n,
        });
    }
    let num_io = (0..n)
        .map(|c| tree.io_of_client(c))
        .max()
        .map_or(0, |m| m + 1);

    let mut remaining = initial.clone();
    let mut clocks: Option<Vec<u64>> = None;
    let mut caches: Option<CacheSnapshot> = None;
    let mut known_down = vec![false; num_io];
    let mut failed_clients: Vec<usize> = Vec::new();
    let mut out = OnlineOutcome {
        exec_time_ns: 0,
        epochs_run: 0,
        remaps: 0,
        remaps_declined: 0,
        detections: Vec::new(),
        checkpoints: Vec::new(),
        executed: Vec::new(),
        reports: Vec::new(),
        failed_clients: Vec::new(),
    };

    let mut executed_iters = vec![0u64; n];
    let mut epoch = 0usize;
    while remaining.total_iterations() > 0 {
        let epochs_left = cfg.epochs.saturating_sub(epoch).max(1);
        let slice = take_epoch_slice(&mut remaining, epochs_left);
        let epoch_start: Vec<u64> = clocks.clone().unwrap_or_else(|| vec![0; n]);
        let prog = lower_distribution(&slice, chunks, program, data);
        let mut rec = Recorder::enabled(cfg.bucket_ns);
        let (report, snapshot) = sim.run_epoch(
            &prog,
            &mut rec,
            &EpochOptions {
                policy: cfg.policy,
                start_clocks: clocks.clone(),
                resume_caches: caches.take(),
            },
        )?;
        // Carry clean residency into the next epoch: the checkpoint
        // flushes dirty lines but does not evict them, and crash events
        // re-fire at the epoch start, draining seeded state on nodes
        // that are already dead.
        caches = Some(snapshot);
        let boundary = report
            .per_client_finish_ns
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        clocks = Some(report.per_client_finish_ns.clone());
        out.checkpoints.push(Checkpoint {
            epoch,
            at_ns: boundary,
            completed_accesses: prog.total_accesses(),
            dirty_manifest: dirty_manifest(&prog),
            lost_dirty_chunks: report.faults.lost_dirty_chunks,
        });

        let obs = rec.finish().expect("recorder was enabled");
        let verdicts = detect(&obs, tree, boundary, &known_down, &cfg.detector);
        let mut newly_failed: Vec<usize> = Vec::new();
        for d in verdicts {
            if d.verdict == Verdict::Down {
                known_down[d.io] = true;
                newly_failed.extend((0..n).filter(|&c| tree.io_of_client(c) == d.io));
            }
            out.detections.push(OnlineDetection {
                epoch,
                detection: d,
            });
        }

        let slice_iters = slice.iterations_per_client();
        for c in 0..n {
            executed_iters[c] += slice_iters[c];
        }
        out.exec_time_ns = out.exec_time_ns.max(boundary);
        out.executed.push(slice);
        out.reports.push(report.clone());
        epoch += 1;

        if !newly_failed.is_empty() {
            failed_clients.extend(newly_failed.iter().copied());
            failed_clients.sort_unstable();
            failed_clients.dedup();
            // Only remap while survivors exist and work remains; a
            // full wipe-out just rides the engine's failover paths.
            if remaining.total_iterations() > 0 && failed_clients.len() < n {
                // Cost gate, from observations only: per-iteration rates
                // from each client's own history (global mean for clients
                // that have not run yet), except that a newly failed
                // client's future is predicted from the crash epoch
                // alone — that epoch is the only sample of its failover
                // path. Remap only when shifting the orphans is predicted
                // to shorten the makespan; a crashed group that is off
                // the critical path is cheaper left limping than piled
                // onto the survivors.
                let total_ns: u64 = report.per_client_finish_ns.iter().sum();
                let total_iters: u64 = executed_iters.iter().sum();
                let mean_rate = total_ns as f64 / total_iters.max(1) as f64;
                let rate: Vec<f64> = (0..n)
                    .map(|c| {
                        if executed_iters[c] > 0 {
                            report.per_client_finish_ns[c] as f64 / executed_iters[c] as f64
                        } else {
                            mean_rate
                        }
                    })
                    .collect();
                let mut limp_rate = rate.clone();
                for &c in &newly_failed {
                    if slice_iters[c] > 0 {
                        // The crash epoch's healthy prefix dilutes the
                        // sample, so this still underestimates the limp.
                        limp_rate[c] = (report.per_client_finish_ns[c] - epoch_start[c]) as f64
                            / slice_iters[c] as f64;
                    }
                }
                let keep =
                    predicted_finish_ns(&remaining, &report.per_client_finish_ns, &limp_rate);
                let candidate =
                    remap_incremental(&remaining, chunks, tree, &failed_clients, &cfg.cluster)?;
                let shift = predicted_finish_ns(&candidate, &report.per_client_finish_ns, &rate);
                if !cfg.remap_gate || shift < keep {
                    remaining = candidate;
                    out.remaps += 1;
                } else {
                    out.remaps_declined += 1;
                }
            }
        }
    }

    out.epochs_run = epoch;
    out.failed_clients = failed_clients;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_storage::{FaultEvent, FaultPlan, PlatformConfig};

    fn figure6_plan() -> (Program, DataSpace) {
        crate::tags::tests::figure6_program(16)
    }

    fn tiny_sim(plan: Option<FaultPlan>) -> Simulator {
        let cfg = PlatformConfig::tiny().with_cache_chunks(2, 8, 16);
        let sim = Simulator::new(cfg).unwrap();
        match plan {
            Some(p) => sim.with_fault_plan(p).unwrap(),
            None => sim,
        }
    }

    /// Test knobs: the figure-6 workload at tiny scale runs hot, so the
    /// degradation threshold must sit above its healthy queue waits —
    /// thresholds are workload-relative, Down detection is not.
    fn test_cfg(epochs: usize) -> OnlineConfig {
        OnlineConfig {
            epochs,
            detector: DetectorConfig {
                degraded_queue_ns: 10_000_000,
                ..DetectorConfig::default()
            },
            ..OnlineConfig::default()
        }
    }

    fn artifacts(sim: &Simulator) -> (Program, DataSpace, Vec<IterationChunk>, Distribution) {
        let (program, data) = figure6_plan();
        let (chunks, dist) = plan_joint(
            &program,
            &data,
            sim.tree(),
            &ClusterParams::default(),
            &ScheduleParams::default(),
        );
        (program, data, chunks, dist)
    }

    #[test]
    fn clean_online_run_covers_everything_once() {
        let sim = tiny_sim(None);
        let (program, data, chunks, dist) = artifacts(&sim);
        let cfg = test_cfg(4);
        let out = run_online(&sim, &program, &data, &chunks, &dist, &cfg).unwrap();
        assert_eq!(out.epochs_run, 4);
        assert_eq!(out.remaps, 0);
        assert!(out.detections.is_empty(), "{:?}", out.detections);
        assert!(out.failed_clients.is_empty());
        // Every (chunk, iteration) of the initial plan exactly once.
        let cov = out.coverage();
        let mut want = std::collections::BTreeMap::new();
        for items in &dist.per_client {
            for it in items {
                for i in it.start..it.end {
                    *want.entry((it.chunk, i)).or_insert(0u64) += 1;
                }
            }
        }
        assert_eq!(cov, want);
        assert!(cov.values().all(|&n| n == 1));
        // Checkpoints are monotone in simulated time.
        for w in out.checkpoints.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
    }

    #[test]
    fn online_run_detects_and_remaps_without_oracle() {
        // Crash I/O node 0 early; the supervisor must notice from the
        // epoch observations, remap, and still cover everything once.
        let plan = FaultPlan::new().with_event(FaultEvent::IoNodeCrash {
            io: 0,
            at_ns: 50_000,
        });
        let sim = tiny_sim(Some(plan));
        let (program, data, chunks, dist) = artifacts(&sim);
        // Gate off: this test exercises the remap mechanics, not the
        // cost model's judgement about whether remapping pays here.
        let cfg = OnlineConfig {
            remap_gate: false,
            ..test_cfg(6)
        };
        let out = run_online(&sim, &program, &data, &chunks, &dist, &cfg).unwrap();
        let downs: Vec<_> = out
            .detections
            .iter()
            .filter(|d| d.detection.verdict == Verdict::Down)
            .collect();
        assert_eq!(downs.len(), 1, "exactly one Down verdict: {downs:?}");
        assert_eq!(downs[0].detection.io, 0);
        assert!(out.remaps >= 1);
        // Clients homed on I/O node 0 are declared failed.
        let tree = sim.tree();
        let expect: Vec<usize> = (0..tree.num_clients())
            .filter(|&c| tree.io_of_client(c) == 0)
            .collect();
        assert_eq!(out.failed_clients, expect);
        // After the remap the failed clients receive no further work.
        let remap_epoch = downs[0].epoch;
        for dist in &out.executed[remap_epoch + 1..] {
            for &c in &expect {
                assert!(dist.per_client[c].is_empty());
            }
        }
        // Coverage is still exactly-once.
        assert!(out.coverage().values().all(|&n| n == 1));
        assert_eq!(
            out.coverage().len() as u64,
            dist.total_iterations(),
            "no iteration lost in the handover"
        );
        // Detection latency is measurable against the injection time.
        let lat = out.detection_latency_ns(50_000).unwrap();
        assert!(lat > 0);
    }

    #[test]
    fn epoch_slicing_is_exact() {
        let mut remaining = Distribution {
            per_client: vec![
                vec![WorkItem::whole(0, 10)],
                vec![WorkItem::whole(1, 3), WorkItem::whole(2, 3)],
                vec![],
            ],
        };
        let slice = take_epoch_slice(&mut remaining, 3);
        // ceil(10/3)=4, ceil(6/3)=2, 0.
        assert_eq!(slice.iterations_per_client(), vec![4, 2, 0]);
        assert_eq!(remaining.iterations_per_client(), vec![6, 4, 0]);
        // Mid-item split keeps the ranges adjacent.
        assert_eq!(
            slice.per_client[0],
            vec![WorkItem {
                chunk: 0,
                start: 0,
                end: 4
            }]
        );
        assert_eq!(
            remaining.per_client[0],
            vec![WorkItem {
                chunk: 0,
                start: 4,
                end: 10
            }]
        );
        // Last epoch takes everything.
        let rest = take_epoch_slice(&mut remaining, 1);
        assert_eq!(rest.iterations_per_client(), vec![6, 4, 0]);
        assert_eq!(remaining.total_iterations(), 0);
    }

    #[test]
    fn predicted_finish_takes_the_critical_path() {
        let dist = Distribution {
            per_client: vec![
                vec![WorkItem::whole(0, 10)],
                vec![WorkItem::whole(1, 2)],
                vec![],
            ],
        };
        // Client 1 is slow per iteration but has little work; client 0
        // dominates: 1_000 + 10 * 50 = 1_500.
        let got = predicted_finish_ns(&dist, &[1_000, 200, 900], &[50.0, 100.0, 1.0]);
        assert_eq!(got, 1_500.0);
        // An idle client still contributes its clock.
        let empty = Distribution {
            per_client: vec![vec![], vec![], vec![]],
        };
        assert_eq!(predicted_finish_ns(&empty, &[7, 9, 3], &[1.0; 3]), 9.0);
    }

    #[test]
    fn zero_epochs_is_an_error() {
        let sim = tiny_sim(None);
        let (program, data, chunks, dist) = artifacts(&sim);
        let cfg = OnlineConfig {
            epochs: 0,
            ..OnlineConfig::default()
        };
        assert!(matches!(
            run_online(&sim, &program, &data, &chunks, &dist, &cfg),
            Err(OnlineError::NoEpochs)
        ));
    }
}
