//! Deterministic parallel runtime: a scoped fixed-size worker pool with
//! `par_map` / `par_map_reduce` primitives whose results are
//! byte-identical for any thread count, including one.
//!
//! The determinism contract, which every tenant in this workspace leans
//! on (chaos replay, service cache fingerprints, golden reports):
//!
//! - **Work is split by index.** Workers pull item indices from a shared
//!   atomic counter; which worker computes which item is racy, but the
//!   item→result mapping is a pure function of the input.
//! - **Results are collected in input order.** [`Pool::try_map`] writes
//!   result `i` into slot `i` and returns `Vec<R>` ordered like the
//!   input, regardless of completion order.
//! - **Reductions use a fixed tree shape.** [`Pool::try_map_reduce`]
//!   folds items into blocks whose boundaries depend only on
//!   `items.len()`, then folds the block accumulators left-to-right.
//!   The same shape is used at every thread count, so even
//!   non-associative reducers (floating point!) give identical results.
//!
//! Worker panics are captured per item with `catch_unwind` and surfaced
//! as a typed [`ParError`] — a panicking closure can never hang the
//! caller, and the panic message is preserved.
//!
//! The pool is *scoped*: each call spawns `std::thread::scope` workers
//! that borrow the input slice directly (no `'static` bounds, no unsafe)
//! and joins them before returning. `Pool` itself is just a thread-count
//! handle — `Copy`, trivially cheap to thread through call stacks.
//!
//! Thread count selection: [`Pool::new`] for an explicit count,
//! [`Pool::sequential`] for the single-threaded identity pool, and
//! [`Pool::from_env`] for the CLI-level `CACHEMAP_THREADS` knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`Pool::from_env`]: the number of
/// worker threads (a positive integer; `1` forces sequential execution).
pub const THREADS_ENV: &str = "CACHEMAP_THREADS";

/// Upper bound on configured thread counts — a safety clamp, not a
/// tuning knob. Scoped pools spawn per call, so an absurd count would
/// only waste spawns.
pub const MAX_THREADS: usize = 256;

/// An error raised by a parallel primitive: some worker closure panicked.
///
/// The pool never propagates the panic by unwinding through the scope
/// (which could abort the process or deadlock a caller holding locks);
/// it captures the payload and reports the lowest recorded item index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A worker closure panicked while processing one item.
    WorkerPanic {
        /// Index of the input item whose closure panicked (the lowest
        /// recorded one when several panicked).
        index: usize,
        /// The panic payload rendered as text (`&str` / `String`
        /// payloads verbatim, otherwise a placeholder).
        message: String,
    },
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParError::WorkerPanic { index, message } => {
                write!(f, "worker panicked on item {index}: {message}")
            }
        }
    }
}

impl std::error::Error for ParError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// A fixed-size worker pool handle. See the crate docs for the
/// determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// The sequential pool — parallelism in this workspace is always
    /// opt-in.
    fn default() -> Self {
        Pool::sequential()
    }
}

impl Pool {
    /// A pool that runs work on `threads` workers. Counts are clamped to
    /// `1..=`[`MAX_THREADS`]; `Pool::new(1)` is the sequential pool.
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// The single-threaded pool: primitives run inline on the caller's
    /// thread. This is the reference behaviour every parallel run must
    /// reproduce byte-for-byte.
    pub fn sequential() -> Pool {
        Pool { threads: 1 }
    }

    /// Reads the thread count from [`THREADS_ENV`] (`CACHEMAP_THREADS`),
    /// falling back to the machine's available parallelism when the
    /// variable is unset or unparsable.
    pub fn from_env() -> Pool {
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Pool::new(parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or(fallback))
    }

    /// Like [`Pool::from_env`], but with an explicit fallback instead of
    /// the machine's available parallelism.
    pub fn from_env_or(fallback: usize) -> Pool {
        Pool::new(parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or(fallback))
    }

    /// The configured worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when this pool runs everything inline on the caller's
    /// thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// `f` receives `(index, &item)` and must be a pure function of
    /// those for the determinism contract to hold. A panic in `f` is
    /// captured and returned as [`ParError::WorkerPanic`]; remaining
    /// items may be skipped once a panic is recorded.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, ParError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(r) => out.push(r),
                    Err(p) => {
                        return Err(ParError::WorkerPanic {
                            index: i,
                            message: panic_message(p.as_ref()),
                        })
                    }
                }
            }
            return Ok(out);
        }

        let slots: Vec<Mutex<Option<Result<R, ParError>>>> =
            (0..items.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let bail = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if bail.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let outcome = match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                        Ok(r) => Ok(r),
                        Err(p) => {
                            bail.store(true, Ordering::Relaxed);
                            Err(ParError::WorkerPanic {
                                index: i,
                                message: panic_message(p.as_ref()),
                            })
                        }
                    };
                    // The slot is written exactly once (indices are
                    // unique), so the lock is uncontended and cannot be
                    // poisoned: the closure ran under catch_unwind.
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        let mut out = Vec::with_capacity(items.len());
        let mut first_err: Option<ParError> = None;
        for slot in slots {
            match slot.into_inner().expect("result slot poisoned") {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => {
                    first_err.get_or_insert(e);
                    break;
                }
                // A hole before any error means workers bailed early;
                // the error lives at a later index.
                None => {}
            }
        }
        match first_err {
            Some(e) => Err(e),
            None if out.len() == items.len() => Ok(out),
            // Holes but no recorded error cannot happen: workers only
            // skip items after `bail` is set, and `bail` is only set by
            // a worker that then records its error.
            None => unreachable!("incomplete parallel map without a recorded error"),
        }
    }

    /// [`Pool::try_map`] that propagates a worker panic as a panic on
    /// the calling thread (with the original message preserved).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self.try_map(items, f) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Maps `f` over `items` and folds the results with `reduce` using a
    /// fixed tree shape: items are grouped into contiguous blocks whose
    /// boundaries depend only on `items.len()` (never the thread count),
    /// each block is folded left-to-right, and the block accumulators
    /// are folded left-to-right on the calling thread. Returns `None`
    /// for empty input.
    pub fn try_map_reduce<T, A, F, G>(
        &self,
        items: &[T],
        f: F,
        reduce: G,
    ) -> Result<Option<A>, ParError>
    where
        T: Sync,
        A: Send,
        F: Fn(usize, &T) -> A + Sync,
        G: Fn(A, A) -> A + Sync,
    {
        if items.is_empty() {
            return Ok(None);
        }
        let block = reduce_block_len(items.len());
        let blocks: Vec<(usize, usize)> = (0..items.len())
            .step_by(block)
            .map(|lo| (lo, (lo + block).min(items.len())))
            .collect();
        let partials = self.try_map(&blocks, |_, &(lo, hi)| {
            let mut acc = f(lo, &items[lo]);
            for (i, item) in items.iter().enumerate().take(hi).skip(lo + 1) {
                acc = reduce(acc, f(i, item));
            }
            acc
        })?;
        Ok(partials.into_iter().reduce(&reduce))
    }

    /// [`Pool::try_map_reduce`] that propagates a worker panic as a
    /// panic on the calling thread.
    pub fn map_reduce<T, A, F, G>(&self, items: &[T], f: F, reduce: G) -> Option<A>
    where
        T: Sync,
        A: Send,
        F: Fn(usize, &T) -> A + Sync,
        G: Fn(A, A) -> A + Sync,
    {
        match self.try_map_reduce(items, f, reduce) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Block length for [`Pool::try_map_reduce`]: a function of the input
/// length alone, so the reduction tree has the same shape at every
/// thread count. At most 64 blocks keeps the sequential tail fold cheap.
fn reduce_block_len(len: usize) -> usize {
    len.div_ceil(64).max(1)
}

/// Parses a `CACHEMAP_THREADS`-style value: a positive integer, clamped
/// by [`Pool::new`]. Empty, non-numeric, and zero values are rejected
/// (callers fall back).
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    let n: usize = raw?.trim().parse().ok()?;
    (n > 0).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

    #[test]
    fn map_preserves_input_order_at_every_pool_size() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in POOL_SIZES {
            let got = Pool::new(threads).map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_passes_the_item_index() {
        let items = vec!["a"; 100];
        let got = Pool::new(4).map(&items, |i, _| i);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let none: [u32; 0] = [];
        assert_eq!(Pool::new(8).map(&none, |_, &x| x), Vec::<u32>::new());
        assert_eq!(
            Pool::new(8).map_reduce(&none, |_, &x| x, |a, b| a + b),
            None
        );
    }

    #[test]
    fn reduce_shape_is_independent_of_thread_count() {
        // A non-associative reduction: floating-point sums of wildly
        // different magnitudes. Any change in fold shape changes bits.
        let items: Vec<f64> = (0..1000)
            .map(|i| {
                if i % 7 == 0 {
                    1e16
                } else {
                    (i as f64).sin() * 1e-3
                }
            })
            .collect();
        let reference = Pool::sequential()
            .map_reduce(&items, |_, &x| x, |a, b| a + b)
            .unwrap();
        for threads in POOL_SIZES {
            let got = Pool::new(threads)
                .map_reduce(&items, |_, &x| x, |a, b| a + b)
                .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn map_reduce_matches_plain_fold_semantics() {
        let items: Vec<u64> = (1..=100).collect();
        let got = Pool::new(3).map_reduce(&items, |_, &x| x, |a, b| a + b);
        assert_eq!(got, Some(5050));
    }

    #[test]
    fn worker_panic_is_a_typed_error_not_a_hang() {
        let items: Vec<u32> = (0..64).collect();
        for threads in POOL_SIZES {
            let err = Pool::new(threads)
                .try_map(&items, |_, &x| {
                    if x == 13 {
                        panic!("unlucky {x}");
                    }
                    x
                })
                .unwrap_err();
            let ParError::WorkerPanic { index, message } = err;
            assert_eq!(index, 13, "threads={threads}");
            assert!(message.contains("unlucky"), "message: {message}");
        }
    }

    #[test]
    fn sequential_panic_reports_the_first_index() {
        let items: Vec<u32> = (0..64).collect();
        let err = Pool::sequential()
            .try_map(&items, |i, _| {
                if i >= 10 {
                    panic!("boom");
                }
                i
            })
            .unwrap_err();
        assert_eq!(
            err,
            ParError::WorkerPanic {
                index: 10,
                message: "boom".into()
            }
        );
    }

    #[test]
    fn map_propagates_panic_with_message() {
        let caught = std::panic::catch_unwind(|| {
            Pool::new(2).map(&[1, 2, 3], |_, &x: &i32| {
                if x == 2 {
                    panic!("bad item");
                }
                x
            })
        });
        let payload = caught.unwrap_err();
        let text = panic_message(payload.as_ref());
        assert!(text.contains("bad item"), "got: {text}");
    }

    #[test]
    fn thread_count_parsing_and_clamping() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 16 ")), Some(16));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(1_000_000).threads(), MAX_THREADS);
        assert!(Pool::sequential().is_sequential());
        assert!(!Pool::new(2).is_sequential());
    }

    #[test]
    fn reduce_blocks_cover_every_index_once() {
        for len in [1usize, 2, 63, 64, 65, 100, 4096, 5000] {
            let block = reduce_block_len(len);
            let mut covered = 0usize;
            for lo in (0..len).step_by(block) {
                covered += (lo + block).min(len) - lo;
            }
            assert_eq!(covered, len, "len={len}");
        }
    }

    #[test]
    fn borrowed_non_static_data_works() {
        // The scoped pool must accept borrowed inputs with no 'static
        // bound — this test fails to compile otherwise.
        let local = vec![String::from("a"), String::from("bb")];
        let lens = Pool::new(2).map(&local, |_, s| s.len());
        assert_eq!(lens, vec![1, 2]);
        drop(local);
    }
}
