//! Router-fleet integration tests: ring affinity, failover on kill,
//! breaker lifecycle, netfault determinism, and the TCP backend path.

use cachemap_core::Version;
use cachemap_service::netfault::FaultedBackend;
use cachemap_service::router::{Backend, BackendError, Clock, LocalBackend, Router, TcpBackend};
use cachemap_service::server::Server;
use cachemap_service::{
    HealthConfig, HealthState, MapRequest, MapService, NetFaultPlan, RouterConfig, ServiceConfig,
    ServiceError,
};
use cachemap_storage::PlatformConfig;
use cachemap_util::{BreakerConfig, BreakerState};
use cachemap_workloads::{suite, Scale};
use std::sync::Arc;

fn request(app_idx: usize, id: u64) -> MapRequest {
    let apps = suite(Scale::Test);
    let app = &apps[app_idx % apps.len()];
    MapRequest {
        id,
        program: app.program.clone(),
        platform: PlatformConfig::tiny(),
        mapper: Default::default(),
        version: Version::InterProcessor,
        deadline_ms: None,
        tenant: None,
    }
}

fn fingerprint_of(req: &MapRequest) -> cachemap_util::Fingerprint {
    cachemap_core::wire::fingerprint(&req.program, &req.platform, &req.mapper, req.version)
}

fn small_service() -> Arc<MapService> {
    Arc::new(MapService::start(ServiceConfig {
        workers: 2,
        queue_limit: 32,
        cache_shards: 4,
        cache_capacity_per_shard: 64,
        flight_capacity: 0,
        ..ServiceConfig::default()
    }))
}

/// A fleet of local replicas plus the handles the tests kill/restart.
fn fleet(n: usize) -> (Vec<Box<dyn Backend>>, Vec<Arc<LocalBackend>>) {
    let locals: Vec<Arc<LocalBackend>> = (0..n)
        .map(|i| Arc::new(LocalBackend::new(format!("replica-{i}"), small_service())))
        .collect();
    let backends = locals
        .iter()
        .map(|l| Box::new(Arc::clone(l)) as Box<dyn Backend>)
        .collect();
    (backends, locals)
}

fn test_router_config() -> RouterConfig {
    RouterConfig {
        retries: 1,
        breaker: BreakerConfig {
            window: 8,
            min_samples: 2,
            failure_ratio: 0.5,
            open_ns: 1_000_000,
        },
        health: HealthConfig {
            suspect_after: 1,
            down_after: 2,
            up_after: 1,
            ping_deadline_ms: 100,
        },
        ..RouterConfig::default()
    }
}

#[test]
fn ring_affinity_same_request_same_replica() {
    let (backends, _locals) = fleet(3);
    let router = Router::new(backends, Arc::new(Clock::simulated()), test_router_config());
    let owner = router.primary_of(fingerprint_of(&request(0, 0)));
    for i in 0..5u64 {
        let resp = router.submit(request(0, i)).expect("healthy fleet serves");
        assert_eq!(resp.cached, i > 0, "repeat hits the owner's cache");
    }
    let stats = router.stats();
    assert_eq!(stats.ok, 5);
    assert_eq!(stats.ok_failover, 0, "no failover on a healthy fleet");
    assert_eq!(
        stats.replicas[owner].1, 5,
        "all five land on the ring owner: {stats:?}"
    );
}

#[test]
fn killed_replica_fails_over_with_typed_outcomes_only() {
    let clock = Arc::new(Clock::simulated());
    let (backends, locals) = fleet(3);
    let router = Router::new(backends, Arc::clone(&clock), test_router_config());

    let victim = router.primary_of(fingerprint_of(&request(0, 0)));
    router.submit(request(0, 0)).expect("warm");
    locals[victim].kill();

    let mut served_after_kill = 0;
    for i in 0..10u64 {
        clock.advance_ns(2_000_000);
        match router.submit(request(0, 100 + i)) {
            Ok(_) => served_after_kill += 1,
            Err(e) => {
                assert!(!e.code().is_empty(), "error must be typed: {e}");
            }
        }
    }
    assert!(
        served_after_kill >= 8,
        "ring successors must absorb the dead primary's keys (served {served_after_kill}/10)"
    );
    let stats = router.stats();
    assert!(
        stats.ok_failover > 0,
        "failover path must have been exercised: {stats:?}"
    );
}

#[test]
fn breaker_opens_sheds_and_recovers_through_half_open() {
    let clock = Arc::new(Clock::simulated());
    let (backends, locals) = fleet(2);
    let cfg = test_router_config();
    let open_ns = cfg.breaker.open_ns;
    let router = Router::new(backends, Arc::clone(&clock), cfg);

    // Find an app whose primary is replica 0 so its failures hit the
    // breaker we watch.
    let app = (0..8)
        .find(|&a| router.primary_of(fingerprint_of(&request(a, 0))) == 0)
        .expect("some app must map to replica 0");

    router
        .submit(request(app, 0))
        .expect("warm through primary");
    locals[0].kill();

    // Drive failures until the breaker opens; with retries=1 each
    // submit records two failures.
    for i in 0..4u64 {
        clock.advance_ns(1_000);
        let _ = router.submit(request(app, 10 + i));
    }
    assert_eq!(
        router.breaker_state(0),
        BreakerState::Open,
        "failure rate must trip the breaker"
    );

    // While open, the primary is shed without calls.
    let sheds_before = router.stats().shed_open;
    let _ = router.submit(request(app, 50));
    assert!(
        router.stats().shed_open > sheds_before,
        "open breaker must shed to the ring successor"
    );

    // Restart the replica, wait out the cool-down: half-open probe then
    // closed.
    locals[0].restart(small_service());
    clock.advance_ns(open_ns + 1);
    router.submit(request(app, 60)).expect("probe succeeds");
    assert_eq!(router.breaker_state(0), BreakerState::Closed);
    let hist = router.breaker_history(0);
    assert!(
        hist.windows(3).any(|w| w
            == [
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed
            ]),
        "breaker must recover open → half-open → closed: {hist:?}"
    );
}

#[test]
fn health_checks_declare_down_and_reprobe() {
    let clock = Arc::new(Clock::simulated());
    let (backends, locals) = fleet(2);
    let router = Router::new(backends, clock, test_router_config());

    assert!(router.health_tick().is_empty(), "healthy fleet: no change");
    locals[1].kill();
    assert_eq!(router.health_tick(), vec![(1, HealthState::Suspect)]);
    assert_eq!(router.health_tick(), vec![(1, HealthState::Down)]);
    assert_eq!(router.health_state(1), HealthState::Down);

    locals[1].restart(small_service());
    assert_eq!(
        router.health_tick(),
        vec![(1, HealthState::Healthy)],
        "up_after=1 promotes straight back"
    );
}

#[test]
fn down_replica_is_skipped_without_calls() {
    let clock = Arc::new(Clock::simulated());
    let (backends, locals) = fleet(2);
    let router = Router::new(backends, clock, test_router_config());

    let app = (0..8)
        .find(|&a| router.primary_of(fingerprint_of(&request(a, 0))) == 0)
        .expect("some app must map to replica 0");
    locals[0].kill();
    router.health_tick();
    router.health_tick();
    assert_eq!(router.health_state(0), HealthState::Down);

    let resp = router.submit(request(app, 1)).expect("successor serves");
    assert!(!resp.cached);
    let stats = router.stats();
    assert!(stats.shed_down >= 1, "down primary shed: {stats:?}");
    assert_eq!(
        stats.retries, 0,
        "no retry burn on a health-skipped replica"
    );
}

#[test]
fn whole_fleet_down_answers_replica_down_typed() {
    let clock = Arc::new(Clock::simulated());
    let (backends, locals) = fleet(2);
    let router = Router::new(backends, clock, test_router_config());
    for l in &locals {
        l.kill();
    }
    router.health_tick();
    router.health_tick();

    match router.submit(request(0, 1)) {
        Err(ServiceError::ReplicaDown { replica }) => {
            assert!(replica.starts_with("replica-"), "names the primary");
        }
        other => panic!("expected replica_down, got {other:?}"),
    }
}

#[test]
fn netfault_runs_are_deterministic_and_typed() {
    let drive = |seed: u64| {
        let clock = Arc::new(Clock::simulated());
        let plan = NetFaultPlan {
            refuse_ppm: 120_000,
            stall_ppm: 60_000,
            slow_ppm: 60_000,
            truncate_ppm: 60_000,
            stall_ns: 3_000_000,
            slow_ns: 1_000_000,
            ..NetFaultPlan::quiet(seed)
        };
        let (backends, _locals) = fleet(3);
        let faulted: Vec<Box<dyn Backend>> = backends
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                Box::new(FaultedBackend::new(b, plan, i, Arc::clone(&clock))) as Box<dyn Backend>
            })
            .collect();
        let router = Router::new(faulted, Arc::clone(&clock), test_router_config());
        let mut outcomes = Vec::new();
        for i in 0..40u64 {
            clock.advance_ns(1_000_000);
            let code = match router.submit(request((i % 4) as usize, i)) {
                Ok(resp) => format!("ok:{}", resp.cached),
                Err(e) => {
                    assert!(
                        matches!(
                            e,
                            ServiceError::RetriesExhausted { .. }
                                | ServiceError::ReplicaDown { .. }
                                | ServiceError::BreakerOpen { .. }
                        ),
                        "only fleet-level typed errors expected, got {e}"
                    );
                    e.code().to_string()
                }
            };
            outcomes.push(code);
        }
        (outcomes, clock.now_ns())
    };
    let (a, ta) = drive(42);
    let (b, tb) = drive(42);
    assert_eq!(a, b, "same seed, same outcome sequence");
    assert_eq!(ta, tb, "same seed, same virtual-time trajectory");
}

#[test]
fn tcp_backend_round_trips_and_surfaces_typed_errors() {
    let svc = small_service();
    let server = Server::spawn("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let addr = server.addr();

    let backend = TcpBackend::new("tcp-0", addr);
    assert!(backend.ping(500), "server answers pings");

    let resp = backend.call(&request(0, 7)).expect("wire map succeeds");
    assert_eq!(resp.id, 7);
    assert!(!resp.cached);
    let again = backend.call(&request(0, 8)).expect("second call");
    assert!(again.cached, "same content hits the replica cache");
    assert_eq!(
        resp.mapping, again.mapping,
        "cache is semantically invisible"
    );

    // An already-expired deadline surfaces as a typed service error,
    // not a transport error.
    let mut bad = request(1, 9);
    bad.deadline_ms = Some(0);
    match backend.call(&bad) {
        Err(BackendError::Service(e)) => assert_eq!(e.code(), "deadline_exceeded"),
        other => panic!("expected typed deadline error, got {other:?}"),
    }

    server.shutdown();
    drop(server);
    svc.shutdown();

    // With the server torn down the backend reports either a transport
    // failure or the service's typed shutdown (depending on whether the
    // old connection thread won the race to answer once more) — both
    // are failover-eligible for the router, never untyped.
    match backend.call(&request(0, 10)) {
        Err(BackendError::Unavailable(_)) => {}
        Err(BackendError::Service(ServiceError::Shutdown)) => {}
        other => panic!("expected unavailable/shutdown after teardown, got {other:?}"),
    }
    // A second call definitely finds the port closed.
    match backend.call(&request(0, 11)) {
        Err(BackendError::Unavailable(_)) => {}
        other => panic!("expected unavailable on a dead port, got {other:?}"),
    }
}

#[test]
fn router_metrics_expose_fleet_state() {
    let clock = Arc::new(Clock::simulated());
    let (backends, _locals) = fleet(2);
    let router = Router::new(backends, clock, test_router_config());
    router.submit(request(0, 1)).expect("serve");
    let text = router.metrics_text();
    for needle in [
        "cachemap_router_requests_total",
        "cachemap_router_replica_health",
        "cachemap_router_replica_breaker",
        "cachemap_router_served_total",
        "cachemap_router_sheds_total",
    ] {
        assert!(text.contains(needle), "metrics must expose {needle}");
    }
    assert_eq!(
        router.counter("cachemap_router_requests_total", &[("outcome", "ok")]),
        Some(1)
    );
    assert_eq!(
        router.gauge(
            "cachemap_router_replica_health",
            &[("replica", "replica-0")]
        ),
        Some(0.0)
    );
}
