//! Request-tracing integration tests: deterministic trace identity,
//! the stage-sum ≈ total latency property, wire-level byte identity
//! with tracing off, the `trace` protocol op, and flight-recorder
//! dumps on anomaly triggers.

use cachemap_core::{MapperConfig, Version};
use cachemap_obs::{validate_flight_record, validate_trace};
use cachemap_service::server::Server;
use cachemap_service::{MapRequest, MapService, ServiceConfig};
use cachemap_util::json::{self, Json};
use cachemap_util::ToJson;
use cachemap_workloads::{suite, Scale};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cachemap-trace-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(app_idx: usize, version: Version, id: u64) -> MapRequest {
    let apps = suite(Scale::Test);
    let app = &apps[app_idx % apps.len()];
    MapRequest {
        id,
        program: app.program.clone(),
        platform: cachemap_storage::PlatformConfig::tiny(),
        mapper: MapperConfig::default(),
        version,
        deadline_ms: None,
        tenant: None,
    }
}

fn traced_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        tracing: true,
        // Debug-build computes can outlive the default 10 s budget;
        // these tests measure attribution, not deadline policing.
        default_deadline_ms: 0,
        ..ServiceConfig::default()
    }
}

/// Submits one request and returns its finalized trace JSON.
fn submit_and_finalize(service: &MapService, req: MapRequest) -> Json {
    let mut resp = service.submit_traced(req, 0).expect("request maps");
    let pending = resp.trace.take().expect("tracing on attaches a trace");
    service.finalize_trace(pending, Duration::ZERO)
}

#[test]
fn trace_ids_are_deterministic_across_fresh_services() {
    let a = MapService::start(traced_config());
    let b = MapService::start(traced_config());
    // Same submission sequence on both services → identical ids: the id
    // is derived from (content fingerprint, admission seq), never from
    // clocks or randomness.
    let mut ids_a = Vec::new();
    let mut ids_b = Vec::new();
    for (svc, ids) in [(&a, &mut ids_a), (&b, &mut ids_b)] {
        for k in 0..4u64 {
            let req = request(k as usize % 2, Version::InterProcessor, k);
            let trace = submit_and_finalize(svc, req);
            validate_trace(&trace).expect("trace schema");
            ids.push(
                trace
                    .get("trace_id")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
    }
    assert_eq!(ids_a, ids_b, "trace ids depend only on (fingerprint, seq)");
    // Distinct requests (different fingerprint or seq) get distinct ids.
    let distinct: std::collections::HashSet<&String> = ids_a.iter().collect();
    assert_eq!(distinct.len(), ids_a.len());
    for id in &ids_a {
        assert_eq!(id.len(), 16, "ids are 16 hex chars: {id}");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    }
    a.shutdown();
    b.shutdown();
}

#[test]
fn stage_sum_tracks_end_to_end_latency() {
    // Property: over a random mix of programs, versions, and hit/miss
    // paths, the stage durations tile the request — their sum explains
    // the trace's own total within 10% (plus a 200 µs floor for the
    // sub-stage gaps: mutex handoffs, channel wakeups).
    let service = MapService::start(traced_config());
    let mut g = cachemap_util::check::Gen::from_seed(0x7ace);
    for case in 0..24 {
        let app = g.usize_in(0, 7);
        let version = if g.bool() {
            Version::InterProcessor
        } else {
            Version::InterProcessorScheduled
        };
        let trace = submit_and_finalize(&service, request(app, version, case));
        validate_trace(&trace).expect("trace schema");
        let total = trace.get("total_us").and_then(Json::as_u64).unwrap();
        let sum: u64 = trace
            .get("stages")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|s| s.get("dur_us").and_then(Json::as_u64).unwrap())
            .sum();
        let slack = total / 10 + 200;
        assert!(
            sum <= total + slack && total <= sum + slack,
            "case {case}: stage sum {sum} µs does not explain total {total} µs \
             (slack {slack} µs): {}",
            trace.to_string_compact()
        );
    }
    // Both cache outcomes were exercised (the pool is 16 templates over
    // 24 requests, so repeats must have hit).
    let stats = service.stats();
    assert!(stats.misses > 0 && stats.hits > 0);
    service.shutdown();
}

#[test]
fn compute_traces_link_the_mapper_profile() {
    let service = MapService::start(traced_config());
    let trace = submit_and_finalize(&service, request(0, Version::InterProcessor, 1));
    let stages = trace.get("stages").and_then(Json::as_array).unwrap();
    let compute = stages
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("compute"))
        .expect("a cold submission has a compute stage");
    let spans = compute
        .get("profile")
        .and_then(|p| p.get("spans"))
        .and_then(Json::as_array)
        .expect("the compute stage links the mapper profile");
    assert!(!spans.is_empty(), "profile must contain mapper phase spans");
    // The hit path carries no profile (nothing was computed).
    let hit = submit_and_finalize(&service, request(0, Version::InterProcessor, 2));
    let hit_stages = hit.get("stages").and_then(Json::as_array).unwrap();
    assert!(hit_stages
        .iter()
        .all(|s| s.get("name").and_then(Json::as_str) != Some("compute")));
    service.shutdown();
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply
}

fn keys(v: &Json) -> Vec<String> {
    match v {
        Json::Object(pairs) => pairs.iter().map(|(k, _)| k.clone()).collect(),
        _ => Vec::new(),
    }
}

#[test]
fn disabled_tracing_is_byte_identical_on_the_wire() {
    // One server with tracing off, one with tracing on, same request.
    let req_line = request(0, Version::InterProcessor, 7)
        .to_json()
        .to_string_compact();
    let mut replies = Vec::new();
    for tracing in [false, true] {
        let service = Arc::new(MapService::start(ServiceConfig {
            workers: 2,
            tracing,
            flight_dir: temp_dir("byteid"),
            ..ServiceConfig::default()
        }));
        let server = Server::spawn("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let reply = send_line(&mut stream, &mut reader, &req_line);
        drop(reader);
        drop(stream);
        server.shutdown();
        service.shutdown();
        replies.push(reply);
    }
    let off = json::parse(&replies[0]).unwrap();
    let on = json::parse(&replies[1]).unwrap();

    // Tracing off: exactly the untraced wire format — no trace field,
    // and the line re-serializes to itself (no splicing artifacts).
    assert!(off.get("trace").is_none(), "{}", replies[0]);
    assert_eq!(replies[0].trim_end(), off.to_string_compact());

    // Tracing on: the same response plus exactly one trailing field.
    assert_eq!(replies[1].trim_end(), on.to_string_compact());
    let mut on_keys = keys(&on);
    assert_eq!(on_keys.pop().as_deref(), Some("trace"), "trace is last");
    assert_eq!(on_keys, keys(&off), "base response shape is unchanged");
    assert_eq!(
        on.get("mapping").unwrap().to_string_compact(),
        off.get("mapping").unwrap().to_string_compact(),
        "identical mapping bytes with and without tracing"
    );
    validate_trace(on.get("trace").unwrap()).expect("spliced trace schema");
}

#[test]
fn trace_op_round_trips_over_tcp() {
    let service = Arc::new(MapService::start(ServiceConfig {
        workers: 2,
        tracing: true,
        flight_dir: temp_dir("op"),
        ..ServiceConfig::default()
    }));
    let server = Server::spawn("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let req_line = request(1, Version::InterProcessor, 3)
        .to_json()
        .to_string_compact();
    let map_reply = json::parse(&send_line(&mut stream, &mut reader, &req_line)).unwrap();
    let id = map_reply
        .get("trace")
        .and_then(|t| t.get("trace_id"))
        .and_then(Json::as_str)
        .expect("map reply carries its trace id")
        .to_string();

    // Look the same trace up again by id.
    let by_id = json::parse(&send_line(
        &mut stream,
        &mut reader,
        &format!("{{\"op\":\"trace\",\"id\":4,\"trace_id\":\"{id}\"}}"),
    ))
    .unwrap();
    assert_eq!(by_id.get("status").and_then(Json::as_str), Some("ok"));
    let record = by_id.get("trace").unwrap();
    validate_trace(record).unwrap();
    assert_eq!(record.get("trace_id").and_then(Json::as_str), Some(&id[..]));

    // `last` (and the implicit default) return the most recent trace.
    let last = json::parse(&send_line(
        &mut stream,
        &mut reader,
        "{\"op\":\"trace\",\"id\":5}",
    ))
    .unwrap();
    assert_eq!(last.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        last.get("trace")
            .and_then(|t| t.get("trace_id"))
            .and_then(Json::as_str),
        Some(&id[..])
    );

    // An id that never entered the ring is a typed not_found.
    let missing = json::parse(&send_line(
        &mut stream,
        &mut reader,
        "{\"op\":\"trace\",\"id\":6,\"trace_id\":\"00ff00ff00ff00ff\"}",
    ))
    .unwrap();
    assert_eq!(missing.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        missing
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("not_found")
    );

    server.shutdown();
    service.shutdown();
}

#[test]
fn tracing_off_answers_trace_ops_not_found() {
    let service = Arc::new(MapService::start(ServiceConfig {
        workers: 2,
        tracing: false,
        ..ServiceConfig::default()
    }));
    let server = Server::spawn("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let reply = json::parse(&send_line(
        &mut stream,
        &mut reader,
        "{\"op\":\"trace\",\"id\":1}",
    ))
    .unwrap();
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("not_found")
    );
    server.shutdown();
    service.shutdown();
}

#[test]
fn anomaly_triggers_dump_validating_flight_records() {
    let dir = temp_dir("dumps");
    let service = MapService::start(ServiceConfig {
        flight_dir: dir.clone(),
        // Every compute is "slow" at a 1 ms threshold, so the slow-
        // request trigger must fire on the first cold mapping.
        slow_trace_ms: 1,
        ..traced_config()
    });

    // Slow request: one cold compute takes well over 1 ms.
    let trace = submit_and_finalize(&service, request(0, Version::InterProcessor, 1));
    assert!(trace.get("total_us").and_then(Json::as_u64).unwrap() > 1_000);

    // Rejection burst: 8 rejected-of-last-16 traced records. The
    // expired-deadline gate sits past the cache lookups, so the burst
    // uses fingerprints that cannot be cached yet (scheduled version).
    for k in 0..8u64 {
        let mut r = request(k as usize, Version::InterProcessorScheduled, 10 + k);
        r.deadline_ms = Some(0); // expired at admission → traced rejection
        assert!(service.submit_traced(r, 0).is_err());
    }

    // Drain: the graceful shutdown dumps the remaining ring.
    service.shutdown();

    let mut seen = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(&dir).expect("flight dir was created") {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        assert!(
            name.starts_with("flight-") && name.ends_with(".json"),
            "unexpected file {name}"
        );
        let parsed = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        validate_flight_record(&parsed).unwrap_or_else(|errs| {
            panic!("{name} violates the flight schema: {errs:?}");
        });
        let trigger = parsed
            .get("trigger")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        // Dump context carries the admission queue state.
        assert!(parsed.get("queue_depth").is_some(), "{name}: no context");
        seen.insert(trigger);
    }
    for trigger in ["slow_request", "rejection_burst", "drain"] {
        assert!(seen.contains(trigger), "missing a {trigger} dump: {seen:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_l2_tail_dumps_a_recovery_flight_record() {
    let dir = temp_dir("l2");
    let flight = temp_dir("recovery");
    let cfg = ServiceConfig {
        l2_dir: Some(dir.clone()),
        flight_dir: flight.clone(),
        ..traced_config()
    };
    {
        let service = MapService::start(cfg.clone());
        assert!(
            !service
                .submit(request(0, Version::InterProcessor, 1))
                .unwrap()
                .cached
        );
        service.shutdown();
    }
    // Tear the tail of the newest segment (a partial final write).
    let mut segs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    // The newest segment may be a freshly rotated empty one; tear the
    // newest segment that actually holds records.
    let seg = segs
        .into_iter()
        .rev()
        .find(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
        .expect("the L2 store wrote a non-empty segment");
    let len = std::fs::metadata(&seg).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - len.min(17))
        .unwrap();

    // Restart on the torn directory: recovery truncates and dumps.
    let service = MapService::start(cfg);
    let dumps: Vec<_> = std::fs::read_dir(&flight)
        .expect("recovery dump dir")
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("flight-recovery-"))
        })
        .collect();
    assert_eq!(dumps.len(), 1, "torn tail must dump one recovery record");
    let parsed = json::parse(&std::fs::read_to_string(dumps[0].path()).unwrap()).unwrap();
    validate_flight_record(&parsed).unwrap();
    assert!(
        parsed.get("bytes_truncated").and_then(Json::as_u64) > Some(0)
            || parsed.get("segments_truncated").and_then(Json::as_u64) > Some(0),
        "recovery context records what was truncated: {}",
        parsed.to_string_compact()
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&flight);
}
