//! Async front-end integration tests: wire compatibility with the
//! threaded server, batching/dedup, fault injection (slow-loris,
//! truncated and dripped writes), capacity limits, simulated-clock
//! deadlines, and metric preregistration.

use cachemap_aio::FaultPlan;
use cachemap_core::{Mapper, MapperConfig, Version};
use cachemap_polyhedral::DataSpace;
use cachemap_service::aserver::{AsyncServer, AsyncServerConfig};
use cachemap_service::server::Server;
use cachemap_service::{MapRequest, MapService, ServiceConfig};
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_util::{Clock, ToJson};
use cachemap_workloads::{suite, Scale};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn service() -> Arc<MapService> {
    Arc::new(MapService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }))
}

fn request(app_idx: usize, version: Version, id: u64) -> MapRequest {
    let apps = suite(Scale::Test);
    let app = &apps[app_idx % apps.len()];
    MapRequest {
        id,
        program: app.program.clone(),
        platform: PlatformConfig::tiny(),
        mapper: MapperConfig::default(),
        version,
        deadline_ms: None,
        tenant: None,
    }
}

fn cold_mapping_bytes(req: &MapRequest) -> String {
    let tree = HierarchyTree::from_config(&req.platform).unwrap();
    let data = DataSpace::new(&req.program.arrays, req.platform.chunk_bytes);
    Mapper::new(req.mapper)
        .map(&req.program, &data, &req.platform, &tree, req.version)
        .to_json()
        .to_string_compact()
}

fn round_trip(addr: std::net::SocketAddr, line: &str) -> String {
    let mut c = TcpStream::connect(addr).unwrap();
    c.write_all(line.as_bytes()).unwrap();
    c.write_all(b"\n").unwrap();
    let mut r = BufReader::new(c);
    let mut reply = String::new();
    r.read_line(&mut reply).unwrap();
    reply
}

#[test]
fn replies_are_byte_identical_to_the_threaded_server() {
    let svc = service();
    let threaded = Server::spawn("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let async_srv = AsyncServer::spawn("127.0.0.1:0", Arc::clone(&svc)).unwrap();

    for (idx, version) in [(0, Version::InterProcessor), (1, Version::IntraProcessor)] {
        let req = request(idx, version, 7 + idx as u64);
        let line = req.to_json().to_string_compact();
        let a = round_trip(threaded.addr(), &line);
        let b = round_trip(async_srv.addr(), &line);
        // Map replies embed per-submission fields (`service_us`,
        // `cached`), so whole-line equality cannot hold across two
        // submissions; the payload that must agree — byte for byte —
        // is the mapping itself, and both must match the cold oracle.
        let oracle = format!("\"mapping\":{}", cold_mapping_bytes(&req));
        assert!(a.contains(&oracle), "threaded reply lacks the cold mapping");
        assert!(b.contains(&oracle), "async reply lacks the cold mapping");
        for reply in [&a, &b] {
            assert!(reply.contains("\"status\":\"ok\""), "{reply}");
            assert!(reply.contains(&format!("\"id\":{}", req.id)), "{reply}");
        }
    }
    // Control-plane ops agree too (ping here; stats/metrics answers
    // embed live counters, so byte comparison would race the other
    // front end's own traffic).
    let ping = "{\"id\":3,\"op\":\"ping\"}";
    assert_eq!(
        round_trip(threaded.addr(), ping),
        round_trip(async_srv.addr(), ping)
    );
    threaded.shutdown();
}

#[test]
fn http_metrics_scrape_works_and_preregisters_aio_schema() {
    let svc = service();
    let async_srv = AsyncServer::spawn("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    // Preregistration: the families exist (at zero) before any traffic.
    let text = svc.metrics_text();
    for family in [
        "cachemap_aio_connections",
        "cachemap_aio_wakeups_total",
        "cachemap_aio_batch_size",
        "cachemap_aio_backpressure_total",
        "cachemap_aio_rejected_total",
        "cachemap_aio_stalls_total",
    ] {
        assert!(text.contains(family), "missing preregistered {family}");
    }
    // Plain HTTP scrape against the async port.
    let mut c = TcpStream::connect(async_srv.addr()).unwrap();
    c.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    c.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(
        body.contains("cachemap_aio_connections"),
        "scrape lacks aio gauge"
    );
    assert!(body.contains("text/plain; version=0.0.4"));
}

#[test]
fn identical_lines_in_one_batch_are_deduped_before_admission() {
    let svc = service();
    let cfg = AsyncServerConfig {
        // A wide window so one pipelined burst lands in one batch.
        batch_window_us: 200_000,
        batch_max: 64,
        ..AsyncServerConfig::default()
    };
    let async_srv = AsyncServer::spawn_with("127.0.0.1:0", Arc::clone(&svc), cfg).unwrap();
    let req = request(0, Version::InterProcessor, 1);
    let line = req.to_json().to_string_compact();
    let burst: String = (0..10).map(|_| format!("{line}\n")).collect();
    let mut c = TcpStream::connect(async_srv.addr()).unwrap();
    c.write_all(burst.as_bytes()).unwrap();
    let mut r = BufReader::new(c);
    let mut replies = Vec::new();
    for _ in 0..10 {
        let mut reply = String::new();
        r.read_line(&mut reply).unwrap();
        replies.push(reply);
    }
    assert!(replies.iter().all(|x| x == &replies[0]), "fan-out differs");
    assert!(replies[0].contains("\"status\":\"ok\""), "{}", replies[0]);
    let stats = svc.stats();
    assert_eq!(
        stats.hits + stats.misses + stats.coalesced,
        1,
        "10 identical lines should reach admission once (dedup)"
    );
}

#[test]
fn slow_loris_hits_idle_deadline_with_typed_error_and_no_sleeping() {
    let svc = service();
    let clock = Arc::new(Clock::simulated());
    let cfg = AsyncServerConfig {
        idle_timeout_ms: 30_000,
        clock: Arc::clone(&clock),
        // Swallow every byte: frames never complete, like a drip-feed
        // attacker or a stalled NIC.
        faults: FaultPlan {
            seed: 1,
            stall_read_ppm: 1_000_000,
            ..FaultPlan::none()
        },
        ..AsyncServerConfig::default()
    };
    let async_srv = AsyncServer::spawn_with("127.0.0.1:0", Arc::clone(&svc), cfg).unwrap();
    let mut c = TcpStream::connect(async_srv.addr()).unwrap();
    c.write_all(b"{\"id\":1,\"op\":\"ping\"}\n").unwrap(); // swallowed
    std::thread::sleep(Duration::from_millis(60)); // let the loop register + read
    let t0 = std::time::Instant::now();
    async_srv.advance_clock(31_000_000_000);
    let mut r = BufReader::new(c);
    let mut reply = String::new();
    r.read_line(&mut reply).unwrap();
    assert!(reply.contains("read_timeout"), "{reply}");
    assert!(reply.contains("\"status\":\"error\""), "{reply}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "30 virtual seconds must not cost real time"
    );
    assert_eq!(svc.front_end_rejections("read_timeout"), 1);
}

#[test]
fn truncate_fault_tears_the_response_mid_frame() {
    let svc = service();
    let cfg = AsyncServerConfig {
        faults: FaultPlan {
            seed: 2,
            truncate_write_ppm: 1_000_000,
            truncate_after_bytes: 10,
            ..FaultPlan::none()
        },
        ..AsyncServerConfig::default()
    };
    let async_srv = AsyncServer::spawn_with("127.0.0.1:0", Arc::clone(&svc), cfg).unwrap();
    let mut c = TcpStream::connect(async_srv.addr()).unwrap();
    c.write_all(b"{\"id\":9,\"op\":\"ping\"}\n").unwrap();
    let mut got = Vec::new();
    c.read_to_end(&mut got).unwrap(); // EOF after the cut
    assert_eq!(got.len(), 10, "response torn at the configured offset");
    assert!(!got.ends_with(b"\n"), "the frame must be half-written");
}

#[test]
fn drip_fault_still_delivers_the_reply() {
    let svc = service();
    let cfg = AsyncServerConfig {
        faults: FaultPlan {
            seed: 3,
            drip_write_ppm: 1_000_000,
            ..FaultPlan::none()
        },
        ..AsyncServerConfig::default()
    };
    let async_srv = AsyncServer::spawn_with("127.0.0.1:0", Arc::clone(&svc), cfg).unwrap();
    let reply = round_trip(async_srv.addr(), "{\"id\":4,\"op\":\"ping\"}");
    assert!(reply.contains("\"pong\":true"), "{reply}");
}

#[test]
fn over_capacity_connection_gets_typed_conn_limit() {
    let svc = service();
    let cfg = AsyncServerConfig {
        max_connections: 2,
        ..AsyncServerConfig::default()
    };
    let async_srv = AsyncServer::spawn_with("127.0.0.1:0", Arc::clone(&svc), cfg).unwrap();
    let _a = TcpStream::connect(async_srv.addr()).unwrap();
    let _b = TcpStream::connect(async_srv.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(80)); // let both register
    let third = TcpStream::connect(async_srv.addr()).unwrap();
    let mut r = BufReader::new(third);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("conn_limit"), "{line}");
    assert!(line.contains("\"status\":\"error\""), "{line}");
}

#[test]
fn idle_connection_fleet_is_held_under_the_cap() {
    let svc = service();
    let cfg = AsyncServerConfig {
        max_connections: 600,
        idle_timeout_ms: 0, // hold them open
        ..AsyncServerConfig::default()
    };
    let async_srv = AsyncServer::spawn_with("127.0.0.1:0", Arc::clone(&svc), cfg).unwrap();
    let mut held = Vec::new();
    for _ in 0..512 {
        held.push(TcpStream::connect(async_srv.addr()).unwrap());
    }
    // Wait for the loop to register all of them.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let n = async_srv
            .loop_stats()
            .connections
            .load(std::sync::atomic::Ordering::Relaxed);
        if n >= 512 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {n}/512 registered"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The fleet being parked must not break request service.
    let reply = round_trip(async_srv.addr(), "{\"id\":5,\"op\":\"ping\"}");
    assert!(reply.contains("\"pong\":true"), "{reply}");
}

#[test]
fn chunked_writes_reassemble_into_one_frame() {
    let svc = service();
    let async_srv = AsyncServer::spawn("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let req = request(2, Version::InterProcessor, 11);
    let mut line = req.to_json().to_string_compact();
    line.push('\n');
    let mut c = TcpStream::connect(async_srv.addr()).unwrap();
    for chunk in line.as_bytes().chunks(7) {
        c.write_all(chunk).unwrap();
        c.flush().unwrap();
    }
    let mut r = BufReader::new(c);
    let mut reply = String::new();
    r.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"status\":\"ok\""), "{reply}");
    assert!(
        reply.contains(&format!("\"mapping\":{}", cold_mapping_bytes(&req))),
        "chunked request must map identically"
    );
}

#[test]
fn in_protocol_shutdown_answers_then_drains() {
    let svc = service();
    let async_srv = AsyncServer::spawn("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let req = request(3, Version::IntraProcessor, 21);
    let mut c = TcpStream::connect(async_srv.addr()).unwrap();
    // A map and a shutdown pipelined together: the map in flight when
    // the shutdown lands must still get its reply.
    let burst = format!(
        "{}\n{{\"id\":22,\"op\":\"shutdown\"}}\n",
        req.to_json().to_string_compact()
    );
    c.write_all(burst.as_bytes()).unwrap();
    let mut r = BufReader::new(c);
    let mut map_reply = String::new();
    r.read_line(&mut map_reply).unwrap();
    let mut shutdown_reply = String::new();
    r.read_line(&mut shutdown_reply).unwrap();
    let both = format!("{map_reply}{shutdown_reply}");
    assert!(both.contains("\"mapping\":"), "map reply missing: {both}");
    assert!(both.contains("\"stopping\":true"), "{both}");
    async_srv.join(); // exits on its own from the in-protocol shutdown
                      // New connections are refused once the loop is gone.
    assert!(
        TcpStream::connect(async_srv.addr())
            .map(|mut s| {
                let mut buf = [0u8; 1];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true),
        "listener should be closed after shutdown"
    );
}

#[test]
fn frame_too_large_is_rejected_with_typed_error() {
    let svc = service();
    let cfg = AsyncServerConfig {
        max_frame_bytes: 1024,
        ..AsyncServerConfig::default()
    };
    let async_srv = AsyncServer::spawn_with("127.0.0.1:0", Arc::clone(&svc), cfg).unwrap();
    let mut c = TcpStream::connect(async_srv.addr()).unwrap();
    c.write_all(&vec![b'x'; 4096]).unwrap(); // no terminator
    let mut r = BufReader::new(c);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("bad_request"), "{line}");
}
