//! Service-level property and integration tests: fingerprint stability,
//! cache byte-identity, typed admission errors, and the TCP/HTTP front
//! end.

use cachemap_core::{Mapper, MapperConfig, Version};
use cachemap_polyhedral::DataSpace;
use cachemap_service::server::{Server, ServerConfig};
use cachemap_service::{MapRequest, MapService, ServiceConfig, ServiceError};
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_util::json::{self, Json};
use cachemap_util::{check, fingerprint_json, ToJson};
use cachemap_workloads::{suite, Scale};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cachemap-svc-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(app_idx: usize, version: Version, id: u64) -> MapRequest {
    let apps = suite(Scale::Test);
    let app = &apps[app_idx % apps.len()];
    MapRequest {
        id,
        program: app.program.clone(),
        platform: PlatformConfig::tiny(),
        mapper: MapperConfig::default(),
        version,
        deadline_ms: None,
        tenant: None,
    }
}

fn cold_mapping_bytes(req: &MapRequest) -> String {
    let tree = HierarchyTree::from_config(&req.platform).unwrap();
    let data = DataSpace::new(&req.program.arrays, req.platform.chunk_bytes);
    Mapper::new(req.mapper)
        .map(&req.program, &data, &req.platform, &tree, req.version)
        .to_json()
        .to_string_compact()
}

/// Recursively shuffles the insertion order of every JSON object.
fn shuffle_json(v: &Json, g: &mut check::Gen) -> Json {
    match v {
        Json::Object(pairs) => {
            let mut shuffled: Vec<(String, Json)> = pairs
                .iter()
                .map(|(k, x)| (k.clone(), shuffle_json(x, g)))
                .collect();
            // Fisher–Yates with the deterministic generator.
            for i in (1..shuffled.len()).rev() {
                let j = g.usize_in(0, i);
                shuffled.swap(i, j);
            }
            Json::Object(shuffled)
        }
        Json::Array(items) => Json::Array(items.iter().map(|x| shuffle_json(x, g)).collect()),
        other => other.clone(),
    }
}

fn request_payload_json(req: &MapRequest) -> Json {
    Json::object(vec![
        ("program", req.program.to_json()),
        ("platform", req.platform.to_json()),
        ("mapper", req.mapper.to_json()),
        ("version", req.version.to_json()),
    ])
}

#[test]
fn fingerprint_invariant_under_field_order_and_reserialization() {
    let req = request(0, Version::InterProcessor, 1);
    let payload = request_payload_json(&req);
    let base = fingerprint_json(&payload);
    check::cases(0x5e_4f1ce, 50, |g| {
        let shuffled = shuffle_json(&payload, g);
        assert_eq!(fingerprint_json(&shuffled), base, "field order leaked");
        // Re-serialization: text → tree → text must not move the hash.
        let reparsed = json::parse(&shuffled.to_string_compact()).unwrap();
        assert_eq!(fingerprint_json(&reparsed), base, "reserialization leaked");
    });
}

#[test]
fn fingerprint_changes_under_any_single_field_perturbation() {
    let req = request(0, Version::InterProcessor, 1);
    let base = cachemap_core::fingerprint(&req.program, &req.platform, &req.mapper, req.version);

    let mut variants: Vec<(&str, MapRequest)> = Vec::new();

    // Nest perturbations.
    let mut r = req.clone();
    r.program.nests[0].compute_us += 1.0;
    variants.push(("nest compute_us", r));
    let mut r = req.clone();
    let mut loops = r.program.nests[0].space.loops().to_vec();
    loops[0].upper = loops[0]
        .upper
        .plus(&cachemap_polyhedral::AffineExpr::constant(-1));
    r.program.nests[0].space = cachemap_polyhedral::IterationSpace::new(loops);
    variants.push(("loop upper bound", r));
    let mut r = req.clone();
    r.program.arrays[0].elem_size += 4;
    variants.push(("array elem_size", r));

    // Topology perturbations.
    for (name, f) in [
        (
            "num_clients",
            (|p: &mut PlatformConfig| p.num_clients *= 2) as fn(&mut PlatformConfig),
        ),
        ("io_cache_chunks", |p| p.io_cache_chunks += 1),
        ("chunk_bytes", |p| p.chunk_bytes *= 2),
        ("net_hop_ns", |p| p.net_hop_ns += 1),
    ] {
        let mut r = req.clone();
        f(&mut r.platform);
        variants.push((name, r));
    }

    // Mapper-parameter perturbations.
    let mut r = req.clone();
    r.mapper.cluster.balance_threshold += 0.01;
    variants.push(("balance_threshold", r));
    let mut r = req.clone();
    r.mapper.schedule.alpha += 0.125;
    variants.push(("schedule alpha", r));
    let mut r = req.clone();
    r.mapper.refine_passes += 1;
    variants.push(("refine_passes", r));
    let mut r = req.clone();
    r.version = Version::InterProcessorScheduled;
    variants.push(("version", r));

    for (what, v) in &variants {
        let fp = cachemap_core::fingerprint(&v.program, &v.platform, &v.mapper, v.version);
        assert_ne!(fp, base, "perturbing {what} did not change the fingerprint");
    }
}

#[test]
fn cache_hit_is_byte_identical_to_cold_map() {
    let service = MapService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for (i, version) in [Version::InterProcessor, Version::InterProcessorScheduled]
        .into_iter()
        .enumerate()
    {
        let req = request(i, version, i as u64);
        let cold = cold_mapping_bytes(&req);

        let first = service.submit(req.clone()).unwrap();
        assert!(!first.cached, "first submission must miss");
        let second = service.submit(req.clone()).unwrap();
        assert!(second.cached, "second submission must hit");
        assert_eq!(first.fingerprint, second.fingerprint);

        for (path, resp) in [("miss", &first), ("hit", &second)] {
            assert_eq!(
                resp.mapping.to_json().to_string_compact(),
                cold,
                "{path} path diverged from the cold pipeline"
            );
        }
    }
    let stats = service.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 2);
    service.shutdown();
}

#[test]
fn zero_deadline_is_rejected_at_admission() {
    let service = MapService::start(ServiceConfig::default());
    let mut req = request(0, Version::InterProcessor, 7);
    req.deadline_ms = Some(0);
    match service.submit(req) {
        Err(ServiceError::DeadlineExceeded { budget_ms: 0 }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(service.stats().deadline_exceeded, 1);
}

#[test]
fn full_queue_rejects_with_queue_full() {
    // No workers and a zero-slot queue: admission must reject instantly.
    let service = MapService::start(ServiceConfig {
        workers: 0,
        queue_limit: 0,
        ..ServiceConfig::default()
    });
    match service.submit(request(0, Version::InterProcessor, 8)) {
        Err(ServiceError::QueueFull { depth: 0, limit: 0 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(service.stats().queue_full, 1);
}

#[test]
fn queued_request_times_out_with_deadline_exceeded() {
    // No workers: the job is admitted but never served.
    let service = MapService::start(ServiceConfig {
        workers: 0,
        queue_limit: 4,
        ..ServiceConfig::default()
    });
    let mut req = request(0, Version::InterProcessor, 9);
    req.deadline_ms = Some(25);
    match service.submit(req) {
        Err(ServiceError::DeadlineExceeded { budget_ms: 25 }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn shutdown_rejects_new_submissions() {
    let service = MapService::start(ServiceConfig::default());
    service.shutdown();
    match service.submit(request(0, Version::InterProcessor, 10)) {
        Err(ServiceError::Shutdown) => {}
        other => panic!("expected Shutdown, got {other:?}"),
    }
}

#[test]
fn invalid_platform_is_a_bad_request() {
    let service = MapService::start(ServiceConfig::default());
    let mut req = request(0, Version::InterProcessor, 11);
    req.platform.num_clients = 0;
    match service.submit(req) {
        Err(ServiceError::BadRequest { .. }) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    service.shutdown();
}

#[test]
fn concurrent_misses_coalesce_to_one_compute() {
    let service = Arc::new(MapService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let req = request(0, Version::InterProcessor, 0);
    let cold = cold_mapping_bytes(&req);

    const STORM: usize = 64;
    let barrier = Arc::new(Barrier::new(STORM));
    let handles: Vec<_> = (0..STORM)
        .map(|i| {
            let svc = Arc::clone(&service);
            let b = Arc::clone(&barrier);
            let mut r = req.clone();
            r.id = i as u64;
            std::thread::spawn(move || {
                b.wait();
                svc.submit(r)
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().unwrap().unwrap();
        assert_eq!(
            resp.mapping.to_json().to_string_compact(),
            cold,
            "a coalesced result diverged from the cold pipeline"
        );
    }

    let stats = service.stats();
    assert_eq!(
        stats.misses, 1,
        "{STORM} concurrent misses must run the pipeline exactly once"
    );
    // Every caller is accounted for: one leader (the miss), the rest
    // either coalesced onto its flight or hit the cache it filled.
    assert_eq!(stats.hits + stats.coalesced + stats.misses, STORM as u64);
    service.shutdown();
}

#[test]
fn tenant_quota_rejects_typed_and_is_counted() {
    let service = Arc::new(MapService::start(ServiceConfig {
        workers: 0, // nothing dequeues: the first request stays queued
        queue_limit: 8,
        tenant_quota: 1,
        ..ServiceConfig::default()
    }));
    let svc = Arc::clone(&service);
    let occupant = std::thread::spawn(move || {
        let mut r = request(0, Version::InterProcessor, 1);
        r.tenant = Some("acme".into());
        r.deadline_ms = Some(2_000);
        svc.submit(r)
    });
    // Wait until the occupant is actually queued.
    for _ in 0..400 {
        if service.stats().queue_depth >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(service.stats().queue_depth, 1, "occupant never queued");

    // Same tenant, different fingerprint: rejected at its quota.
    let mut r = request(1, Version::InterProcessor, 2);
    r.tenant = Some("acme".into());
    match service.submit(r) {
        Err(ServiceError::QuotaExceeded { tenant, quota: 1 }) => assert_eq!(tenant, "acme"),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    assert_eq!(service.stats().quota_exceeded, 1);

    match occupant.join().unwrap() {
        Err(ServiceError::DeadlineExceeded { .. }) | Err(ServiceError::Shutdown) => {}
        other => panic!("occupant should time out or be drained, got {other:?}"),
    }
}

#[test]
fn graceful_drain_rejects_queued_work_typed() {
    // No workers: the drain cannot serve the backlog, so shutdown must
    // answer it with a typed shutdown rejection — never a silent drop
    // or a raced channel disconnect.
    let service = Arc::new(MapService::start(ServiceConfig {
        workers: 0,
        queue_limit: 4,
        drain_limit_ms: 50,
        ..ServiceConfig::default()
    }));
    let svc = Arc::clone(&service);
    let queued = std::thread::spawn(move || {
        let mut r = request(0, Version::InterProcessor, 1);
        r.deadline_ms = Some(30_000);
        svc.submit(r)
    });
    for _ in 0..400 {
        if service.stats().queue_depth >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    service.shutdown();
    match queued.join().unwrap() {
        Err(ServiceError::Shutdown) => {}
        other => panic!("expected a typed Shutdown rejection, got {other:?}"),
    }
    assert!(
        service.stats().drain_seconds > 0.0,
        "the drain duration must be recorded"
    );
}

#[test]
fn graceful_drain_finishes_in_flight_work() {
    // With workers, a drain serves what was already admitted.
    let service = Arc::new(MapService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let svc = Arc::clone(&service);
            std::thread::spawn(move || svc.submit(request(i, Version::InterProcessor, i as u64)))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    service.shutdown();
    for h in handles {
        match h.join().unwrap() {
            Ok(_) | Err(ServiceError::Shutdown) | Err(ServiceError::DeadlineExceeded { .. }) => {}
            other => panic!("drain produced an untyped outcome: {other:?}"),
        }
    }
}

#[test]
fn l2_store_survives_restart_and_promotes_to_l1() {
    let dir = temp_dir("warm");
    let cfg = ServiceConfig {
        workers: 2,
        l2_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let req = request(0, Version::InterProcessor, 1);
    let cold = cold_mapping_bytes(&req);

    {
        let service = MapService::start(cfg.clone());
        let first = service.submit(req.clone()).unwrap();
        assert!(!first.cached, "cold run must miss");
        service.shutdown(); // flushes and seals the L2 segments
    }

    let service = MapService::start(cfg);
    let warm = service.submit(req.clone()).unwrap();
    assert!(warm.cached, "a restarted service must hit its L2 store");
    assert_eq!(
        warm.mapping.to_json().to_string_compact(),
        cold,
        "the L2 round trip must be byte-identical to the cold pipeline"
    );
    let stats = service.stats();
    assert_eq!(stats.l2_hits, 1);
    assert_eq!(stats.l2_promotions, 1);

    // The promotion means the next lookup is a pure L1 hit.
    let l1 = service.submit(req).unwrap();
    assert!(l1.cached);
    assert_eq!(service.stats().hits, 1);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scope_invalidation_sweeps_both_tiers_durably() {
    let dir = temp_dir("scope");
    let cfg = ServiceConfig {
        workers: 2,
        l2_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let req = request(0, Version::InterProcessor, 1);
    let scope = MapService::scope_fingerprint(&req.platform, req.version);

    {
        let service = MapService::start(cfg.clone());
        assert!(!service.submit(req.clone()).unwrap().cached);
        service.invalidate_scope(scope).unwrap();
        // L1 was swept: the same request recomputes.
        assert!(
            !service.submit(req.clone()).unwrap().cached,
            "scope invalidation must evict the L1 entry"
        );
        // Invalidate again and shut down with the tombstone as the
        // last durable word.
        service.invalidate_scope(scope).unwrap();
        service.shutdown();
    }

    // The tombstone survives restart: no warm hit.
    let service = MapService::start(cfg);
    assert!(
        !service.submit(req).unwrap().cached,
        "a durable scope tombstone must survive restart"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    json::parse(&reply).unwrap()
}

#[test]
fn tcp_round_trip_and_http_metrics() {
    let service = Arc::new(MapService::start(ServiceConfig::default()));
    let server = Server::spawn("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Liveness.
    let pong = send_line(&mut stream, &mut reader, "{\"op\":\"ping\",\"id\":1}");
    assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(pong.get("id").and_then(Json::as_u64), Some(1));

    // A mapping over the wire, twice: miss then hit, both byte-identical
    // to the cold pipeline.
    let req = request(0, Version::InterProcessor, 2);
    let cold = cold_mapping_bytes(&req);
    let line = req.to_json().to_string_compact();
    for (round, want_cached) in [("miss", false), ("hit", true)] {
        let resp = send_line(&mut stream, &mut reader, &line);
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "{round}"
        );
        assert_eq!(
            resp.get("cached"),
            Some(&Json::Bool(want_cached)),
            "{round}"
        );
        assert_eq!(
            resp.get("mapping").unwrap().to_string_compact(),
            cold,
            "{round} mapping bytes"
        );
    }

    // Malformed line → typed error, connection stays usable.
    let err = send_line(&mut stream, &mut reader, "{\"op\":\"fly\"}");
    assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );

    // In-protocol stats and metrics.
    let stats = send_line(&mut stream, &mut reader, "{\"op\":\"stats\",\"id\":3}");
    let hits = stats
        .get("stats")
        .and_then(|s| s.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(hits >= 1, "expected at least one cache hit, got {hits}");
    let metrics = send_line(&mut stream, &mut reader, "{\"op\":\"metrics\",\"id\":4}");
    let text = metrics
        .get("prometheus")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(text.contains("cachemap_service_cache_hits_total"));
    drop(reader);
    drop(stream);

    // Plain HTTP scrape on the same port.
    let mut http = TcpStream::connect(addr).unwrap();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    BufReader::new(http).read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(body.contains("# TYPE cachemap_service_requests_total counter"));
    assert!(body.contains("cachemap_service_requests_total{op=\"map\",outcome=\"ok_cached\"}"));
    assert!(body.contains("cachemap_service_request_latency_seconds_bucket"));

    server.shutdown();
    service.shutdown();
}

#[test]
fn connection_cap_rejects_with_typed_error_and_counts_it() {
    let service = Arc::new(MapService::start(ServiceConfig::default()));
    let server = Server::spawn_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Fill both slots and prove they work.
    let mut held = Vec::new();
    for id in 1..=2u64 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let pong = send_line(
            &mut stream,
            &mut reader,
            &format!("{{\"op\":\"ping\",\"id\":{id}}}"),
        );
        assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));
        held.push((stream, reader));
    }

    // The third connection gets one conn_limit line and is closed.
    let over = TcpStream::connect(addr).unwrap();
    let mut reply = String::new();
    BufReader::new(over).read_line(&mut reply).unwrap();
    let err = json::parse(&reply).unwrap();
    assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("conn_limit")
    );
    assert_eq!(service.front_end_rejections("conn_limit"), 1);

    // Releasing a slot readmits new connections.
    held.pop();
    // The slot is freed by the connection thread observing the close;
    // poll briefly rather than racing it.
    let mut admitted = false;
    for _ in 0..100 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(b"{\"op\":\"ping\",\"id\":9}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = json::parse(&line).unwrap();
        if resp.get("status").and_then(Json::as_str) == Some("ok") {
            admitted = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(admitted, "freed slot was never reused");

    server.shutdown();
    service.shutdown();
}

#[test]
fn idle_connection_is_closed_with_read_timeout() {
    let service = Arc::new(MapService::start(ServiceConfig::default()));
    let server = Server::spawn_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            read_timeout_ms: 50,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Send nothing: the server must answer with read_timeout and close.
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let err = json::parse(&reply).unwrap();
    assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("read_timeout")
    );
    // And the stream really is closed (EOF, not a hang).
    reply.clear();
    assert_eq!(reader.read_line(&mut reply).unwrap(), 0);
    assert_eq!(service.front_end_rejections("read_timeout"), 1);

    server.shutdown();
    service.shutdown();
}

#[test]
fn map_in_flight_during_protocol_shutdown_gets_typed_reply() {
    // Regression: `join()` after an in-protocol shutdown must drain
    // active connections through the same bounded-wait path as `Drop`,
    // so a map racing the shutdown is answered typed — never a closed
    // socket.
    let service = Arc::new(MapService::start(ServiceConfig::default()));
    let server = Server::spawn("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = server.addr();

    let mapper = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let req = request(2, Version::InterProcessor, 77);
        let line = req.to_json().to_string_compact();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply
    });

    // Concurrently, a second client asks the server to stop.
    std::thread::sleep(Duration::from_millis(5));
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let bye = send_line(&mut stream, &mut reader, "{\"op\":\"shutdown\",\"id\":9}");
    assert_eq!(bye.get("status").and_then(Json::as_str), Some("ok"));

    // Blocks until the accept loop exits, then waits out the in-flight
    // connection — the drain path under test.
    server.join();

    let reply = mapper.join().unwrap();
    assert!(
        !reply.trim().is_empty(),
        "in-flight map must get a reply line, not EOF"
    );
    let v = json::parse(reply.trim()).unwrap();
    match v.get("status").and_then(Json::as_str) {
        Some("ok") => {
            assert!(v.get("mapping").is_some(), "ok reply carries the mapping");
        }
        Some("error") => {
            let code = v
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .unwrap_or("");
            assert!(!code.is_empty(), "error reply must be typed: {reply}");
        }
        other => panic!("reply neither ok nor typed error: {other:?} in {reply}"),
    }
    service.shutdown();
}

use std::io::Read;
