//! Protocol dispatch shared by both front ends.
//!
//! The threaded [`crate::server::Server`] and the event-loop
//! [`crate::aserver::AsyncServer`] speak the same wire protocol:
//! JSON-lines requests ([`crate::proto`]) plus a plain-HTTP
//! `GET /metrics` escape hatch on the same port. This module is the
//! single implementation of "a decoded line goes in, reply bytes come
//! out" so the two servers cannot drift: both call [`dispatch_line`]
//! for JSON frames and [`http_response`] for HTTP request lines, and
//! both use the same typed rejection lines ([`conn_limit_reply`],
//! [`read_timeout_reply`]) for transport-level policy closes.
//!
//! Nothing here blocks on sockets — callers own all I/O. The only
//! blocking call is `MapService::submit_traced` inside a `map` op,
//! which parks the calling thread until the service's worker pool
//! answers; front ends must therefore invoke [`dispatch_line`] from a
//! thread that is allowed to wait (a connection thread, or the async
//! server's dispatcher pool — never the event loop itself).

use crate::proto::{self, Request};
use crate::{MapService, ServiceError};
use cachemap_util::ToJson;

/// The outcome of dispatching one JSON-lines request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatched {
    /// Reply bytes, without the trailing newline.
    pub reply: String,
    /// `true` when the request was an in-protocol `shutdown`: the reply
    /// must still be written, after which the front end should stop
    /// accepting and begin its drain sequence.
    pub shutdown: bool,
}

/// `true` when a first line announces an HTTP request (`GET` / `HEAD`)
/// rather than a JSON-lines frame.
pub fn is_http_request_line(line: &str) -> bool {
    line.starts_with("GET ") || line.starts_with("HEAD ")
}

/// Parses and executes one JSON-lines request against `service`,
/// producing the reply line. Malformed input yields a typed
/// `bad_request` error reply — never a panic, never a dropped
/// connection.
pub fn dispatch_line(service: &MapService, line: &str) -> Dispatched {
    // Ingress timing: the parse duration is handed to the service so a
    // request's trace timeline starts at the wire, not at admission.
    let parse_t0 = std::time::Instant::now();
    let parsed = proto::parse_request(line);
    let ingress_us = parse_t0.elapsed().as_micros() as u64;
    let mut shutdown = false;
    let reply = match parsed {
        Err(e) => proto::error_response_json(0, "unknown", &e).to_string_compact(),
        Ok(Request::Ping { id }) => {
            proto::ok_response_json(id, "ping", vec![("pong", cachemap_util::Json::Bool(true))])
                .to_string_compact()
        }
        Ok(Request::Metrics { id }) => proto::ok_response_json(
            id,
            "metrics",
            vec![(
                "prometheus",
                cachemap_util::Json::Str(service.metrics_text()),
            )],
        )
        .to_string_compact(),
        Ok(Request::Stats { id }) => {
            proto::ok_response_json(id, "stats", vec![("stats", service.stats().to_json())])
                .to_string_compact()
        }
        Ok(Request::Shutdown { id }) => {
            shutdown = true;
            proto::ok_response_json(
                id,
                "shutdown",
                vec![("stopping", cachemap_util::Json::Bool(true))],
            )
            .to_string_compact()
        }
        Ok(Request::Trace { id, trace_id }) => match service.trace_lookup(&trace_id) {
            Some(trace) => {
                proto::ok_response_json(id, "trace", vec![("trace", trace)]).to_string_compact()
            }
            None => proto::error_response_json(
                id,
                "trace",
                &ServiceError::NotFound {
                    what: format!("trace {trace_id}"),
                },
            )
            .to_string_compact(),
        },
        Ok(Request::Map(req)) => {
            let id = req.id;
            match service.submit_traced(*req, ingress_us) {
                Ok(mut resp) => match resp.trace.take() {
                    // Tracing off: exactly the untraced wire bytes.
                    None => resp.to_json().to_string_compact(),
                    // Tracing on: serialize the base response (that IS
                    // the serialize stage), finalize the trace with the
                    // measured duration, and splice it in as the last
                    // field — the only way the serialize stage can
                    // describe the serialization it rides in.
                    Some(pending) => {
                        let ser_t0 = std::time::Instant::now();
                        let base = resp.to_json().to_string_compact();
                        let trace = service.finalize_trace(pending, ser_t0.elapsed());
                        format!(
                            "{},\"trace\":{}}}",
                            &base[..base.len() - 1],
                            trace.to_string_compact()
                        )
                    }
                },
                Err(e) => proto::error_response_json(id, "map", &e).to_string_compact(),
            }
        }
    };
    Dispatched { reply, shutdown }
}

/// Builds the complete HTTP response (status line, headers, body) for
/// an already-read request line whose headers have been drained.
/// `/metrics` serves the Prometheus text exposition; everything else
/// is a 404. The response always closes the connection.
pub fn http_response(service: &MapService, request_line: &str) -> String {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = if path == "/metrics" {
        ("200 OK", service.metrics_text())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// The typed rejection line written to a connection refused at the
/// door because `active` connections already hold the `limit` slots.
pub fn conn_limit_reply(active: usize, limit: usize) -> String {
    let err = ServiceError::ConnLimit { active, limit };
    proto::error_response_json(0, "connect", &err).to_string_compact()
}

/// The typed rejection line written to a connection idle past its
/// read budget before it is closed.
pub fn read_timeout_reply(budget_ms: u64) -> String {
    let err = ServiceError::ReadTimeout { budget_ms };
    proto::error_response_json(0, "read", &err).to_string_compact()
}
