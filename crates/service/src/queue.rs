//! Per-tenant weighted-fair admission queue.
//!
//! The bounded admission queue used to be one FIFO: a single tenant
//! flooding the service could starve everyone behind it. This queue
//! keeps one lane per tenant and serves lanes **weighted round-robin**
//! (a lane with weight *w* may dequeue up to *w* jobs per rotation
//! visit), so a burst from one tenant delays its own lane, not the
//! others. Two admission limits apply on push:
//!
//! * a **global** bound (`limit`) — the existing reject-on-full
//!   backpressure;
//! * a **per-tenant quota** (`tenant_quota`, `0` = unlimited) — a tenant
//!   that has `quota` jobs queued is rejected with a typed
//!   `quota_exceeded` before it can crowd the shared queue.
//!
//! Lanes are created on first use and keep their rotation position for
//! the lifetime of the queue, so dequeue order is deterministic given
//! the push sequence — there is no clock or randomness anywhere.

use std::collections::VecDeque;

/// Why a push was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The global queue limit was reached.
    Full {
        /// Total queued jobs observed at rejection.
        depth: usize,
        /// The configured global limit.
        limit: usize,
    },
    /// The per-tenant quota was reached.
    Quota {
        /// The tenant that hit its quota.
        tenant: String,
        /// The configured per-tenant quota.
        quota: usize,
    },
}

struct Lane<T> {
    tenant: String,
    weight: u32,
    jobs: VecDeque<T>,
}

/// A bounded, per-tenant weighted-fair FIFO (see module docs).
pub struct FairQueue<T> {
    lanes: Vec<Lane<T>>,
    /// Rotation position: index of the lane currently being served.
    cursor: usize,
    /// Dequeues the current lane may still take this rotation visit.
    credit: u32,
    len: usize,
    limit: usize,
    tenant_quota: usize,
    weights: Vec<(String, u32)>,
}

impl<T> FairQueue<T> {
    /// An empty queue with a global `limit`, per-tenant `tenant_quota`
    /// (`0` = unlimited), and explicit per-tenant `weights` (tenants not
    /// listed get weight 1).
    pub fn new(limit: usize, tenant_quota: usize, weights: Vec<(String, u32)>) -> Self {
        FairQueue {
            lanes: Vec::new(),
            cursor: 0,
            credit: 0,
            len: 0,
            limit,
            tenant_quota,
            weights,
        }
    }

    /// Total queued jobs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued jobs for one tenant (`0` for unknown tenants).
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.lanes
            .iter()
            .find(|l| l.tenant == tenant)
            .map_or(0, |l| l.jobs.len())
    }

    fn weight_for(&self, tenant: &str) -> u32 {
        self.weights
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(1, |(_, w)| (*w).max(1))
    }

    /// Enqueues `item` on `tenant`'s lane, enforcing the per-tenant
    /// quota first (a tenant at quota is turned away even when the
    /// shared queue has room) and then the global limit.
    pub fn push(&mut self, tenant: &str, item: T) -> Result<(), PushError> {
        let lane_depth = self.tenant_depth(tenant);
        if self.tenant_quota > 0 && lane_depth >= self.tenant_quota {
            return Err(PushError::Quota {
                tenant: tenant.to_string(),
                quota: self.tenant_quota,
            });
        }
        if self.len >= self.limit {
            return Err(PushError::Full {
                depth: self.len,
                limit: self.limit,
            });
        }
        match self.lanes.iter_mut().find(|l| l.tenant == tenant) {
            Some(lane) => lane.jobs.push_back(item),
            None => {
                let weight = self.weight_for(tenant);
                self.lanes.push(Lane {
                    tenant: tenant.to_string(),
                    weight,
                    jobs: VecDeque::from([item]),
                });
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Dequeues the next job in weighted round-robin order.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.cursor >= self.lanes.len() {
                self.cursor = 0;
            }
            let lane = &mut self.lanes[self.cursor];
            if self.credit == 0 {
                self.credit = lane.weight;
            }
            if let Some(job) = lane.jobs.pop_front() {
                self.len -= 1;
                self.credit -= 1;
                if self.credit == 0 || lane.jobs.is_empty() {
                    self.cursor += 1;
                    self.credit = 0;
                }
                return Some(job);
            }
            self.cursor += 1;
            self.credit = 0;
        }
    }

    /// Per-tenant queued-job counts for every lane seen so far, in lane
    /// rotation order — context attached to flight-recorder dumps.
    pub fn depths(&self) -> Vec<(String, usize)> {
        self.lanes
            .iter()
            .map(|l| (l.tenant.clone(), l.jobs.len()))
            .collect()
    }

    /// Removes and returns everything still queued (drain-time sweep).
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for lane in &mut self.lanes {
            out.extend(lane.jobs.drain(..));
        }
        self.len = 0;
        self.credit = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_is_fifo() {
        let mut q: FairQueue<u32> = FairQueue::new(8, 0, vec![]);
        for x in 0..5 {
            q.push("a", x).unwrap();
        }
        assert_eq!(
            (0..5).map(|_| q.pop().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn rotation_interleaves_tenants_fairly() {
        let mut q: FairQueue<&str> = FairQueue::new(16, 0, vec![]);
        for x in ["a1", "a2", "a3"] {
            q.push("a", x).unwrap();
        }
        for x in ["b1", "b2"] {
            q.push("b", x).unwrap();
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        // Equal weights: strict alternation while both lanes have work.
        assert_eq!(order, vec!["a1", "b1", "a2", "b2", "a3"]);
    }

    #[test]
    fn weights_skew_the_rotation() {
        let mut q: FairQueue<&str> = FairQueue::new(16, 0, vec![("a".to_string(), 2)]);
        for x in ["a1", "a2", "a3", "a4"] {
            q.push("a", x).unwrap();
        }
        for x in ["b1", "b2"] {
            q.push("b", x).unwrap();
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        // Weight 2 lane serves two jobs per visit.
        assert_eq!(order, vec!["a1", "a2", "b1", "a3", "a4", "b2"]);
    }

    #[test]
    fn global_limit_and_tenant_quota_reject_typed() {
        let mut q: FairQueue<u32> = FairQueue::new(3, 2, vec![]);
        q.push("a", 1).unwrap();
        q.push("a", 2).unwrap();
        assert_eq!(
            q.push("a", 3),
            Err(PushError::Quota {
                tenant: "a".into(),
                quota: 2
            }),
            "tenant quota fires before the global limit"
        );
        q.push("b", 4).unwrap();
        q.push("c", 5).unwrap_err(); // global limit (3) reached
        assert_eq!(q.push("c", 5), Err(PushError::Full { depth: 3, limit: 3 }));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn quota_frees_up_as_jobs_are_served() {
        let mut q: FairQueue<u32> = FairQueue::new(8, 1, vec![]);
        q.push("a", 1).unwrap();
        assert!(matches!(q.push("a", 2), Err(PushError::Quota { .. })));
        assert_eq!(q.pop(), Some(1));
        q.push("a", 2).unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn drain_returns_everything() {
        let mut q: FairQueue<u32> = FairQueue::new(8, 0, vec![]);
        q.push("a", 1).unwrap();
        q.push("b", 2).unwrap();
        q.push("a", 3).unwrap();
        let mut drained = q.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
