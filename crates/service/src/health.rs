//! Active health checking: a K-of-M ping state machine per replica.
//!
//! The router pings every backend on a fixed cadence (each ping bounded
//! by a deadline) and feeds the outcomes into a [`HealthTracker`], a
//! four-state machine:
//!
//! ```text
//!             k consecutive ping failures          m more failures
//!   HEALTHY ────────────────────────────▶ SUSPECT ───────────────▶ DOWN
//!      ▲                                    │                       │
//!      │ one success                        │ one success           │ first success
//!      │◀───────────────────────────────────┘                       ▼
//!      │                 r consecutive successes                 PROBING
//!      └◀────────────────────────────────────────────────────────────┘
//!                          (any failure ⇒ back to DOWN)
//! ```
//!
//! `Suspect` replicas still take traffic (the breaker handles per-call
//! shedding); `Down` replicas are skipped in ring order entirely, and
//! `Probing` replicas take traffic again while they re-earn `Healthy`.
//! The tracker is a pure state machine — no clock, no I/O — so the
//! simulated-time harness drives it deterministically.

/// Health-check thresholds (the K-of-M knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive ping failures before a healthy replica is suspect.
    pub suspect_after: u32,
    /// Consecutive ping failures (total) before a suspect replica is
    /// declared down.
    pub down_after: u32,
    /// Consecutive ping successes a probing replica needs to be
    /// declared healthy again.
    pub up_after: u32,
    /// Per-ping deadline in milliseconds (TCP backends set this as the
    /// read timeout; in-process pings answer immediately).
    pub ping_deadline_ms: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_after: 1,
            down_after: 3,
            up_after: 2,
            ping_deadline_ms: 250,
        }
    }
}

/// Replica health as seen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Pings answer; full traffic.
    Healthy,
    /// Recent ping failures; traffic continues, watched closely.
    Suspect,
    /// Ping-dead; skipped in ring order.
    Down,
    /// Answering again after `Down`; earning back `Healthy`.
    Probing,
}

impl HealthState {
    /// Stable lowercase label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
            HealthState::Probing => "probing",
        }
    }

    /// Whether the router should route requests to this replica.
    pub fn takes_traffic(&self) -> bool {
        !matches!(self, HealthState::Down)
    }
}

/// Per-replica health state machine; see the module docs.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    cfg: HealthConfig,
    state: HealthState,
    fail_streak: u32,
    ok_streak: u32,
}

impl HealthTracker {
    /// A tracker that assumes the replica starts healthy.
    pub fn new(cfg: HealthConfig) -> HealthTracker {
        HealthTracker {
            cfg,
            state: HealthState::Healthy,
            fail_streak: 0,
            ok_streak: 0,
        }
    }

    /// Feeds one ping outcome; returns `Some(new_state)` on transition.
    pub fn record_ping(&mut self, ok: bool) -> Option<HealthState> {
        let before = self.state;
        if ok {
            self.fail_streak = 0;
            self.ok_streak += 1;
        } else {
            self.ok_streak = 0;
            self.fail_streak += 1;
        }
        self.state = match self.state {
            HealthState::Healthy => {
                if !ok && self.fail_streak >= self.cfg.suspect_after.max(1) {
                    HealthState::Suspect
                } else {
                    HealthState::Healthy
                }
            }
            HealthState::Suspect => {
                if ok {
                    HealthState::Healthy
                } else if self.fail_streak >= self.cfg.down_after.max(1) {
                    HealthState::Down
                } else {
                    HealthState::Suspect
                }
            }
            HealthState::Down => {
                if ok {
                    if self.ok_streak >= self.cfg.up_after.max(1) {
                        HealthState::Healthy
                    } else {
                        HealthState::Probing
                    }
                } else {
                    HealthState::Down
                }
            }
            HealthState::Probing => {
                if !ok {
                    HealthState::Down
                } else if self.ok_streak >= self.cfg.up_after.max(1) {
                    HealthState::Healthy
                } else {
                    HealthState::Probing
                }
            }
        };
        (self.state != before).then_some(self.state)
    }

    /// Current health state.
    pub fn state(&self) -> HealthState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            suspect_after: 1,
            down_after: 3,
            up_after: 2,
            ping_deadline_ms: 100,
        }
    }

    /// Replays a ping sequence and returns every transition.
    fn replay(outcomes: &[bool]) -> Vec<HealthState> {
        let mut t = HealthTracker::new(cfg());
        outcomes
            .iter()
            .filter_map(|&ok| t.record_ping(ok))
            .collect()
    }

    #[test]
    fn healthy_to_suspect_to_down_on_failure_streak() {
        assert_eq!(
            replay(&[true, false, false, false]),
            vec![HealthState::Suspect, HealthState::Down]
        );
    }

    #[test]
    fn one_success_rescues_a_suspect() {
        assert_eq!(
            replay(&[false, true]),
            vec![HealthState::Suspect, HealthState::Healthy]
        );
    }

    #[test]
    fn down_recovers_through_probing() {
        assert_eq!(
            replay(&[false, false, false, true, true]),
            vec![
                HealthState::Suspect,
                HealthState::Down,
                HealthState::Probing,
                HealthState::Healthy
            ]
        );
    }

    #[test]
    fn a_probing_failure_falls_back_to_down() {
        assert_eq!(
            replay(&[false, false, false, true, false, true, true]),
            vec![
                HealthState::Suspect,
                HealthState::Down,
                HealthState::Probing,
                HealthState::Down,
                HealthState::Probing,
                HealthState::Healthy
            ]
        );
    }

    #[test]
    fn flapping_never_reaches_down_with_intervening_successes() {
        let mut t = HealthTracker::new(cfg());
        for _ in 0..10 {
            t.record_ping(false);
            t.record_ping(true);
        }
        assert_eq!(t.state(), HealthState::Healthy);
    }

    #[test]
    fn up_after_one_promotes_straight_to_healthy() {
        let mut t = HealthTracker::new(HealthConfig {
            up_after: 1,
            ..cfg()
        });
        for _ in 0..3 {
            t.record_ping(false);
        }
        assert_eq!(t.state(), HealthState::Down);
        assert_eq!(t.record_ping(true), Some(HealthState::Healthy));
    }
}
