//! The event-loop front end: [`AsyncServer`] serves the same protocol
//! as [`crate::server::Server`] on a `cachemap-aio` event loop.
//!
//! One `aio` thread owns every socket (10k+ connections on a few MB
//! instead of 10k thread stacks); decoded frames arrive in **batches**
//! at a small dispatcher pool which (1) dedups byte-identical request
//! lines inside each batch — the same-fingerprint case, answered once
//! and fanned out verbatim — and (2) runs the shared
//! [`crate::dispatch`] protocol module, so the two front ends cannot
//! disagree about a single reply byte. Replies flow back through the
//! loop's completion queue; a stale connection generation drops the
//! reply instead of writing into a recycled slot.
//!
//! Loop-level health is exported on the *service's* metric registry
//! (`cachemap_aio_*`, preregistered at zero so the first scrape
//! carries the schema), and an accept-loop stall — the loop thread
//! overrunning its poll deadline past the grace — fires the service
//! flight recorder's `accept_stall` trigger while the evidence is
//! fresh.

use crate::dispatch;
use crate::MapService;
use cachemap_aio as aio;
use cachemap_aio::{Completion, CompletionQueue, Dispatch, FaultPlan, Frame, Inbound, LoopStats};
use cachemap_util::{Clock, Json};
use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Batch-size histogram buckets (requests per dispatched batch).
const BATCH_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Async front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct AsyncServerConfig {
    /// Connection slots (10k-connection serving is the point).
    pub max_connections: usize,
    /// Idle read budget per connection, ms (`0` disables).
    pub idle_timeout_ms: u64,
    /// Batch window in microseconds (`0` = same-poll-cycle batching).
    pub batch_window_us: u64,
    /// Dispatch a batch once it holds this many frames.
    pub batch_max: usize,
    /// Dispatcher threads running protocol work (each may block on the
    /// service's admission queue, so more than one overlaps waits).
    pub dispatchers: usize,
    /// Maximum bytes of a single request frame.
    pub max_frame_bytes: usize,
    /// Per-connection write-buffer cap before reads pause.
    pub write_buf_limit: usize,
    /// Time source for deadlines (simulated in tests).
    pub clock: Arc<Clock>,
    /// Connection-level fault injection (tests only; off by default).
    pub faults: FaultPlan,
    /// Poll-cycle overrun that counts as an accept-loop stall, ms.
    pub stall_grace_ms: u64,
}

impl Default for AsyncServerConfig {
    fn default() -> Self {
        AsyncServerConfig {
            max_connections: 10_240,
            idle_timeout_ms: 30_000,
            batch_window_us: 1_000,
            batch_max: 64,
            dispatchers: 4,
            max_frame_bytes: 1 << 20,
            write_buf_limit: 256 << 10,
            clock: Arc::new(Clock::real()),
            faults: FaultPlan::none(),
            stall_grace_ms: 250,
        }
    }
}

/// Last-exported loop-counter values, for delta export into the
/// service registry (counters must only ever grow).
#[derive(Default)]
struct StatCursor {
    wakeups: u64,
    backpressure: u64,
    accepted: u64,
    rejected: u64,
    frames: u64,
    batches: u64,
    idle_timeouts: u64,
    stalls: u64,
}

/// The [`Dispatch`] implementation: a bounded handoff queue feeding a
/// small worker pool.
struct Batcher {
    service: Arc<MapService>,
    queue: Mutex<VecDeque<(Vec<Inbound>, Arc<CompletionQueue>)>>,
    available: Condvar,
    stop: AtomicBool,
    /// Loop stats, wired after the loop spawns (the loop owns them).
    loop_stats: OnceLock<Arc<LoopStats>>,
    cursor: Mutex<StatCursor>,
}

impl Batcher {
    /// Folds the loop's atomic counters into the service registry as
    /// deltas (and the connection gauge as a level). Runs before each
    /// batch, so a `metrics`/`GET /metrics` request in the batch
    /// scrapes fresh values.
    fn sync_metrics(&self) {
        let Some(stats) = self.loop_stats.get() else {
            return;
        };
        let mut cur = self.cursor.lock().expect("stat cursor poisoned");
        let mut m = self.service.inner.metrics.lock().expect("metrics poisoned");
        m.gauge_set(
            "cachemap_aio_connections",
            "Open connections on the async front end",
            &[],
            stats.connections.load(Ordering::Relaxed) as f64,
        );
        let counter =
            |m: &mut cachemap_obs::Registry, name: &str, help: &str, last: &mut u64, now: u64| {
                m.counter_add(name, help, &[], now.saturating_sub(*last));
                *last = now;
            };
        counter(
            &mut m,
            "cachemap_aio_wakeups_total",
            "Event-loop poll returns",
            &mut cur.wakeups,
            stats.wakeups_total.load(Ordering::Relaxed),
        );
        counter(
            &mut m,
            "cachemap_aio_backpressure_total",
            "Connections paused for unread reply backlog",
            &mut cur.backpressure,
            stats.backpressure_total.load(Ordering::Relaxed),
        );
        counter(
            &mut m,
            "cachemap_aio_accepted_total",
            "Connections accepted by the async front end",
            &mut cur.accepted,
            stats.accepted_total.load(Ordering::Relaxed),
        );
        counter(
            &mut m,
            "cachemap_aio_rejected_total",
            "Connections rejected at the async front end's capacity cap",
            &mut cur.rejected,
            stats.rejected_capacity_total.load(Ordering::Relaxed),
        );
        counter(
            &mut m,
            "cachemap_aio_frames_total",
            "Request frames decoded by the async front end",
            &mut cur.frames,
            stats.frames_total.load(Ordering::Relaxed),
        );
        counter(
            &mut m,
            "cachemap_aio_batches_total",
            "Frame batches dispatched to the worker pool",
            &mut cur.batches,
            stats.batches_total.load(Ordering::Relaxed),
        );
        counter(
            &mut m,
            "cachemap_aio_idle_timeouts_total",
            "Connections closed at the idle read deadline",
            &mut cur.idle_timeouts,
            stats.idle_timeouts_total.load(Ordering::Relaxed),
        );
        counter(
            &mut m,
            "cachemap_aio_stalls_total",
            "Accept-loop poll cycles that overran the stall grace",
            &mut cur.stalls,
            stats.stalls_total.load(Ordering::Relaxed),
        );
    }

    /// Declares every `cachemap_aio_*` family at zero so the first
    /// scrape already carries the schema.
    fn preregister(&self) {
        self.sync_metrics_zero();
    }

    fn sync_metrics_zero(&self) {
        let mut m = self.service.inner.metrics.lock().expect("metrics poisoned");
        m.gauge_set(
            "cachemap_aio_connections",
            "Open connections on the async front end",
            &[],
            0.0,
        );
        for (name, help) in [
            ("cachemap_aio_wakeups_total", "Event-loop poll returns"),
            (
                "cachemap_aio_backpressure_total",
                "Connections paused for unread reply backlog",
            ),
            (
                "cachemap_aio_accepted_total",
                "Connections accepted by the async front end",
            ),
            (
                "cachemap_aio_rejected_total",
                "Connections rejected at the async front end's capacity cap",
            ),
            (
                "cachemap_aio_frames_total",
                "Request frames decoded by the async front end",
            ),
            (
                "cachemap_aio_batches_total",
                "Frame batches dispatched to the worker pool",
            ),
            (
                "cachemap_aio_idle_timeouts_total",
                "Connections closed at the idle read deadline",
            ),
            (
                "cachemap_aio_stalls_total",
                "Accept-loop poll cycles that overran the stall grace",
            ),
        ] {
            m.counter_add(name, help, &[], 0);
        }
        m.histogram_declare(
            "cachemap_aio_batch_size",
            "Requests per dispatched batch",
            &BATCH_BUCKETS,
            &[],
        );
    }

    /// One dispatcher thread: drain batches, dedup identical lines,
    /// run the shared protocol dispatch, fan replies out.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("batch queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break Some(job);
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (guard, _) = self
                        .available
                        .wait_timeout(q, std::time::Duration::from_millis(100))
                        .expect("batch queue poisoned");
                    q = guard;
                }
            };
            let Some((batch, done)) = job else { return };
            self.sync_metrics();
            {
                let mut m = self.service.inner.metrics.lock().expect("metrics poisoned");
                m.histogram_observe(
                    "cachemap_aio_batch_size",
                    "Requests per dispatched batch",
                    &BATCH_BUCKETS,
                    &[],
                    batch.len() as f64,
                );
            }
            self.run_batch(batch, &done);
        }
    }

    fn run_batch(&self, batch: Vec<Inbound>, done: &Arc<CompletionQueue>) {
        // Group byte-identical JSON lines: the service coalesces
        // concurrent same-fingerprint *computes*; this dedups the
        // parse/lookup/serialize around them too, answering once and
        // fanning the reply bytes out verbatim. (Identical lines imply
        // identical fingerprints — the conservative approximation that
        // needs no parsing.)
        // Completions must still be *emitted* in arrival order: the
        // loop writes them to each connection as they land, and a
        // client pipelining A,B,A expects its replies in that order —
        // answering group-by-group would reorder them.
        fn line_of(frame: &Frame) -> Option<&str> {
            match frame {
                Frame::Line(l) => Some(l.as_str()),
                Frame::Http(_) => None,
            }
        }
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, inb) in batch.iter().enumerate() {
            if let Some(line) = line_of(&inb.frame) {
                match groups
                    .iter_mut()
                    .find(|m| line_of(&batch[m[0]].frame) == Some(line))
                {
                    Some(members) => members.push(i),
                    None => groups.push(vec![i]),
                }
            }
        }
        let mut results: Vec<Option<(Vec<u8>, bool)>> = (0..batch.len()).map(|_| None).collect();
        for members in groups {
            let line = line_of(&batch[members[0]].frame).expect("groups hold lines");
            let out = dispatch::dispatch_line(&self.service, line);
            let mut bytes = out.reply.into_bytes();
            bytes.push(b'\n');
            let last = members.len() - 1;
            for (k, &i) in members.iter().enumerate() {
                let fanned = if k == last {
                    std::mem::take(&mut bytes)
                } else {
                    bytes.clone()
                };
                results[i] = Some((fanned, out.shutdown));
            }
        }
        for (i, inb) in batch.into_iter().enumerate() {
            match inb.frame {
                Frame::Http(request_line) => {
                    let reply = dispatch::http_response(&self.service, &request_line);
                    done.complete(Completion {
                        token: inb.token,
                        gen: inb.gen,
                        seq: inb.seq,
                        bytes: reply.into_bytes(),
                        close_after: true,
                        shutdown: false,
                    });
                }
                Frame::Line(_) => {
                    let Some((bytes, shutdown)) = results[i].take() else {
                        continue;
                    };
                    done.complete(Completion {
                        token: inb.token,
                        gen: inb.gen,
                        seq: inb.seq,
                        bytes,
                        close_after: false,
                        shutdown,
                    });
                }
            }
        }
    }
}

impl Dispatch for Batcher {
    fn dispatch(&self, batch: Vec<Inbound>, done: &Arc<CompletionQueue>) {
        let mut q = self.queue.lock().expect("batch queue poisoned");
        q.push_back((batch, Arc::clone(done)));
        drop(q);
        self.available.notify_one();
    }

    fn on_stall(&self, gap_ns: u64) {
        // The loop thread missed its own deadline: capture the service
        // state while the cause is still in the flight ring.
        self.service.inner.flight_dump(
            "accept_stall",
            vec![("gap_ms", Json::UInt(gap_ns / 1_000_000))],
        );
    }

    fn on_idle_timeout(&self) {
        self.service.count_front_end_rejection("read_timeout");
    }
}

/// A running async front end. Dropping it shuts it down and joins its
/// threads; the fronted [`MapService`] is left running.
pub struct AsyncServer {
    handle: aio::Handle,
    service: Arc<MapService>,
    batcher: Arc<Batcher>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl AsyncServer {
    /// Binds `bind` (port 0 for ephemeral) and starts the loop plus
    /// dispatcher pool with default tuning.
    pub fn spawn(bind: &str, service: Arc<MapService>) -> io::Result<AsyncServer> {
        Self::spawn_with(bind, service, AsyncServerConfig::default())
    }

    /// [`AsyncServer::spawn`] with explicit tuning.
    pub fn spawn_with(
        bind: &str,
        service: Arc<MapService>,
        cfg: AsyncServerConfig,
    ) -> io::Result<AsyncServer> {
        let batcher = Arc::new(Batcher {
            service: Arc::clone(&service),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            loop_stats: OnceLock::new(),
            cursor: Mutex::new(StatCursor::default()),
        });
        batcher.preregister();
        let loop_cfg = aio::EventLoopConfig {
            bind: bind.to_string(),
            max_connections: cfg.max_connections,
            idle_timeout_ms: cfg.idle_timeout_ms,
            batch_window_us: cfg.batch_window_us,
            batch_max: cfg.batch_max,
            max_frame_bytes: cfg.max_frame_bytes,
            write_buf_limit: cfg.write_buf_limit,
            clock: Arc::clone(&cfg.clock),
            faults: cfg.faults,
            stall_grace_ms: cfg.stall_grace_ms,
            over_capacity_reply: dispatch::conn_limit_reply(
                cfg.max_connections,
                cfg.max_connections,
            ),
            idle_timeout_reply: dispatch::read_timeout_reply(cfg.idle_timeout_ms),
            frame_too_large_reply: crate::proto::error_response_json(
                0,
                "read",
                &crate::ServiceError::BadRequest {
                    message: format!("frame exceeds {} bytes", cfg.max_frame_bytes),
                },
            )
            .to_string_compact(),
        };
        let handle = aio::spawn(loop_cfg, Arc::clone(&batcher) as Arc<dyn Dispatch>)?;
        let _ = batcher.loop_stats.set(Arc::clone(handle.stats()));
        let mut workers = Vec::with_capacity(cfg.dispatchers.max(1));
        for i in 0..cfg.dispatchers.max(1) {
            let b = Arc::clone(&batcher);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("aserver-dispatch-{i}"))
                    .spawn(move || b.worker_loop())?,
            );
        }
        Ok(AsyncServer {
            handle,
            service,
            batcher,
            workers: Mutex::new(workers),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The service this front end serves.
    pub fn service(&self) -> &Arc<MapService> {
        &self.service
    }

    /// Live loop counters (connections, batches, stalls…).
    pub fn loop_stats(&self) -> &Arc<LoopStats> {
        self.handle.stats()
    }

    /// Advances a simulated clock and re-evaluates deadlines; no-op on
    /// a real clock. Lets timeout tests run without sleeping.
    pub fn advance_clock(&self, ns: u64) {
        self.handle.advance_clock(ns);
    }

    /// Graceful stop: no new connections, in-flight requests answered
    /// and written, then threads exit. Idempotent; does not block.
    pub fn shutdown(&self) {
        self.handle.shutdown();
    }

    /// Immediate stop: sockets torn down mid-write. For crash tests.
    pub fn kill(&self) {
        self.handle.kill();
    }

    /// Blocks until the loop and dispatcher pool have exited (after a
    /// [`AsyncServer::shutdown`], [`AsyncServer::kill`], or an
    /// in-protocol `shutdown` request).
    pub fn join(&self) {
        self.handle.join();
        self.batcher.stop.store(true, Ordering::SeqCst);
        self.batcher.available.notify_all();
        let mut workers = self.workers.lock().expect("workers poisoned");
        for w in workers.drain(..) {
            let _ = w.join();
        }
        // Export the final counter values so a post-shutdown scrape of
        // the service registry reflects everything the loop did.
        self.batcher.sync_metrics();
    }
}

impl Drop for AsyncServer {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}
