//! # cachemap-service — mapping as a service.
//!
//! The HPDC'10 pipeline computes one mapping per loop nest; the
//! production system this workspace grows toward must answer *repeated*
//! mapping queries from many tenants in microseconds. This crate turns
//! the mapper into a long-lived, concurrent, cache-fronted service:
//!
//! * [`MapService`] — the in-process engine: a fixed worker thread pool
//!   behind a **weighted-fair admission queue** (per-tenant quotas and
//!   lanes, reject-on-full backpressure, per-request deadlines, typed
//!   [`ServiceError`] rejections), fronted by a two-tier mapping cache
//!   keyed by the canonical content fingerprint of `(program, platform,
//!   params, version)`: a sharded in-memory LRU (L1) over an optional
//!   crash-durable disk store (L2, see `cachemap_storage::L2Store`).
//!   Concurrent misses on one fingerprint are **coalesced** (see
//!   `cachemap_util::CoalesceMap`): exactly one pipeline run, everyone
//!   inherits the result. Because the pipeline is deterministic, a
//!   cache hit at either tier returns a mapping byte-identical to a
//!   cold run — memoization is semantically invisible (property-tested
//!   in `tests/service.rs`).
//! * [`server::Server`] — the TCP front end: JSON-lines request/response
//!   (see [`proto`]) plus a plain-HTTP `GET /metrics` Prometheus
//!   endpoint on the same port, backed by an `obs::Registry`.
//!
//! When [`ServiceConfig::tracing`] is on, every request additionally
//! carries a deterministic per-request trace — stage-by-stage latency
//! attribution from wire parse to response serialization, with the
//! mapper's `Profile` span tree linked under the compute stage — and a
//! bounded flight recorder keeps the most recent traces in memory,
//! dumping them to `flight-*.json` on anomalies (slow request,
//! rejection burst, drain, crash recovery). Per-tenant SLO latency
//! histograms and burn-rate gauges ride on the same registry whether or
//! not tracing is enabled. Tracing is free when off: responses are
//! byte-identical and the instrumented paths cost one branch each
//! (guarded by `benches/trace_overhead.rs`).
//!
//! Shutdown is a **graceful drain**: new submissions are rejected with
//! a typed `shutdown` error, queued work is finished (or
//! deadline-rejected) within `drain_limit_ms`, dirty L2 segments are
//! flushed and sealed, then workers are joined. [`MapService::kill`]
//! simulates a crash (no flush) for recovery testing.
//!
//! ```no_run
//! use cachemap_service::{MapService, ServiceConfig, server::Server};
//! use std::sync::Arc;
//!
//! let service = Arc::new(MapService::start(ServiceConfig::default()));
//! let server = Server::spawn("127.0.0.1:7411", Arc::clone(&service)).unwrap();
//! println!("serving mappings on {}", server.addr());
//! # server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aserver;
pub mod dispatch;
pub mod error;
pub mod health;
pub mod netfault;
pub mod proto;
pub mod queue;
pub mod router;
pub mod server;

pub use error::ServiceError;
pub use health::{HealthConfig, HealthState, HealthTracker};
pub use netfault::NetFaultPlan;
pub use proto::{MapRequest, MapResponse, Request};
pub use router::{Router, RouterConfig};

use cachemap_obs::{FlightRecorder, Profile, Registry, TraceId, TraceRecord};
use cachemap_polyhedral::DataSpace;
use cachemap_storage::wire::mapped_program_from_json;
use cachemap_storage::{HierarchyTree, L2Config, L2Store, MappedProgram};
use cachemap_util::{fingerprint_json, CoalesceMap, Fingerprint, Json, ShardedLru, ToJson};
use queue::{FairQueue, PushError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Latency histogram bucket bounds, in seconds.
const LATENCY_BUCKETS: [f64; 14] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Stage names of the request-trace taxonomy, in service-path order.
/// `parse` only appears when the front end reports an ingress duration;
/// `serialize` is appended at finalization by the front end.
pub const TRACE_STAGES: [&str; 9] = [
    "parse",
    "fingerprint",
    "l1",
    "l2",
    "l2_parse",
    "coalesce",
    "queue_wait",
    "compute",
    "serialize",
];

/// Flight-recorder dump trigger names (the `trigger` metric label and
/// the `flight-<trigger>-*.json` file-name component). `replica_down`
/// is fired by the [`router::Router`] front end rather than the service
/// itself, when a replica's health check declares it dead;
/// `accept_stall` is fired by the [`aserver::AsyncServer`] when its
/// event loop misses a poll deadline by more than the stall grace.
pub const FLIGHT_TRIGGERS: [&str; 6] = [
    "slow_request",
    "rejection_burst",
    "drain",
    "recovery",
    "replica_down",
    "accept_stall",
];

/// Latency-path labels used on the per-tenant SLO histograms.
const LATENCY_PATHS: [&str; 5] = ["hit", "l2_hit", "computed", "coalesced", "rejected"];

/// Service tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads draining the admission queue. `0` is permitted
    /// (admit but never serve) and exists for backpressure tests.
    pub workers: usize,
    /// Maximum queued (admitted, not yet dispatched) requests; beyond
    /// this, submissions are rejected with [`ServiceError::QueueFull`].
    pub queue_limit: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Entries per cache shard (total capacity = shards × this).
    pub cache_capacity_per_shard: usize,
    /// Default per-request deadline in milliseconds when the request
    /// does not carry one; `0` disables deadlines by default.
    pub default_deadline_ms: u64,
    /// Maximum queued requests per tenant; `0` disables the quota.
    /// A tenant at quota is rejected with a typed `quota_exceeded`
    /// even when the shared queue has room.
    pub tenant_quota: usize,
    /// Explicit per-tenant dequeue weights for the weighted-fair
    /// admission queue; tenants not listed get weight 1.
    pub tenant_weights: Vec<(String, u32)>,
    /// Directory for the crash-durable L2 mapping store; `None`
    /// disables the disk tier entirely.
    pub l2_dir: Option<PathBuf>,
    /// L2 entry time-to-live in seconds; `0` disables expiry.
    pub l2_ttl_secs: u64,
    /// L2 segment roll size in bytes.
    pub l2_segment_bytes: u64,
    /// How long a graceful [`MapService::shutdown`] waits for queued
    /// work to finish before deadline-rejecting the remainder.
    pub drain_limit_ms: u64,
    /// Per-request tracing. When `false` (the default) no trace context
    /// is allocated, responses are byte-identical to an untraced build,
    /// and the instrumented paths cost one branch each.
    pub tracing: bool,
    /// Flight-recorder ring capacity (recent trace summaries held in
    /// memory for `trace` lookups and anomaly dumps).
    pub flight_capacity: usize,
    /// Traced requests slower than this trigger a `slow_request` flight
    /// dump; `0` disables the trigger.
    pub slow_trace_ms: u64,
    /// Directory flight-recorder dumps are written into.
    pub flight_dir: PathBuf,
    /// Per-tenant SLO latency objective in milliseconds: requests over
    /// it (or rejected) count against the tenant's error budget.
    pub slo_latency_ms: u64,
    /// Fraction of requests allowed to miss the SLO; the burn-rate
    /// gauge is `bad_fraction / slo_error_budget` (1.0 = burning the
    /// budget exactly as fast as allowed).
    pub slo_error_budget: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_limit: 64,
            cache_shards: 8,
            cache_capacity_per_shard: 128,
            default_deadline_ms: 10_000,
            tenant_quota: 0,
            tenant_weights: Vec::new(),
            l2_dir: None,
            l2_ttl_secs: 86_400,
            l2_segment_bytes: 8 << 20,
            drain_limit_ms: 5_000,
            tracing: false,
            flight_capacity: 256,
            slow_trace_ms: 1_000,
            flight_dir: PathBuf::from("reports"),
            slo_latency_ms: 250,
            slo_error_budget: 0.01,
        }
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// L1 mapping-cache hits (submit fast path + worker in-flight hits).
    pub hits: u64,
    /// Mapping-cache misses (requests that ran the pipeline).
    pub misses: u64,
    /// Requests that attached to an already in-flight computation of
    /// the same fingerprint instead of queueing their own.
    pub coalesced: u64,
    /// Disk-tier (L2) hits served without running the pipeline.
    pub l2_hits: u64,
    /// L2 entries promoted into the in-memory L1 on a hit.
    pub l2_promotions: u64,
    /// Requests rejected with [`ServiceError::QueueFull`].
    pub queue_full: u64,
    /// Requests rejected with [`ServiceError::QuotaExceeded`].
    pub quota_exceeded: u64,
    /// Requests rejected with [`ServiceError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Current mapping-cache entry count.
    pub cache_entries: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// Duration of the last graceful drain in seconds (`0` before one).
    pub drain_seconds: f64,
}

impl ServiceStats {
    /// Cache hit rate in `[0, 1]` over both tiers (`0` before any
    /// lookup). Coalesced waits count as neither hit nor miss: exactly
    /// one of the coalesced callers records the underlying outcome.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.l2_hits;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }

    /// JSON body for the `stats` protocol op.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("hits", Json::UInt(self.hits)),
            ("misses", Json::UInt(self.misses)),
            ("coalesced", Json::UInt(self.coalesced)),
            ("l2_hits", Json::UInt(self.l2_hits)),
            ("l2_promotions", Json::UInt(self.l2_promotions)),
            ("queue_full", Json::UInt(self.queue_full)),
            ("quota_exceeded", Json::UInt(self.quota_exceeded)),
            ("deadline_exceeded", Json::UInt(self.deadline_exceeded)),
            ("cache_entries", Json::UInt(self.cache_entries)),
            ("queue_depth", Json::UInt(self.queue_depth)),
            ("drain_seconds", Json::Float(self.drain_seconds)),
            ("hit_rate", Json::Float(self.hit_rate())),
        ])
    }
}

/// An L1 entry: the mapping plus the platform/version scope fingerprint
/// it was computed under, so [`MapService::invalidate_scope`] can sweep
/// every mapping for a retired platform in one call.
#[derive(Clone)]
struct CachedEntry {
    scope: Fingerprint,
    mapping: Arc<MappedProgram>,
}

/// A request trace captured through `submit` but still missing its
/// final stage: response serialization happens in the caller (the TCP
/// front end), which times it and hands the duration to
/// [`MapService::finalize_trace`] — closing the chicken-and-egg between
/// "the trace rides in the response" and "serializing the response is
/// itself a traced stage".
#[derive(Debug, Clone)]
pub struct PendingTrace {
    record: TraceRecord,
    started: Instant,
    ingress_us: u64,
}

impl PendingTrace {
    /// Offset of `t0` from the (ingress-adjusted) request arrival.
    fn offset(&self, t0: Instant) -> u64 {
        self.ingress_us + t0.saturating_duration_since(self.started).as_micros() as u64
    }

    /// Records a stage that began at `t0` and ends now.
    fn stage(&mut self, name: &str, t0: Instant) {
        let off = self.offset(t0);
        self.record
            .push_stage(name, off, t0.elapsed().as_micros() as u64);
    }

    /// The deterministic trace id, in wire (hex) form.
    pub fn trace_id(&self) -> String {
        self.record.trace_id.to_hex()
    }
}

/// Worker-side timing for one queued job, returned over the reply
/// channel so the submitting thread can attribute queue wait and
/// compute time in its trace.
struct WorkerTrace {
    queue_wait_us: u64,
    compute_us: u64,
    profile: Option<Json>,
}

type JobReply = Result<(Arc<MappedProgram>, bool, Option<WorkerTrace>), ServiceError>;

struct Job {
    fp: Fingerprint,
    scope: Fingerprint,
    req: MapRequest,
    deadline: Option<Instant>,
    budget_ms: u64,
    /// Push timestamp, set only for traced requests: the worker
    /// measures queue wait from it.
    enqueued: Option<Instant>,
    reply: mpsc::SyncSender<JobReply>,
}

struct Inner {
    cfg: ServiceConfig,
    queue: Mutex<FairQueue<Job>>,
    available: Condvar,
    /// Signalled by the last worker to see the queue empty while
    /// draining; [`MapService::shutdown`] waits on it.
    drained: Condvar,
    cache: ShardedLru<Fingerprint, CachedEntry>,
    coalesce: CoalesceMap<Fingerprint, Arc<MappedProgram>, ServiceError>,
    l2: Option<Mutex<L2Store>>,
    metrics: Mutex<Registry>,
    /// Hard stop: workers exit even with queued work (kill / post-drain).
    stopping: AtomicBool,
    /// Soft stop: submissions rejected, workers finish the queue.
    draining: AtomicBool,
    /// Bit pattern of the last drain duration (f64), since the metric
    /// registry has no gauge read-back.
    drain_seconds_bits: AtomicU64,
    /// Admission sequence for deterministic trace ids.
    trace_seq: AtomicU64,
    /// Ring of recent trace summaries; `Some` iff tracing is enabled.
    flight: Option<FlightRecorder>,
    /// Per-tenant SLO accounting: tenant → (bad requests, total).
    slo: Mutex<BTreeMap<String, (u64, u64)>>,
}

/// Seconds since the Unix epoch, for L2 TTL bookkeeping.
fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The in-process mapping service: worker pool + weighted-fair
/// admission queue + two-tier fingerprint-keyed mapping cache. Cheap to
/// share behind an [`Arc`]; dropped services shut their workers down.
pub struct MapService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl MapService {
    /// Starts the worker pool (and, when configured, opens or recovers
    /// the L2 store) and returns the running service.
    ///
    /// An L2 directory that fails to open is a startup panic: a service
    /// silently running without its durable tier would violate the
    /// warm-restart contract.
    pub fn start(cfg: ServiceConfig) -> Self {
        let l2 = cfg.l2_dir.clone().map(|dir| {
            let l2cfg = L2Config {
                dir,
                ttl_secs: cfg.l2_ttl_secs,
                segment_bytes: cfg.l2_segment_bytes.max(1),
            };
            Mutex::new(L2Store::open(l2cfg, unix_now()).expect("open L2 mapping store"))
        });
        let inner = Arc::new(Inner {
            queue: Mutex::new(FairQueue::new(
                cfg.queue_limit,
                cfg.tenant_quota,
                cfg.tenant_weights.clone(),
            )),
            available: Condvar::new(),
            drained: Condvar::new(),
            cache: ShardedLru::new(cfg.cache_shards.max(1), cfg.cache_capacity_per_shard.max(1)),
            coalesce: CoalesceMap::new(),
            l2,
            metrics: Mutex::new(Registry::new()),
            stopping: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            drain_seconds_bits: AtomicU64::new(0f64.to_bits()),
            trace_seq: AtomicU64::new(0),
            flight: cfg
                .tracing
                .then(|| FlightRecorder::new(cfg.flight_capacity.max(1))),
            slo: Mutex::new(BTreeMap::new()),
            cfg,
        });
        inner.preregister_metrics();
        // Crash-recovery anomaly: a restart that had to truncate a torn
        // L2 tail (or replay segments) is itself a flight-worthy event —
        // dump the (empty) ring with the recovery stats attached so the
        // incident is on disk before the first request lands.
        if inner.flight.is_some() {
            if let Some(l2) = &inner.l2 {
                let rs = l2.lock().expect("l2 poisoned").recovery_stats();
                if rs.segments_truncated > 0 || rs.bytes_truncated > 0 {
                    inner.flight_dump(
                        "recovery",
                        vec![
                            ("records_replayed", Json::UInt(rs.records_replayed)),
                            ("segments_truncated", Json::UInt(rs.segments_truncated)),
                            ("bytes_truncated", Json::UInt(rs.bytes_truncated)),
                            ("entries_expired", Json::UInt(rs.entries_expired)),
                        ],
                    );
                }
            }
        }
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("map-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn mapping worker")
            })
            .collect();
        MapService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// Liveness probe: `true` while the service accepts work (neither
    /// draining nor killed). The router's active health checks use this
    /// for in-process replicas; the TCP `ping` op answers for remote
    /// ones.
    pub fn ping(&self) -> bool {
        !self.inner.draining.load(Ordering::SeqCst)
    }

    /// Submits one mapping request and blocks until it is served,
    /// rejected, or its deadline expires.
    ///
    /// Lookup order: L1 (O(hash + shard lookup), no queueing) → L2
    /// (one disk read + promotion to L1) → coalesce with any in-flight
    /// computation of the same fingerprint → admit to the weighted-fair
    /// queue (or reject typed) and compute on the worker pool.
    pub fn submit(&self, req: MapRequest) -> Result<MapResponse, ServiceError> {
        self.inner.submit(req, 0)
    }

    /// [`MapService::submit`] with the front end's ingress (read +
    /// parse) duration, so the trace timeline starts at the wire rather
    /// than at admission. With tracing disabled this is `submit`.
    pub fn submit_traced(
        &self,
        req: MapRequest,
        ingress_us: u64,
    ) -> Result<MapResponse, ServiceError> {
        self.inner.submit(req, ingress_us)
    }

    /// Closes a [`PendingTrace`] taken off a [`MapResponse`]: appends
    /// the `serialize` stage (measured by the caller), observes the
    /// per-stage latency metrics, records the trace into the flight
    /// recorder, fires any anomaly triggers, and returns the trace
    /// JSON for the wire.
    // Takes the box because that is what callers hold: the trace rides
    // `MapResponse` boxed so untraced responses stay pointer-sized.
    #[allow(clippy::boxed_local)]
    pub fn finalize_trace(&self, pending: Box<PendingTrace>, serialize: Duration) -> Json {
        self.inner.finalize_trace(*pending, serialize)
    }

    /// Looks a recent trace up in the flight recorder by hex id
    /// (`"last"` returns the most recent). `None` when tracing is off
    /// or the id fell out of the ring.
    pub fn trace_lookup(&self, trace_id: &str) -> Option<Json> {
        let fl = self.inner.flight.as_ref()?;
        if trace_id == "last" {
            fl.last()
        } else {
            fl.find(trace_id)
        }
    }

    /// Renders the metric registry in Prometheus text format, with the
    /// queue-depth and cache-entries gauges refreshed first.
    pub fn metrics_text(&self) -> String {
        self.inner.refresh_gauges();
        self.inner
            .metrics
            .lock()
            .expect("metrics poisoned")
            .to_prometheus()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// Drops one fingerprint from both cache tiers (durably in L2: a
    /// tombstone record survives restart).
    pub fn invalidate_fingerprint(&self, fp: Fingerprint) -> std::io::Result<()> {
        self.inner.cache.remove(&fp);
        if let Some(l2) = &self.inner.l2 {
            l2.lock().expect("l2 poisoned").invalidate(fp, unix_now())?;
        }
        Ok(())
    }

    /// Drops every cached mapping computed under `(platform, version)`
    /// — e.g. after a platform is reconfigured — from both tiers, with
    /// one durable scope tombstone in L2.
    pub fn invalidate_scope(&self, scope: Fingerprint) -> std::io::Result<()> {
        self.inner.cache.retain(|_, e| e.scope != scope);
        if let Some(l2) = &self.inner.l2 {
            l2.lock()
                .expect("l2 poisoned")
                .invalidate_scope(scope, unix_now())?;
        }
        Ok(())
    }

    /// The scope fingerprint for [`MapService::invalidate_scope`]: the
    /// canonical content fingerprint of `(platform, version)`.
    pub fn scope_fingerprint(
        platform: &cachemap_storage::PlatformConfig,
        version: cachemap_core::Version,
    ) -> Fingerprint {
        fingerprint_json(&Json::object(vec![
            ("platform", platform.to_json()),
            ("version", version.to_json()),
        ]))
    }

    /// Number of live entries in the durable L2 index (`None` when the
    /// disk tier is disabled) — recovery visibility for harnesses.
    pub fn l2_entries(&self) -> Option<usize> {
        self.inner
            .l2
            .as_ref()
            .map(|l2| l2.lock().expect("l2 poisoned").len())
    }

    /// Records a transport-level rejection by the TCP front end — a
    /// connection refused at the cap (`"conn_limit"`) or one that sat
    /// idle past the read timeout (`"read_timeout"`) — so `/metrics`
    /// shows drops that never became requests next to request outcomes.
    pub fn count_front_end_rejection(&self, reason: &str) {
        let mut m = self.inner.metrics.lock().expect("metrics poisoned");
        m.counter_add(
            "cachemap_service_front_end_rejections_total",
            "Connections rejected by the TCP front end",
            &[("reason", reason)],
            1,
        );
    }

    /// The current value of the front-end rejection counter for `reason`
    /// (`0` before any rejection).
    pub fn front_end_rejections(&self, reason: &str) -> u64 {
        let m = self.inner.metrics.lock().expect("metrics poisoned");
        m.counter(
            "cachemap_service_front_end_rejections_total",
            &[("reason", reason)],
        )
        .unwrap_or(0)
    }

    /// Gracefully drains and stops the service. Idempotent. In order:
    ///
    /// 1. new submissions are rejected with a typed `shutdown` error;
    /// 2. workers finish the queued backlog, up to `drain_limit_ms`;
    /// 3. anything still queued is answered typed (`deadline_exceeded`
    ///    if its deadline passed while queued, `shutdown` otherwise) —
    ///    never silently dropped;
    /// 4. workers are joined, dirty L2 segments are flushed and sealed;
    /// 5. the drain duration lands in `cachemap_service_drain_seconds`.
    pub fn shutdown(&self) {
        if self.inner.draining.swap(true, Ordering::SeqCst) {
            return; // already drained (or killed)
        }
        let start = Instant::now();
        self.inner.available.notify_all();

        // Let the workers finish the backlog, bounded by the drain
        // budget. With no workers there is nobody to wait for.
        if self.inner.cfg.workers > 0 {
            let limit = Duration::from_millis(self.inner.cfg.drain_limit_ms);
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            while !q.is_empty() && start.elapsed() < limit {
                let left = limit.saturating_sub(start.elapsed());
                let (guard, _) = self
                    .inner
                    .drained
                    .wait_timeout(q, left)
                    .expect("queue poisoned");
                q = guard;
            }
        }

        // Hard stop: reject whatever the budget did not cover.
        self.inner.stopping.store(true, Ordering::SeqCst);
        let leftovers = {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            q.drain_all()
        };
        self.inner.available.notify_all();
        let now = Instant::now();
        for job in leftovers {
            let err = match job.deadline {
                Some(d) if now > d => ServiceError::DeadlineExceeded {
                    budget_ms: job.budget_ms,
                },
                _ => ServiceError::Shutdown,
            };
            self.inner.count_outcome(err.code());
            let _ = job.reply.try_send(Err(err));
        }
        self.join_workers();
        if let Some(l2) = &self.inner.l2 {
            let mut l2 = l2.lock().expect("l2 poisoned");
            let _ = l2.seal();
        }
        self.inner.record_drain(start.elapsed().as_secs_f64());
        // A drain is always flight-worthy: preserve the ring (what the
        // service was doing on its way out) next to the drain numbers.
        self.inner.flight_dump(
            "drain",
            vec![(
                "drain_seconds",
                Json::Float(f64::from_bits(
                    self.inner.drain_seconds_bits.load(Ordering::SeqCst),
                )),
            )],
        );
    }

    /// Simulates a crash for recovery testing: workers stop and queued
    /// work is rejected as on [`MapService::shutdown`], but the L2
    /// store is **not** flushed or sealed — exactly what a power cut
    /// after the last kernel write-back would leave on disk.
    pub fn kill(&self) {
        if self.inner.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.stopping.store(true, Ordering::SeqCst);
        let leftovers = {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            q.drain_all()
        };
        self.inner.available.notify_all();
        for job in leftovers {
            self.inner.count_outcome("shutdown");
            let _ = job.reply.try_send(Err(ServiceError::Shutdown));
        }
        self.join_workers();
    }

    fn join_workers(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("workers poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for MapService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The tenant label for metrics: the request's tenant, or `anonymous`
/// for unlabelled (or empty-labelled) requests.
fn tenant_label(req: &MapRequest) -> &str {
    match req.tenant.as_deref() {
        Some(t) if !t.is_empty() => t,
        _ => "anonymous",
    }
}

impl Inner {
    fn submit(&self, req: MapRequest, ingress_us: u64) -> Result<MapResponse, ServiceError> {
        let start = Instant::now();
        if self.draining.load(Ordering::SeqCst) || self.stopping.load(Ordering::SeqCst) {
            self.count_outcome("shutdown");
            return Err(ServiceError::Shutdown);
        }
        req.platform
            .validate()
            .map_err(|e| self.reject_bad_request(format!("platform: {e}")))?;
        let fp = cachemap_core::fingerprint(&req.program, &req.platform, &req.mapper, req.version);
        let scope = MapService::scope_fingerprint(&req.platform, req.version);

        // Trace context: allocated only when tracing is on — the
        // disabled path costs this one branch. Validation and
        // fingerprinting ran since `start`, so they tile the timeline
        // as the `fingerprint` stage.
        let mut tctx: Option<PendingTrace> = if self.flight.is_some() {
            let seq = self.trace_seq.fetch_add(1, Ordering::SeqCst);
            let mut record = TraceRecord::new(
                TraceId::derive(fp.0, seq),
                seq,
                fp.to_hex(),
                tenant_label(&req).to_string(),
            );
            if ingress_us > 0 {
                record.push_stage("parse", 0, ingress_us);
            }
            record.push_stage(
                "fingerprint",
                ingress_us,
                start.elapsed().as_micros() as u64,
            );
            Some(PendingTrace {
                record,
                started: start,
                ingress_us,
            })
        } else {
            None
        };
        let tenant = tenant_label(&req).to_string();

        // L1: O(lookup) on the sharded cache, no queueing.
        let l1_t0 = tctx.as_ref().map(|_| Instant::now());
        let l1 = self.cache.get(&fp);
        if let (Some(t0), Some(t)) = (l1_t0, tctx.as_mut()) {
            t.stage("l1", t0);
        }
        if let Some(entry) = l1 {
            self.record_hit(&tenant, start);
            return Ok(self.respond(&req, fp, entry.mapping, true, start, tctx, "ok_cached"));
        }

        // L2: one disk read; a hit is promoted so the next lookup is L1.
        if let Some(mapping) = self.l2_lookup(&fp, scope, &mut tctx) {
            self.record_l2_hit(&tenant, start);
            return Ok(self.respond(&req, fp, mapping, true, start, tctx, "ok_l2"));
        }

        let budget_ms = req.deadline_ms.unwrap_or(self.cfg.default_deadline_ms);
        let deadline = if budget_ms == 0 && req.deadline_ms.is_some() {
            // An explicit zero budget is an already-expired deadline.
            self.count_outcome("deadline_exceeded");
            self.observe_latency("rejected", &tenant, start, true);
            self.finalize_rejected(tctx, "deadline_exceeded");
            return Err(ServiceError::DeadlineExceeded { budget_ms });
        } else if budget_ms == 0 {
            None
        } else {
            Some(start + Duration::from_millis(budget_ms))
        };

        // Coalesce: one computation per fingerprint, however many
        // concurrent callers miss on it. `inherited` marks followers,
        // whose responses report `cached: true` — they were served
        // without a pipeline run of their own. The rendezvous is a
        // trace stage tagged with this caller's role: the leader never
        // blocks here (its time goes to queue_wait/compute), followers
        // attribute their whole wait to the coalescing.
        let join_t0 = tctx.as_ref().map(|_| Instant::now());
        let (join, wait_ns) = self.coalesce.join_timed(fp, deadline);
        if let (Some(t0), Some(t)) = (join_t0, tctx.as_mut()) {
            let off = t.offset(t0);
            let role = if matches!(join, cachemap_util::coalesce::Join::Leader(_)) {
                "leader"
            } else {
                "follower"
            };
            t.record.push_tagged("coalesce", off, wait_ns / 1_000, role);
        }
        let (outcome, inherited) = match join {
            cachemap_util::coalesce::Join::Leader(leader) => {
                let outcome = self.queue_and_wait(fp, scope, &req, deadline, budget_ms, &mut tctx);
                leader.complete(outcome.clone());
                (outcome, false)
            }
            cachemap_util::coalesce::Join::Done(result) => {
                self.count_coalesced();
                (result, true)
            }
            cachemap_util::coalesce::Join::LeaderFailed => {
                self.count_coalesced();
                (
                    Err(ServiceError::Internal {
                        message: "coalesced computation failed without a result".into(),
                    }),
                    true,
                )
            }
            cachemap_util::coalesce::Join::TimedOut => {
                self.count_coalesced();
                (Err(ServiceError::DeadlineExceeded { budget_ms }), true)
            }
        };

        match outcome {
            Ok(mapping) => {
                let outcome_name = if inherited {
                    self.count_outcome("ok_coalesced");
                    self.observe_latency("coalesced", &tenant, start, false);
                    "ok_coalesced"
                } else {
                    self.count_outcome("ok_computed");
                    self.observe_latency("computed", &tenant, start, false);
                    "ok_computed"
                };
                Ok(self.respond(&req, fp, mapping, inherited, start, tctx, outcome_name))
            }
            Err(e) => {
                self.count_outcome(e.code());
                self.observe_latency("rejected", &tenant, start, true);
                self.finalize_rejected(tctx, e.code());
                Err(e)
            }
        }
    }

    fn count_coalesced(&self) {
        self.bump_counter(
            "cachemap_service_coalesced_total",
            "Requests coalesced onto an in-flight computation",
        );
    }

    /// The queue-admission + worker-wait leg of a cold miss (run only
    /// by the coalescing leader).
    fn queue_and_wait(
        &self,
        fp: Fingerprint,
        scope: Fingerprint,
        req: &MapRequest,
        deadline: Option<Instant>,
        budget_ms: u64,
        tctx: &mut Option<PendingTrace>,
    ) -> Result<Arc<MappedProgram>, ServiceError> {
        let tenant = req.tenant.clone().unwrap_or_default();
        let (tx, rx) = mpsc::sync_channel(1);
        let t_push = tctx.as_ref().map(|_| Instant::now());
        {
            let mut q = self.queue.lock().expect("queue poisoned");
            if self.draining.load(Ordering::SeqCst) || self.stopping.load(Ordering::SeqCst) {
                return Err(ServiceError::Shutdown);
            }
            let job = Job {
                fp,
                scope,
                req: req.clone(),
                deadline,
                budget_ms,
                enqueued: t_push,
                reply: tx,
            };
            q.push(&tenant, job).map_err(|e| match e {
                PushError::Full { depth, limit } => ServiceError::QueueFull { depth, limit },
                PushError::Quota { tenant, quota } => ServiceError::QuotaExceeded { tenant, quota },
            })?;
        }
        self.available.notify_one();

        // Wait for the worker (or the deadline, whichever first).
        let (mapping, _was_cached, wtrace) = match deadline {
            None => rx.recv().map_err(|_| ServiceError::Shutdown)?,
            Some(d) => {
                let budget = d.saturating_duration_since(Instant::now());
                match rx.recv_timeout(budget) {
                    Ok(res) => res,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        return Err(ServiceError::DeadlineExceeded { budget_ms })
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::Shutdown),
                }
            }
        }?;
        // Splice the worker-side measurements into this request's
        // timeline: queue wait from the push timestamp, then compute
        // (carrying the mapper's profile span tree as a child).
        if let (Some(t0), Some(t), Some(w)) = (t_push, tctx.as_mut(), wtrace) {
            let off = t.offset(t0);
            t.record.push_stage("queue_wait", off, w.queue_wait_us);
            t.record
                .push_profiled("compute", off + w.queue_wait_us, w.compute_us, w.profile);
        }
        Ok(mapping)
    }

    /// Reads `fp` from the disk tier, re-hydrates the mapping, and
    /// promotes it into L1. Any L2 problem (disabled tier, expired or
    /// invalidated entry, checksum miss, parse failure) is a miss.
    fn l2_lookup(
        &self,
        fp: &Fingerprint,
        scope: Fingerprint,
        tctx: &mut Option<PendingTrace>,
    ) -> Option<Arc<MappedProgram>> {
        let l2 = self.l2.as_ref()?;
        // Traced path: `get_timed` reports the pure lookup cost (index
        // probe + disk read + checksum), recorded at the offset the leg
        // began — the mutex wait, if any, shows up as the gap.
        let bytes = if let Some(t) = tctx.as_mut() {
            let t0 = Instant::now();
            let (bytes, lookup_ns) = l2.lock().expect("l2 poisoned").get_timed(fp, unix_now());
            let off = t.offset(t0);
            t.record.push_stage("l2", off, lookup_ns / 1_000);
            bytes?
        } else {
            l2.lock().expect("l2 poisoned").get(fp, unix_now())?
        };
        let parse_t0 = tctx.as_ref().map(|_| Instant::now());
        let parsed = (|| {
            let text = std::str::from_utf8(&bytes).ok()?;
            let json = cachemap_util::json::parse(text).ok()?;
            Some(Arc::new(mapped_program_from_json(&json).ok()?))
        })();
        let mapping = match parsed {
            Some(m) => m,
            None => {
                if let (Some(t0), Some(t)) = (parse_t0, tctx.as_mut()) {
                    t.stage("l2_parse", t0);
                }
                return None;
            }
        };
        self.cache.insert(
            *fp,
            CachedEntry {
                scope,
                mapping: Arc::clone(&mapping),
            },
        );
        if let (Some(t0), Some(t)) = (parse_t0, tctx.as_mut()) {
            // Parse + promotion into L1, as one stage.
            t.stage("l2_parse", t0);
        }
        self.bump_counter(
            "cachemap_service_l2_promotions_total",
            "L2 entries promoted into the in-memory L1",
        );
        Some(mapping)
    }

    #[allow(clippy::too_many_arguments)]
    fn respond(
        &self,
        req: &MapRequest,
        fp: Fingerprint,
        mapping: Arc<MappedProgram>,
        cached: bool,
        start: Instant,
        tctx: Option<PendingTrace>,
        outcome: &str,
    ) -> MapResponse {
        let trace = tctx.map(|mut t| {
            t.record.outcome = outcome.to_string();
            t.record.cached = cached;
            Box::new(t)
        });
        MapResponse {
            id: req.id,
            cached,
            fingerprint: fp,
            mapping,
            service_us: start.elapsed().as_micros() as u64,
            trace,
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("queue poisoned");
                loop {
                    if let Some(job) = q.pop() {
                        break job;
                    }
                    if self.stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        // Queue is empty and we are draining: the
                        // backlog is done, tell shutdown() so.
                        self.drained.notify_all();
                        return;
                    }
                    q = self.available.wait(q).expect("queue poisoned");
                }
            };

            // Late at dispatch: answer with the typed rejection rather
            // than burning a worker on a result nobody is waiting for.
            if let Some(d) = job.deadline {
                if Instant::now() > d {
                    let _ = job.reply.try_send(Err(ServiceError::DeadlineExceeded {
                        budget_ms: job.budget_ms,
                    }));
                    self.note_drain_progress();
                    continue;
                }
            }

            let queue_wait_us = job.enqueued.map(|t| t.elapsed().as_micros() as u64);

            // In-flight duplicate: another worker may have filled the
            // cache since admission.
            if let Some(entry) = self.cache.get(&job.fp) {
                self.bump_counter("cachemap_service_cache_hits_total", "Mapping cache hits");
                let wtrace = queue_wait_us.map(|q| WorkerTrace {
                    queue_wait_us: q,
                    compute_us: 0,
                    profile: None,
                });
                let _ = job.reply.try_send(Ok((entry.mapping, true, wtrace)));
                self.note_drain_progress();
                continue;
            }

            let computed_at = Instant::now();
            // Traced jobs run the pipeline with profiling enabled: the
            // span tree rides back as the compute stage's child. The
            // profile records wall-clock around the mapping, never into
            // it, so the mapping bytes are identical either way
            // (property-tested since the profiling PR).
            let (result, profile) = if queue_wait_us.is_some() {
                let mut prof = Profile::enabled();
                let r = self.compute_profiled(&job.req, &mut prof);
                (r, Some(prof.to_json()))
            } else {
                (self.compute(&job.req), None)
            };
            let compute_us = computed_at.elapsed().as_micros() as u64;
            match result {
                Ok(mapping) => {
                    let mapping = Arc::new(mapping);
                    self.cache.insert(
                        job.fp,
                        CachedEntry {
                            scope: job.scope,
                            mapping: Arc::clone(&mapping),
                        },
                    );
                    self.l2_write(job.fp, job.scope, &mapping);
                    self.bump_counter(
                        "cachemap_service_cache_misses_total",
                        "Mapping cache misses (pipeline runs)",
                    );
                    {
                        let mut m = self.metrics.lock().expect("metrics poisoned");
                        m.histogram_observe(
                            "cachemap_service_map_compute_seconds",
                            "Cold mapping pipeline latency",
                            &LATENCY_BUCKETS,
                            &[],
                            computed_at.elapsed().as_secs_f64(),
                        );
                    }
                    let wtrace = queue_wait_us.map(|q| WorkerTrace {
                        queue_wait_us: q,
                        compute_us,
                        profile,
                    });
                    let _ = job.reply.try_send(Ok((mapping, false, wtrace)));
                }
                Err(e) => {
                    let _ = job.reply.try_send(Err(e));
                }
            }
            self.note_drain_progress();
        }
    }

    /// Wakes a draining `shutdown()` when the backlog empties.
    fn note_drain_progress(&self) {
        if self.draining.load(Ordering::SeqCst)
            && self.queue.lock().expect("queue poisoned").is_empty()
        {
            self.drained.notify_all();
        }
    }

    /// Appends a freshly computed mapping to the durable tier. Write
    /// errors are counted, not fatal: the mapping was already served
    /// and L1-cached; losing the disk copy only costs a warm restart.
    fn l2_write(&self, fp: Fingerprint, scope: Fingerprint, mapping: &MappedProgram) {
        let Some(l2) = &self.l2 else { return };
        let bytes = mapping.to_json().to_string_compact();
        let res = l2
            .lock()
            .expect("l2 poisoned")
            .put(fp, scope, bytes.as_bytes(), unix_now());
        if res.is_err() {
            self.bump_counter(
                "cachemap_service_l2_write_errors_total",
                "Failed appends to the L2 mapping store",
            );
        }
    }

    fn compute(&self, req: &MapRequest) -> Result<MappedProgram, ServiceError> {
        self.compute_profiled(req, &mut Profile::disabled())
    }

    fn compute_profiled(
        &self,
        req: &MapRequest,
        prof: &mut Profile,
    ) -> Result<MappedProgram, ServiceError> {
        let tree =
            HierarchyTree::from_config(&req.platform).map_err(|e| ServiceError::BadRequest {
                message: format!("platform: {e}"),
            })?;
        let data = DataSpace::new(&req.program.arrays, req.platform.chunk_bytes);
        let mapper = cachemap_core::Mapper::new(req.mapper);
        Ok(mapper.map_profiled(&req.program, &data, &req.platform, &tree, req.version, prof))
    }

    fn reject_bad_request(&self, message: String) -> ServiceError {
        self.count_outcome("bad_request");
        ServiceError::BadRequest { message }
    }

    fn record_hit(&self, tenant: &str, start: Instant) {
        self.bump_counter("cachemap_service_cache_hits_total", "Mapping cache hits");
        self.count_outcome("ok_cached");
        self.observe_latency("hit", tenant, start, false);
    }

    fn record_l2_hit(&self, tenant: &str, start: Instant) {
        self.bump_counter(
            "cachemap_service_l2_hits_total",
            "Disk-tier (L2) mapping cache hits",
        );
        self.count_outcome("ok_l2");
        self.observe_latency("l2_hit", tenant, start, false);
    }

    fn record_drain(&self, seconds: f64) {
        self.drain_seconds_bits
            .store(seconds.to_bits(), Ordering::SeqCst);
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.gauge_set(
            "cachemap_service_drain_seconds",
            "Duration of the last graceful drain",
            &[],
            seconds,
        );
    }

    /// Registers the robustness, tracing, and SLO metric families at
    /// zero so the first scrape already carries the full schema.
    fn preregister_metrics(&self) {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        // Per-tenant SLO families: every configured tenant plus the
        // anonymous lane, across every outcome path.
        let mut tenants: Vec<&str> = vec!["anonymous"];
        tenants.extend(self.cfg.tenant_weights.iter().map(|(t, _)| t.as_str()));
        for tenant in tenants.drain(..) {
            for path in LATENCY_PATHS {
                m.histogram_declare(
                    "cachemap_service_tenant_latency_seconds",
                    "Per-tenant end-to-end service latency by outcome path",
                    &LATENCY_BUCKETS,
                    &[("outcome", path), ("tenant", tenant)],
                );
            }
            m.gauge_set(
                "cachemap_service_slo_burn_rate",
                "Per-tenant SLO burn rate (bad-request fraction over error budget)",
                &[("tenant", tenant)],
                0.0,
            );
        }
        // Tracing families, present whether or not tracing is enabled
        // so a scrape schema does not depend on the tracing knob.
        for stage in TRACE_STAGES {
            m.histogram_declare(
                "cachemap_service_stage_seconds",
                "Per-request time spent in each service-path stage",
                &LATENCY_BUCKETS,
                &[("stage", stage)],
            );
        }
        m.counter_add(
            "cachemap_service_traces_recorded_total",
            "Request traces recorded by the flight recorder",
            &[],
            0,
        );
        for trigger in FLIGHT_TRIGGERS {
            m.counter_add(
                "cachemap_service_flight_dumps_total",
                "Flight-recorder dumps by anomaly trigger",
                &[("trigger", trigger)],
                0,
            );
        }
        m.counter_add(
            "cachemap_service_coalesced_total",
            "Requests coalesced onto an in-flight computation",
            &[],
            0,
        );
        m.counter_add(
            "cachemap_service_l2_hits_total",
            "Disk-tier (L2) mapping cache hits",
            &[],
            0,
        );
        m.counter_add(
            "cachemap_service_l2_promotions_total",
            "L2 entries promoted into the in-memory L1",
            &[],
            0,
        );
        m.gauge_set(
            "cachemap_service_drain_seconds",
            "Duration of the last graceful drain",
            &[],
            0.0,
        );
    }

    fn bump_counter(&self, name: &str, help: &str) {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.counter_add(name, help, &[], 1);
    }

    fn count_outcome(&self, outcome: &str) {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.counter_add(
            "cachemap_service_requests_total",
            "Mapping requests by outcome",
            &[("op", "map"), ("outcome", outcome)],
            1,
        );
    }

    /// Observes one finished request's latency on the shared per-path
    /// histogram, the per-tenant SLO histogram, and the tenant's
    /// burn-rate gauge. A request is "bad" for SLO purposes when it was
    /// rejected or ran past `slo_latency_ms`.
    fn observe_latency(&self, path: &str, tenant: &str, start: Instant, rejected: bool) {
        let secs = start.elapsed().as_secs_f64();
        let bad = rejected || secs > self.cfg.slo_latency_ms as f64 / 1_000.0;
        let burn = {
            let mut slo = self.slo.lock().expect("slo poisoned");
            let entry = slo.entry(tenant.to_string()).or_insert((0, 0));
            entry.1 += 1;
            if bad {
                entry.0 += 1;
            }
            (entry.0 as f64 / entry.1 as f64) / self.cfg.slo_error_budget.max(f64::EPSILON)
        };
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.histogram_observe(
            "cachemap_service_request_latency_seconds",
            "End-to-end service latency by path",
            &LATENCY_BUCKETS,
            &[("path", path)],
            secs,
        );
        m.histogram_observe(
            "cachemap_service_tenant_latency_seconds",
            "Per-tenant end-to-end service latency by outcome path",
            &LATENCY_BUCKETS,
            &[("outcome", path), ("tenant", tenant)],
            secs,
        );
        m.gauge_set(
            "cachemap_service_slo_burn_rate",
            "Per-tenant SLO burn rate (bad-request fraction over error budget)",
            &[("tenant", tenant)],
            burn,
        );
    }

    /// Closes a trace: appends the `serialize` stage (its duration is
    /// measured by the caller, ending now), stamps the total, observes
    /// the per-stage metrics, records the trace into the flight ring,
    /// and fires the slow-request / rejection-burst triggers.
    fn finalize_trace(&self, mut p: PendingTrace, serialize: Duration) -> Json {
        let ser_us = serialize.as_micros() as u64;
        let now_off = p.offset(Instant::now());
        if ser_us > 0 {
            p.record
                .push_stage("serialize", now_off.saturating_sub(ser_us), ser_us);
        }
        p.record.total_us = now_off;
        self.commit_trace(p.record)
    }

    /// Closes a rejected request's trace internally (errors carry no
    /// response for the front end to finalize): no serialize stage, the
    /// total ends now. With tracing off (`tctx` None) this is a no-op.
    fn finalize_rejected(&self, tctx: Option<PendingTrace>, code: &str) {
        if let Some(mut p) = tctx {
            p.record.outcome = code.to_string();
            p.record.total_us = p.offset(Instant::now());
            self.commit_trace(p.record);
        }
    }

    /// Metrics + ring + anomaly triggers for one finished trace.
    fn commit_trace(&self, record: TraceRecord) -> Json {
        {
            let mut m = self.metrics.lock().expect("metrics poisoned");
            for s in &record.stages {
                m.histogram_observe(
                    "cachemap_service_stage_seconds",
                    "Per-request time spent in each service-path stage",
                    &LATENCY_BUCKETS,
                    &[("stage", s.name.as_str())],
                    s.dur_us as f64 / 1e6,
                );
            }
            m.counter_add(
                "cachemap_service_traces_recorded_total",
                "Request traces recorded by the flight recorder",
                &[],
                1,
            );
        }
        let rejected = !record.outcome.starts_with("ok");
        let total_us = record.total_us;
        let json = record.to_json();
        if let Some(fl) = &self.flight {
            fl.record(json.clone(), rejected);
            if self.cfg.slow_trace_ms > 0 && total_us > self.cfg.slow_trace_ms.saturating_mul(1_000)
            {
                self.flight_dump(
                    "slow_request",
                    vec![("slow_total_us", Json::UInt(total_us))],
                );
            }
            if rejected && fl.rejection_burst(16, 8) {
                self.flight_dump("rejection_burst", Vec::new());
            }
        }
        json
    }

    /// Dumps the flight ring for `trigger` with queue context attached.
    /// Dump errors are counted, never fatal — losing a dump must not
    /// take a request down with it.
    fn flight_dump(&self, trigger: &str, mut extra: Vec<(&str, Json)>) {
        let Some(fl) = &self.flight else { return };
        let depths = {
            let q = self.queue.lock().expect("queue poisoned");
            (q.len(), q.depths())
        };
        extra.push(("queue_depth", Json::UInt(depths.0 as u64)));
        extra.push((
            "tenant_depths",
            Json::object(
                depths
                    .1
                    .iter()
                    .map(|(t, d)| (t.as_str(), Json::UInt(*d as u64)))
                    .collect(),
            ),
        ));
        let cooldown = (self.cfg.flight_capacity as u64 / 2).max(1);
        match fl.dump(&self.cfg.flight_dir, trigger, cooldown, extra) {
            Ok(Some(_)) => {
                let mut m = self.metrics.lock().expect("metrics poisoned");
                m.counter_add(
                    "cachemap_service_flight_dumps_total",
                    "Flight-recorder dumps by anomaly trigger",
                    &[("trigger", trigger)],
                    1,
                );
            }
            Ok(None) => {} // within the trigger's cooldown window
            Err(_) => {
                let mut m = self.metrics.lock().expect("metrics poisoned");
                m.counter_add(
                    "cachemap_service_flight_dump_errors_total",
                    "Flight-recorder dumps that failed to write",
                    &[("trigger", trigger)],
                    1,
                );
            }
        }
    }

    fn refresh_gauges(&self) {
        let depth = self.queue.lock().expect("queue poisoned").len();
        let entries = self.cache.len();
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.gauge_set(
            "cachemap_service_queue_depth",
            "Current admission-queue depth",
            &[],
            depth as f64,
        );
        m.gauge_set(
            "cachemap_service_cache_entries",
            "Current mapping-cache entry count",
            &[],
            entries as f64,
        );
    }

    fn stats(&self) -> ServiceStats {
        let m = self.metrics.lock().expect("metrics poisoned");
        let outcome = |o: &str| {
            m.counter(
                "cachemap_service_requests_total",
                &[("op", "map"), ("outcome", o)],
            )
            .unwrap_or(0)
        };
        let plain = |name: &str| m.counter(name, &[]).unwrap_or(0);
        ServiceStats {
            hits: plain("cachemap_service_cache_hits_total"),
            misses: plain("cachemap_service_cache_misses_total"),
            coalesced: plain("cachemap_service_coalesced_total"),
            l2_hits: plain("cachemap_service_l2_hits_total"),
            l2_promotions: plain("cachemap_service_l2_promotions_total"),
            queue_full: outcome("queue_full"),
            quota_exceeded: outcome("quota_exceeded"),
            deadline_exceeded: outcome("deadline_exceeded"),
            cache_entries: self.cache.len() as u64,
            queue_depth: self.queue.lock().expect("queue poisoned").len() as u64,
            drain_seconds: f64::from_bits(self.drain_seconds_bits.load(Ordering::SeqCst)),
        }
    }
}
