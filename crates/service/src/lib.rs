//! # cachemap-service — mapping as a service.
//!
//! The HPDC'10 pipeline computes one mapping per loop nest; the
//! production system this workspace grows toward must answer *repeated*
//! mapping queries from many tenants in microseconds. This crate turns
//! the mapper into a long-lived, concurrent, cache-fronted service:
//!
//! * [`MapService`] — the in-process engine: a fixed worker thread pool
//!   behind a **bounded admission queue** (reject-on-full backpressure,
//!   per-request deadlines, typed [`ServiceError`] rejections — the
//!   request-level analogue of the storage engine's `RequestPolicy`),
//!   fronted by a sharded LRU **mapping cache** keyed by the canonical
//!   content fingerprint of `(program, platform, params, version)`.
//!   Because the pipeline is deterministic, a cache hit returns a
//!   mapping byte-identical to a cold run — memoization is semantically
//!   invisible (property-tested in `tests/service.rs`).
//! * [`server::Server`] — the TCP front end: JSON-lines request/response
//!   (see [`proto`]) plus a plain-HTTP `GET /metrics` Prometheus
//!   endpoint on the same port, backed by an `obs::Registry`.
//!
//! ```no_run
//! use cachemap_service::{MapService, ServiceConfig, server::Server};
//! use std::sync::Arc;
//!
//! let service = Arc::new(MapService::start(ServiceConfig::default()));
//! let server = Server::spawn("127.0.0.1:7411", Arc::clone(&service)).unwrap();
//! println!("serving mappings on {}", server.addr());
//! # server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod proto;
pub mod server;

pub use error::ServiceError;
pub use proto::{MapRequest, MapResponse, Request};

use cachemap_obs::Registry;
use cachemap_polyhedral::DataSpace;
use cachemap_storage::{HierarchyTree, MappedProgram};
use cachemap_util::{Fingerprint, Json, ShardedLru};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Latency histogram bucket bounds, in seconds.
const LATENCY_BUCKETS: [f64; 14] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Service tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads draining the admission queue. `0` is permitted
    /// (admit but never serve) and exists for backpressure tests.
    pub workers: usize,
    /// Maximum queued (admitted, not yet dispatched) requests; beyond
    /// this, submissions are rejected with [`ServiceError::QueueFull`].
    pub queue_limit: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Entries per cache shard (total capacity = shards × this).
    pub cache_capacity_per_shard: usize,
    /// Default per-request deadline in milliseconds when the request
    /// does not carry one; `0` disables deadlines by default.
    pub default_deadline_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_limit: 64,
            cache_shards: 8,
            cache_capacity_per_shard: 128,
            default_deadline_ms: 10_000,
        }
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Mapping-cache hits (submit fast path + worker in-flight hits).
    pub hits: u64,
    /// Mapping-cache misses (requests that ran the pipeline).
    pub misses: u64,
    /// Requests rejected with [`ServiceError::QueueFull`].
    pub queue_full: u64,
    /// Requests rejected with [`ServiceError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Current mapping-cache entry count.
    pub cache_entries: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
}

impl ServiceStats {
    /// Cache hit rate in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// JSON body for the `stats` protocol op.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("hits", Json::UInt(self.hits)),
            ("misses", Json::UInt(self.misses)),
            ("queue_full", Json::UInt(self.queue_full)),
            ("deadline_exceeded", Json::UInt(self.deadline_exceeded)),
            ("cache_entries", Json::UInt(self.cache_entries)),
            ("queue_depth", Json::UInt(self.queue_depth)),
            ("hit_rate", Json::Float(self.hit_rate())),
        ])
    }
}

struct Job {
    fp: Fingerprint,
    req: MapRequest,
    deadline: Option<Instant>,
    budget_ms: u64,
    reply: mpsc::SyncSender<Result<(Arc<MappedProgram>, bool), ServiceError>>,
}

struct Inner {
    cfg: ServiceConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    cache: ShardedLru<Fingerprint, Arc<MappedProgram>>,
    metrics: Mutex<Registry>,
    stopping: AtomicBool,
}

/// The in-process mapping service: worker pool + admission queue +
/// fingerprint-keyed mapping cache. Cheap to share behind an [`Arc`];
/// dropped services shut their workers down.
pub struct MapService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl MapService {
    /// Starts the worker pool and returns the running service.
    pub fn start(cfg: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            cache: ShardedLru::new(cfg.cache_shards.max(1), cfg.cache_capacity_per_shard.max(1)),
            metrics: Mutex::new(Registry::new()),
            stopping: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("map-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn mapping worker")
            })
            .collect();
        MapService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// Submits one mapping request and blocks until it is served,
    /// rejected, or its deadline expires.
    ///
    /// The fast path — a fingerprint-cache hit — answers in O(hash +
    /// shard lookup) without touching the queue. Misses are admitted to
    /// the bounded queue (or rejected with a typed error) and computed
    /// by the worker pool.
    pub fn submit(&self, req: MapRequest) -> Result<MapResponse, ServiceError> {
        self.inner.submit(req)
    }

    /// Renders the metric registry in Prometheus text format, with the
    /// queue-depth and cache-entries gauges refreshed first.
    pub fn metrics_text(&self) -> String {
        self.inner.refresh_gauges();
        self.inner
            .metrics
            .lock()
            .expect("metrics poisoned")
            .to_prometheus()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// Records a transport-level rejection by the TCP front end — a
    /// connection refused at the cap (`"conn_limit"`) or one that sat
    /// idle past the read timeout (`"read_timeout"`) — so `/metrics`
    /// shows drops that never became requests next to request outcomes.
    pub fn count_front_end_rejection(&self, reason: &str) {
        let mut m = self.inner.metrics.lock().expect("metrics poisoned");
        m.counter_add(
            "cachemap_service_front_end_rejections_total",
            "Connections rejected by the TCP front end",
            &[("reason", reason)],
            1,
        );
    }

    /// The current value of the front-end rejection counter for `reason`
    /// (`0` before any rejection).
    pub fn front_end_rejections(&self, reason: &str) -> u64 {
        let m = self.inner.metrics.lock().expect("metrics poisoned");
        m.counter(
            "cachemap_service_front_end_rejections_total",
            &[("reason", reason)],
        )
        .unwrap_or(0)
    }

    /// Stops the worker pool: pending queue entries are answered with
    /// [`ServiceError::Shutdown`], workers are joined. Idempotent.
    pub fn shutdown(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            for job in q.drain(..) {
                let _ = job.reply.try_send(Err(ServiceError::Shutdown));
            }
        }
        self.inner.available.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("workers poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for MapService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn submit(&self, req: MapRequest) -> Result<MapResponse, ServiceError> {
        let start = Instant::now();
        if self.stopping.load(Ordering::SeqCst) {
            self.count_outcome("shutdown");
            return Err(ServiceError::Shutdown);
        }
        req.platform
            .validate()
            .map_err(|e| self.reject_bad_request(format!("platform: {e}")))?;
        let fp = cachemap_core::fingerprint(&req.program, &req.platform, &req.mapper, req.version);

        // Fast path: O(lookup) on the sharded cache, no queueing.
        if let Some(mapping) = self.cache.get(&fp) {
            self.record_hit(start);
            return Ok(MapResponse {
                id: req.id,
                cached: true,
                fingerprint: fp,
                mapping,
                service_us: start.elapsed().as_micros() as u64,
            });
        }

        let budget_ms = req.deadline_ms.unwrap_or(self.cfg.default_deadline_ms);
        let deadline = if budget_ms == 0 && req.deadline_ms.is_some() {
            // An explicit zero budget is an already-expired deadline.
            self.count_outcome("deadline_exceeded");
            self.observe_latency("rejected", start);
            return Err(ServiceError::DeadlineExceeded { budget_ms });
        } else if budget_ms == 0 {
            None
        } else {
            Some(start + Duration::from_millis(budget_ms))
        };

        // Admission: bounded queue, reject-on-full backpressure.
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut q = self.queue.lock().expect("queue poisoned");
            if self.stopping.load(Ordering::SeqCst) {
                self.count_outcome("shutdown");
                return Err(ServiceError::Shutdown);
            }
            if q.len() >= self.cfg.queue_limit {
                let depth = q.len();
                drop(q);
                self.count_outcome("queue_full");
                self.observe_latency("rejected", start);
                return Err(ServiceError::QueueFull {
                    depth,
                    limit: self.cfg.queue_limit,
                });
            }
            q.push_back(Job {
                fp,
                req: req.clone(),
                deadline,
                budget_ms,
                reply: tx,
            });
        }
        self.available.notify_one();

        // Wait for the worker (or the deadline, whichever first).
        let outcome = match deadline {
            None => rx.recv().map_err(|_| ServiceError::Shutdown)?,
            Some(d) => {
                let budget = d.saturating_duration_since(Instant::now());
                match rx.recv_timeout(budget) {
                    Ok(res) => res,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        self.count_outcome("deadline_exceeded");
                        self.observe_latency("rejected", start);
                        return Err(ServiceError::DeadlineExceeded { budget_ms });
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::Shutdown),
                }
            }
        };
        match outcome {
            Ok((mapping, was_cached)) => {
                let outcome_label = if was_cached {
                    "ok_cached"
                } else {
                    "ok_computed"
                };
                self.count_outcome(outcome_label);
                self.observe_latency(if was_cached { "hit" } else { "computed" }, start);
                Ok(MapResponse {
                    id: req.id,
                    cached: was_cached,
                    fingerprint: fp,
                    mapping,
                    service_us: start.elapsed().as_micros() as u64,
                })
            }
            Err(e) => {
                self.count_outcome(e.code());
                self.observe_latency("rejected", start);
                Err(e)
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    q = self.available.wait(q).expect("queue poisoned");
                }
            };

            // Late at dispatch: answer with the typed rejection rather
            // than burning a worker on a result nobody is waiting for.
            if let Some(d) = job.deadline {
                if Instant::now() > d {
                    let _ = job.reply.try_send(Err(ServiceError::DeadlineExceeded {
                        budget_ms: job.budget_ms,
                    }));
                    continue;
                }
            }

            // In-flight duplicate: another worker may have filled the
            // cache since admission.
            if let Some(mapping) = self.cache.get(&job.fp) {
                self.bump_counter("cachemap_service_cache_hits_total", "Mapping cache hits");
                let _ = job.reply.try_send(Ok((mapping, true)));
                continue;
            }

            let computed_at = Instant::now();
            let result = self.compute(&job.req);
            match result {
                Ok(mapping) => {
                    let mapping = Arc::new(mapping);
                    self.cache.insert(job.fp, Arc::clone(&mapping));
                    self.bump_counter(
                        "cachemap_service_cache_misses_total",
                        "Mapping cache misses (pipeline runs)",
                    );
                    {
                        let mut m = self.metrics.lock().expect("metrics poisoned");
                        m.histogram_observe(
                            "cachemap_service_map_compute_seconds",
                            "Cold mapping pipeline latency",
                            &LATENCY_BUCKETS,
                            &[],
                            computed_at.elapsed().as_secs_f64(),
                        );
                    }
                    let _ = job.reply.try_send(Ok((mapping, false)));
                }
                Err(e) => {
                    let _ = job.reply.try_send(Err(e));
                }
            }
        }
    }

    fn compute(&self, req: &MapRequest) -> Result<MappedProgram, ServiceError> {
        let tree =
            HierarchyTree::from_config(&req.platform).map_err(|e| ServiceError::BadRequest {
                message: format!("platform: {e}"),
            })?;
        let data = DataSpace::new(&req.program.arrays, req.platform.chunk_bytes);
        let mapper = cachemap_core::Mapper::new(req.mapper);
        Ok(mapper.map(&req.program, &data, &req.platform, &tree, req.version))
    }

    fn reject_bad_request(&self, message: String) -> ServiceError {
        self.count_outcome("bad_request");
        ServiceError::BadRequest { message }
    }

    fn record_hit(&self, start: Instant) {
        self.bump_counter("cachemap_service_cache_hits_total", "Mapping cache hits");
        self.count_outcome("ok_cached");
        self.observe_latency("hit", start);
    }

    fn bump_counter(&self, name: &str, help: &str) {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.counter_add(name, help, &[], 1);
    }

    fn count_outcome(&self, outcome: &str) {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.counter_add(
            "cachemap_service_requests_total",
            "Mapping requests by outcome",
            &[("op", "map"), ("outcome", outcome)],
            1,
        );
    }

    fn observe_latency(&self, path: &str, start: Instant) {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.histogram_observe(
            "cachemap_service_request_latency_seconds",
            "End-to-end service latency by path",
            &LATENCY_BUCKETS,
            &[("path", path)],
            start.elapsed().as_secs_f64(),
        );
    }

    fn refresh_gauges(&self) {
        let depth = self.queue.lock().expect("queue poisoned").len();
        let entries = self.cache.len();
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.gauge_set(
            "cachemap_service_queue_depth",
            "Current admission-queue depth",
            &[],
            depth as f64,
        );
        m.gauge_set(
            "cachemap_service_cache_entries",
            "Current mapping-cache entry count",
            &[],
            entries as f64,
        );
    }

    fn stats(&self) -> ServiceStats {
        let m = self.metrics.lock().expect("metrics poisoned");
        let outcome = |o: &str| {
            m.counter(
                "cachemap_service_requests_total",
                &[("op", "map"), ("outcome", o)],
            )
            .unwrap_or(0)
        };
        ServiceStats {
            hits: m
                .counter("cachemap_service_cache_hits_total", &[])
                .unwrap_or(0),
            misses: m
                .counter("cachemap_service_cache_misses_total", &[])
                .unwrap_or(0),
            queue_full: outcome("queue_full"),
            deadline_exceeded: outcome("deadline_exceeded"),
            cache_entries: self.cache.len() as u64,
            queue_depth: self.queue.lock().expect("queue poisoned").len() as u64,
        }
    }
}
