//! Seeded network-fault injection for router backends.
//!
//! A [`NetFaultPlan`] describes, in parts-per-million, how often a
//! backend call is hit by one of four transport faults:
//!
//! * **refuse** — the connection is refused outright (the call never
//!   reaches the backend);
//! * **stall** — the read stalls for `stall_ns` and then fails, as a
//!   peer that accepted the connection but never answers;
//! * **slow** — the reply arrives, but `slow_ns` late;
//! * **truncate** — the backend processes the request but the reply
//!   frame is cut mid-line, so the bytes never parse client-side.
//!
//! [`FaultedBackend`] wraps any [`Backend`](crate::router::Backend) and
//! draws **one** fault decision per call from a per-backend seeded
//! generator, in call order — under the router-storm harness's
//! single-threaded driver the whole fault schedule is a pure function
//! of `(seed, backend, call index)`, which is what makes failover runs
//! byte-for-byte reproducible. Stall and slow delays are charged to the
//! router's [`Clock`](crate::router::Clock): on the simulated path they
//! advance the virtual clock and never sleep.

use crate::router::{Backend, BackendError, Clock};
use crate::{MapRequest, MapResponse};
use cachemap_util::{Json, ToJson, XorShift64};
use std::sync::{Arc, Mutex};

/// Per-million rates and delays for the four transport fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Seed for the fault schedule (each backend derives its own
    /// stream from this and its index).
    pub seed: u64,
    /// Connection-refused rate, parts per million of calls.
    pub refuse_ppm: u32,
    /// Read-stall rate, parts per million of calls.
    pub stall_ppm: u32,
    /// Slow-reply rate, parts per million of calls.
    pub slow_ppm: u32,
    /// Mid-frame truncation rate, parts per million of calls.
    pub truncate_ppm: u32,
    /// How long a stalled read hangs before failing, in nanoseconds.
    pub stall_ns: u64,
    /// Extra latency of a slow reply, in nanoseconds.
    pub slow_ns: u64,
}

impl NetFaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn quiet(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            refuse_ppm: 0,
            stall_ppm: 0,
            slow_ppm: 0,
            truncate_ppm: 0,
            stall_ns: 0,
            slow_ns: 0,
        }
    }

    /// Total injection rate, clamped to one million ppm.
    pub fn total_ppm(&self) -> u32 {
        (self.refuse_ppm as u64
            + self.stall_ppm as u64
            + self.slow_ppm as u64
            + self.truncate_ppm as u64)
            .min(1_000_000) as u32
    }
}

impl ToJson for NetFaultPlan {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("seed", Json::UInt(self.seed)),
            ("refuse_ppm", Json::UInt(self.refuse_ppm as u64)),
            ("stall_ppm", Json::UInt(self.stall_ppm as u64)),
            ("slow_ppm", Json::UInt(self.slow_ppm as u64)),
            ("truncate_ppm", Json::UInt(self.truncate_ppm as u64)),
            ("stall_ns", Json::UInt(self.stall_ns)),
            ("slow_ns", Json::UInt(self.slow_ns)),
        ])
    }
}

/// The fault kinds a call can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetFault {
    Refuse,
    Stall,
    Slow,
    Truncate,
}

/// A [`Backend`] wrapper that injects transport faults per the plan.
pub struct FaultedBackend {
    inner: Box<dyn Backend>,
    plan: NetFaultPlan,
    clock: Arc<Clock>,
    rng: Mutex<XorShift64>,
}

impl FaultedBackend {
    /// Wraps `inner`, deriving this backend's fault stream from the
    /// plan seed and `backend_index` so each replica sees its own
    /// schedule.
    pub fn new(
        inner: Box<dyn Backend>,
        plan: NetFaultPlan,
        backend_index: usize,
        clock: Arc<Clock>,
    ) -> FaultedBackend {
        let seed = plan
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(backend_index as u64 + 1);
        FaultedBackend {
            inner,
            plan,
            clock,
            rng: Mutex::new(XorShift64::new(seed)),
        }
    }

    /// Draws at most one fault for the next call.
    fn draw(&self) -> Option<NetFault> {
        let mut rng = self.rng.lock().expect("netfault rng poisoned");
        let roll = rng.next_below(1_000_000) as u32;
        let mut edge = self.plan.refuse_ppm;
        if roll < edge {
            return Some(NetFault::Refuse);
        }
        edge = edge.saturating_add(self.plan.stall_ppm);
        if roll < edge {
            return Some(NetFault::Stall);
        }
        edge = edge.saturating_add(self.plan.slow_ppm);
        if roll < edge {
            return Some(NetFault::Slow);
        }
        edge = edge.saturating_add(self.plan.truncate_ppm);
        if roll < edge {
            return Some(NetFault::Truncate);
        }
        None
    }
}

impl Backend for FaultedBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn call(&self, req: &MapRequest) -> Result<MapResponse, BackendError> {
        match self.draw() {
            Some(NetFault::Refuse) => Err(BackendError::Unavailable(
                "injected: connection refused".into(),
            )),
            Some(NetFault::Stall) => {
                self.clock.sleep_ns(self.plan.stall_ns);
                Err(BackendError::Unavailable(
                    "injected: read stalled past deadline".into(),
                ))
            }
            Some(NetFault::Slow) => {
                let resp = self.inner.call(req);
                self.clock.sleep_ns(self.plan.slow_ns);
                resp
            }
            Some(NetFault::Truncate) => {
                // The backend did the work — the reply frame is what got
                // cut. Warms the replica's cache, loses the bytes.
                let _ = self.inner.call(req);
                Err(BackendError::Unavailable(
                    "injected: response truncated mid-frame".into(),
                ))
            }
            None => self.inner.call(req),
        }
    }

    fn ping(&self, deadline_ms: u64) -> bool {
        // Health checks ride the same faulty transport: refuse and
        // stall fail the ping, slow and truncate let it through (a
        // ping's one-byte reply has nothing left to truncate).
        match self.draw() {
            Some(NetFault::Refuse) => false,
            Some(NetFault::Stall) => {
                self.clock.sleep_ns(self.plan.stall_ns);
                false
            }
            Some(NetFault::Slow) => {
                self.clock.sleep_ns(self.plan.slow_ns);
                self.inner.ping(deadline_ms)
            }
            _ => self.inner.ping(deadline_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = NetFaultPlan::quiet(7);
        assert_eq!(plan.total_ppm(), 0);
        let clock = Arc::new(Clock::simulated());
        let fb = FaultedBackend::new(Box::new(crate::router::NullBackend), plan, 0, clock);
        for _ in 0..100 {
            assert!(fb.draw().is_none());
        }
    }

    #[test]
    fn fault_schedule_is_deterministic_per_backend() {
        let plan = NetFaultPlan {
            refuse_ppm: 100_000,
            stall_ppm: 100_000,
            slow_ppm: 100_000,
            truncate_ppm: 100_000,
            ..NetFaultPlan::quiet(42)
        };
        let clock = Arc::new(Clock::simulated());
        let draws = |idx: usize| {
            let fb = FaultedBackend::new(
                Box::new(crate::router::NullBackend),
                plan,
                idx,
                Arc::clone(&clock),
            );
            (0..200).map(|_| fb.draw()).collect::<Vec<_>>()
        };
        assert_eq!(draws(0), draws(0), "same backend index replays");
        assert_ne!(draws(0), draws(1), "backends draw distinct streams");
        let n_faults = draws(0).iter().filter(|d| d.is_some()).count();
        // 40% total rate over 200 draws: expect faults, not all faults.
        assert!((20..=140).contains(&n_faults), "got {n_faults} faults");
    }

    #[test]
    fn stall_charges_the_simulated_clock() {
        let plan = NetFaultPlan {
            stall_ppm: 1_000_000,
            stall_ns: 5_000,
            ..NetFaultPlan::quiet(1)
        };
        let clock = Arc::new(Clock::simulated());
        let fb = FaultedBackend::new(
            Box::new(crate::router::NullBackend),
            plan,
            0,
            Arc::clone(&clock),
        );
        assert!(!fb.ping(100));
        assert_eq!(clock.now_ns(), 5_000);
    }
}
