//! A failure-hardened consistent-hash router over a `MapService` fleet.
//!
//! The [`Router`] owns N replicas behind the [`Backend`] trait —
//! in-process [`LocalBackend`] handles, TCP [`TcpBackend`] clients, or
//! fault-injected wrappers (see [`crate::netfault`]) — and places each
//! request on the replica owning its **content fingerprint** on an FNV
//! consistent-hash ring (`cachemap_util::HashRing`, 64 virtual nodes
//! per replica by default). Identical fleets route identically, and the
//! replica that already computed a mapping is the replica asked again —
//! the paper's cache-affinity idea lifted to the fleet tier.
//!
//! The robustness contract is **no untyped client-visible errors**:
//! whatever fails underneath — a killed replica, a refused connection,
//! a truncated reply — the caller receives either a mapping or a typed
//! [`ServiceError`]. Three mechanisms enforce it:
//!
//! * **Active health checks** ([`crate::health`]): every
//!   [`Router::health_tick`] pings each backend (bounded by
//!   `HealthConfig::ping_deadline_ms`); replicas declared `Down` are
//!   skipped in ring order entirely, and the transition fires the
//!   flight recorder's `replica_down` trigger.
//! * **Retry budgets with jittered backoff**: transport-level failures
//!   are retried up to `RouterConfig::retries` times per backend, the
//!   delays drawn from a seeded full-jitter [`Backoff`] schedule. On a
//!   simulated [`Clock`] the delays advance virtual time and never
//!   sleep, keeping robustness runs deterministic and fast.
//! * **Circuit breakers** (`cachemap_util::CircuitBreaker`): each
//!   backend's recent failure rate trips a per-replica breaker; while
//!   open, the router sheds that replica and routes to its next ring
//!   successor, then re-admits it through a half-open single probe.
//!
//! Business-level rejections (`bad_request`, `queue_full`,
//! `deadline_exceeded`, `quota_exceeded`…) are answers from a *live*
//! replica: they return to the caller immediately, count as breaker
//! successes, and never trigger failover — only `shutdown`, `internal`,
//! and transport errors do.

use crate::error::ServiceError;
use crate::health::{HealthConfig, HealthState, HealthTracker};
use crate::proto::{MapRequest, MapResponse};
use crate::MapService;
use cachemap_obs::{FlightRecorder, Registry};
use cachemap_storage::wire::mapped_program_from_json;
use cachemap_util::{Backoff, BreakerConfig, BreakerState, CircuitBreaker};
use cachemap_util::{Fingerprint, HashRing, Json, ToJson};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a backend call failed, as seen by the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// Transport-level failure: refused, stalled, truncated, torn down.
    /// Always failover-eligible.
    Unavailable(String),
    /// The backend answered with a typed service error. Failover
    /// eligibility depends on the variant (see module docs).
    Service(ServiceError),
}

impl BackendError {
    /// Stable code for metrics and reports.
    pub fn code(&self) -> &str {
        match self {
            BackendError::Unavailable(_) => "unavailable",
            BackendError::Service(e) => e.code(),
        }
    }
}

/// One replica as the router sees it.
pub trait Backend: Send + Sync {
    /// Stable replica name (metric label, error messages).
    fn name(&self) -> &str;
    /// One mapping call.
    fn call(&self, req: &MapRequest) -> Result<MapResponse, BackendError>;
    /// Liveness probe, bounded by `deadline_ms` where the transport
    /// supports it.
    fn ping(&self, deadline_ms: u64) -> bool;
}

/// Shared backends delegate: harnesses keep an `Arc<LocalBackend>`
/// handle for kill/restart while the router owns a clone as a
/// `Box<dyn Backend>`.
impl<B: Backend + ?Sized> Backend for Arc<B> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn call(&self, req: &MapRequest) -> Result<MapResponse, BackendError> {
        (**self).call(req)
    }

    fn ping(&self, deadline_ms: u64) -> bool {
        (**self).ping(deadline_ms)
    }
}

/// The router's clock — now the workspace-wide [`cachemap_util::Clock`]
/// (re-exported here so `crate::router::Clock` paths keep working);
/// real time, or a virtual nanosecond counter for deterministic
/// robustness harnesses.
pub use cachemap_util::Clock;

/// An in-process replica: an `Arc<MapService>` slot that [`kill`] can
/// empty (calls then fail like a refused connection) and [`restart`]
/// can refill — the unit the router-storm harness crashes and revives.
///
/// [`kill`]: LocalBackend::kill
/// [`restart`]: LocalBackend::restart
pub struct LocalBackend {
    name: String,
    slot: Mutex<Option<Arc<MapService>>>,
}

impl LocalBackend {
    /// Wraps a running service as a named backend.
    pub fn new(name: impl Into<String>, service: Arc<MapService>) -> LocalBackend {
        LocalBackend {
            name: name.into(),
            slot: Mutex::new(Some(service)),
        }
    }

    /// Crash-kills the replica: the service's workers stop as in
    /// [`MapService::kill`] and the slot empties, so subsequent calls
    /// and pings fail at the "transport".
    pub fn kill(&self) {
        let svc = self.slot.lock().expect("backend slot poisoned").take();
        if let Some(svc) = svc {
            svc.kill();
        }
    }

    /// Installs a fresh (typically cold) service in the slot.
    pub fn restart(&self, service: Arc<MapService>) {
        *self.slot.lock().expect("backend slot poisoned") = Some(service);
    }

    /// The current service, if the replica is up.
    pub fn service(&self) -> Option<Arc<MapService>> {
        self.slot.lock().expect("backend slot poisoned").clone()
    }
}

impl Backend for LocalBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, req: &MapRequest) -> Result<MapResponse, BackendError> {
        let Some(svc) = self.service() else {
            return Err(BackendError::Unavailable("connection refused".into()));
        };
        match svc.submit(req.clone()) {
            Ok(mut resp) => {
                // The router is the front end here: close any pending
                // trace (zero serialize time — nothing is serialized on
                // the in-process path) so stage metrics still land.
                if let Some(pending) = resp.trace.take() {
                    let _ = svc.finalize_trace(pending, Duration::ZERO);
                }
                Ok(resp)
            }
            Err(e) => Err(BackendError::Service(e)),
        }
    }

    fn ping(&self, _deadline_ms: u64) -> bool {
        self.service().map(|svc| svc.ping()).unwrap_or(false)
    }
}

/// A ping-only backend whose calls always fail — test support for the
/// fault-injection and breaker paths.
pub struct NullBackend;

impl Backend for NullBackend {
    fn name(&self) -> &str {
        "null"
    }

    fn call(&self, _req: &MapRequest) -> Result<MapResponse, BackendError> {
        Err(BackendError::Unavailable("null backend".into()))
    }

    fn ping(&self, _deadline_ms: u64) -> bool {
        true
    }
}

/// A TCP replica speaking the JSON-lines protocol of [`crate::server`].
/// One persistent connection, re-established on demand; every I/O
/// failure tears the connection down and surfaces as
/// [`BackendError::Unavailable`].
pub struct TcpBackend {
    name: String,
    addr: SocketAddr,
    connect_timeout_ms: u64,
    read_timeout_ms: u64,
    conn: Mutex<Option<BufReader<TcpStream>>>,
}

impl TcpBackend {
    /// A backend for the server at `addr`.
    pub fn new(name: impl Into<String>, addr: SocketAddr) -> TcpBackend {
        TcpBackend {
            name: name.into(),
            addr,
            connect_timeout_ms: 500,
            read_timeout_ms: 5_000,
            conn: Mutex::new(None),
        }
    }

    fn connect(&self) -> std::io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect_timeout(
            &self.addr,
            Duration::from_millis(self.connect_timeout_ms.max(1)),
        )?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    /// Writes one request line and reads one reply line over the
    /// persistent connection, with `read_timeout_ms` as the read bound.
    fn round_trip(&self, line: &str, read_timeout_ms: u64) -> std::io::Result<String> {
        let mut guard = self.conn.lock().expect("tcp backend poisoned");
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        let result = (|| {
            let reader = guard.as_mut().expect("just connected");
            reader
                .get_ref()
                .set_read_timeout(Some(Duration::from_millis(read_timeout_ms.max(1))))?;
            reader.get_mut().write_all(line.as_bytes())?;
            reader.get_mut().write_all(b"\n")?;
            reader.get_mut().flush()?;
            let mut reply = String::new();
            if reader.read_line(&mut reply)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ));
            }
            Ok(reply)
        })();
        if result.is_err() {
            // Never reuse a connection in an unknown framing state.
            *guard = None;
        }
        result
    }
}

impl Backend for TcpBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, req: &MapRequest) -> Result<MapResponse, BackendError> {
        let line = req.to_json().to_string_compact();
        let reply = self
            .round_trip(&line, self.read_timeout_ms)
            .map_err(|e| BackendError::Unavailable(e.to_string()))?;
        let v = cachemap_util::json::parse(reply.trim())
            .map_err(|e| BackendError::Unavailable(format!("unparseable reply: {e}")))?;
        match v.get("status").and_then(Json::as_str) {
            Some("ok") => {
                let parse = || -> Option<MapResponse> {
                    Some(MapResponse {
                        id: v.get("id")?.as_u64()?,
                        cached: matches!(v.get("cached"), Some(Json::Bool(true))),
                        fingerprint: Fingerprint::from_hex(v.get("fingerprint")?.as_str()?)?,
                        service_us: v.get("service_us")?.as_u64()?,
                        mapping: Arc::new(mapped_program_from_json(v.get("mapping")?).ok()?),
                        trace: None,
                    })
                };
                parse().ok_or_else(|| {
                    BackendError::Unavailable("malformed ok reply (truncated?)".into())
                })
            }
            Some("error") => {
                let err = v
                    .get("error")
                    .and_then(ServiceError::from_response_json)
                    .unwrap_or_else(|| ServiceError::Internal {
                        message: "unparseable error body".into(),
                    });
                Err(BackendError::Service(err))
            }
            _ => Err(BackendError::Unavailable("reply missing status".into())),
        }
    }

    fn ping(&self, deadline_ms: u64) -> bool {
        match self.round_trip("{\"op\":\"ping\",\"id\":0}", deadline_ms.max(1)) {
            Ok(reply) => reply.contains("\"pong\""),
            Err(_) => false,
        }
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Virtual nodes per replica on the consistent-hash ring.
    pub vnodes: usize,
    /// Extra attempts per backend after the first (0 = no retries).
    pub retries: u32,
    /// First retry delay, nanoseconds.
    pub backoff_base_ns: u64,
    /// Retry delay cap, nanoseconds.
    pub backoff_cap_ns: u64,
    /// Seed for the jittered backoff schedules (per-request streams are
    /// derived from this, the request sequence number, and the replica).
    pub seed: u64,
    /// Per-replica circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Health-check thresholds.
    pub health: HealthConfig,
    /// Background health-check cadence in milliseconds; `0` disables
    /// the thread (harnesses call [`Router::health_tick`] themselves).
    pub health_interval_ms: u64,
    /// Flight-recorder ring capacity; `0` disables the recorder.
    pub flight_capacity: usize,
    /// Directory for `flight-replica_down-*.json` dumps.
    pub flight_dir: PathBuf,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vnodes: 64,
            retries: 2,
            backoff_base_ns: 1_000_000,
            backoff_cap_ns: 16_000_000,
            seed: 0xC0FF_EE00,
            breaker: BreakerConfig::default(),
            health: HealthConfig::default(),
            health_interval_ms: 0,
            flight_capacity: 0,
            flight_dir: PathBuf::from("."),
        }
    }
}

/// Per-replica mutable state (breaker + health), one lock per replica
/// so a slow backend never serializes the whole fleet.
struct ReplicaState {
    breaker: CircuitBreaker,
    health: HealthTracker,
}

/// Aggregate counters for [`RouterStats`].
#[derive(Debug, Default, Clone)]
struct Totals {
    ok: u64,
    ok_failover: u64,
    errors: std::collections::BTreeMap<String, u64>,
    retries: u64,
    failovers: u64,
    shed_down: u64,
    shed_open: u64,
}

/// A point-in-time snapshot of the router's counters and fleet state.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Requests answered with a mapping.
    pub ok: u64,
    /// Of those, answered by a non-primary replica.
    pub ok_failover: u64,
    /// Typed errors returned to callers, by code.
    pub errors: std::collections::BTreeMap<String, u64>,
    /// Retry attempts after a transport-level failure.
    pub retries: u64,
    /// Times the router moved past a replica after exhausting its
    /// retry budget.
    pub failovers: u64,
    /// Ring candidates skipped because health said `Down`.
    pub shed_down: u64,
    /// Ring candidates skipped because the breaker was open.
    pub shed_open: u64,
    /// Per-replica `(name, served, health, breaker)`.
    pub replicas: Vec<(String, u64, HealthState, BreakerState)>,
}

impl ToJson for RouterStats {
    fn to_json(&self) -> Json {
        let errors = Json::Object(
            self.errors
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        );
        let replicas = self
            .replicas
            .iter()
            .map(|(name, served, health, breaker)| {
                Json::object(vec![
                    ("name", Json::Str(name.clone())),
                    ("served", Json::UInt(*served)),
                    ("health", Json::Str(health.label().into())),
                    ("breaker", Json::Str(breaker.label().into())),
                ])
            })
            .collect();
        Json::object(vec![
            ("ok", Json::UInt(self.ok)),
            ("ok_failover", Json::UInt(self.ok_failover)),
            ("errors", errors),
            ("retries", Json::UInt(self.retries)),
            ("failovers", Json::UInt(self.failovers)),
            ("shed_down", Json::UInt(self.shed_down)),
            ("shed_open", Json::UInt(self.shed_open)),
            ("replicas", Json::Array(replicas)),
        ])
    }
}

/// Gate decision for one ring candidate.
enum Gate {
    /// Call with the full retry budget.
    Go,
    /// Breaker half-open: exactly one probe attempt.
    Probe,
    /// Health says down — skip without calling.
    Down,
    /// Breaker open — skip without calling.
    Open,
}

/// The consistent-hash front end over the replica fleet.
pub struct Router {
    backends: Vec<Box<dyn Backend>>,
    names: Vec<String>,
    ring: HashRing,
    clock: Arc<Clock>,
    cfg: RouterConfig,
    replicas: Vec<Mutex<ReplicaState>>,
    served: Vec<AtomicU64>,
    totals: Mutex<Totals>,
    metrics: Mutex<Registry>,
    flight: Option<FlightRecorder>,
    seq: AtomicU64,
    health_stop: Arc<AtomicBool>,
    health_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Router {
    /// Builds a router over `backends` with the given clock.
    ///
    /// # Panics
    /// When `backends` is empty — a router needs a fleet.
    pub fn new(backends: Vec<Box<dyn Backend>>, clock: Arc<Clock>, cfg: RouterConfig) -> Router {
        assert!(!backends.is_empty(), "router needs at least one backend");
        let names: Vec<String> = backends.iter().map(|b| b.name().to_string()).collect();
        let ring = HashRing::new(backends.len(), cfg.vnodes.max(1));
        let replicas = backends
            .iter()
            .map(|_| {
                Mutex::new(ReplicaState {
                    breaker: CircuitBreaker::new(cfg.breaker),
                    health: HealthTracker::new(cfg.health),
                })
            })
            .collect();
        let served = backends.iter().map(|_| AtomicU64::new(0)).collect();
        let flight = (cfg.flight_capacity > 0).then(|| FlightRecorder::new(cfg.flight_capacity));
        let mut metrics = Registry::new();
        for name in &names {
            metrics.gauge_set(
                "cachemap_router_replica_health",
                "Replica health (0 healthy, 1 suspect, 2 down, 3 probing)",
                &[("replica", name)],
                0.0,
            );
            metrics.gauge_set(
                "cachemap_router_replica_breaker",
                "Replica breaker state (0 closed, 1 open, 2 half-open)",
                &[("replica", name)],
                0.0,
            );
            metrics.counter_add(
                "cachemap_router_served_total",
                "Requests served, by replica",
                &[("replica", name)],
                0,
            );
        }
        for c in [
            "cachemap_router_retries_total",
            "cachemap_router_failovers_total",
        ] {
            metrics.counter_add(c, "Router retry/failover counters", &[], 0);
        }
        for reason in ["down", "breaker_open"] {
            metrics.counter_add(
                "cachemap_router_sheds_total",
                "Ring candidates skipped without a call, by reason",
                &[("reason", reason)],
                0,
            );
        }
        Router {
            backends,
            names,
            ring,
            clock,
            cfg,
            replicas,
            served,
            totals: Mutex::new(Totals::default()),
            metrics: Mutex::new(metrics),
            flight,
            seq: AtomicU64::new(0),
            health_stop: Arc::new(AtomicBool::new(false)),
            health_thread: Mutex::new(None),
        }
    }

    /// [`Router::new`] plus a background health-check thread at
    /// `cfg.health_interval_ms` (real-clock deployments; harnesses
    /// leave the interval at 0 and tick manually).
    pub fn start(
        backends: Vec<Box<dyn Backend>>,
        clock: Arc<Clock>,
        cfg: RouterConfig,
    ) -> Arc<Router> {
        let interval = cfg.health_interval_ms;
        let router = Arc::new(Router::new(backends, clock, cfg));
        if interval > 0 {
            let weak = Arc::downgrade(&router);
            let stop = Arc::clone(&router.health_stop);
            let handle = std::thread::Builder::new()
                .name("router-health".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(interval));
                        match weak.upgrade() {
                            Some(r) => {
                                r.health_tick();
                            }
                            None => break,
                        }
                    }
                })
                .expect("spawn router-health");
            *router.health_thread.lock().expect("health thread poisoned") = Some(handle);
        }
        router
    }

    /// Stops the background health checker, if one is running.
    pub fn stop_health_checks(&self) {
        self.health_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self
            .health_thread
            .lock()
            .expect("health thread poisoned")
            .take()
        {
            let _ = h.join();
        }
    }

    /// The router's clock (harnesses advance it between requests).
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Replica index that primarily owns `fingerprint` on the ring.
    pub fn primary_of(&self, fingerprint: Fingerprint) -> usize {
        self.ring.primary(HashRing::key_of(fingerprint.0))
    }

    /// Replica name by index.
    pub fn replica_name(&self, replica: usize) -> &str {
        &self.names[replica]
    }

    /// Number of replicas in the fleet.
    pub fn replicas(&self) -> usize {
        self.backends.len()
    }

    /// The backend at `replica` (harness access for kill/restart).
    pub fn backend(&self, replica: usize) -> &dyn Backend {
        self.backends[replica].as_ref()
    }

    /// Current health state of `replica`.
    pub fn health_state(&self, replica: usize) -> HealthState {
        self.replicas[replica]
            .lock()
            .expect("replica poisoned")
            .health
            .state()
    }

    /// Current breaker state of `replica` (time transitions applied).
    pub fn breaker_state(&self, replica: usize) -> BreakerState {
        let now = self.clock.now_ns();
        self.replicas[replica]
            .lock()
            .expect("replica poisoned")
            .breaker
            .poll(now)
    }

    /// The breaker transition history of `replica`, oldest first.
    pub fn breaker_history(&self, replica: usize) -> Vec<BreakerState> {
        self.replicas[replica]
            .lock()
            .expect("replica poisoned")
            .breaker
            .history()
            .collect()
    }

    /// Runs one round of active health checks: pings every backend and
    /// feeds the trackers. Returns the transitions that occurred.
    /// Declaring a replica `Down` fires the `replica_down` flight
    /// trigger.
    pub fn health_tick(&self) -> Vec<(usize, HealthState)> {
        let mut transitions = Vec::new();
        for r in 0..self.backends.len() {
            let ok = self.backends[r].ping(self.cfg.health.ping_deadline_ms);
            let change = {
                let mut st = self.replicas[r].lock().expect("replica poisoned");
                st.health.record_ping(ok)
            };
            if let Some(to) = change {
                transitions.push((r, to));
                let name = self.names[r].clone();
                {
                    let mut m = self.metrics.lock().expect("metrics poisoned");
                    m.counter_add(
                        "cachemap_router_health_transitions_total",
                        "Health state-machine transitions, by replica and target state",
                        &[("replica", &name), ("to", to.label())],
                        1,
                    );
                    let code = match to {
                        HealthState::Healthy => 0.0,
                        HealthState::Suspect => 1.0,
                        HealthState::Down => 2.0,
                        HealthState::Probing => 3.0,
                    };
                    m.gauge_set(
                        "cachemap_router_replica_health",
                        "Replica health (0 healthy, 1 suspect, 2 down, 3 probing)",
                        &[("replica", &name)],
                        code,
                    );
                }
                if to == HealthState::Down {
                    self.flight_dump_replica_down(&name);
                }
            }
        }
        transitions
    }

    fn flight_dump_replica_down(&self, name: &str) {
        let Some(flight) = &self.flight else { return };
        let extra = vec![("replica", Json::Str(name.to_string()))];
        if let Ok(Some(_)) = flight.dump(&self.cfg.flight_dir, "replica_down", 1, extra) {
            let mut m = self.metrics.lock().expect("metrics poisoned");
            m.counter_add(
                "cachemap_router_flight_dumps_total",
                "Router flight-recorder dumps by trigger",
                &[("trigger", "replica_down")],
                1,
            );
        }
    }

    /// Whether a typed service error from a replica should trigger
    /// failover (the replica is dying) rather than return to the caller
    /// (the replica answered).
    fn failover_eligible(err: &ServiceError) -> bool {
        matches!(err, ServiceError::Shutdown | ServiceError::Internal { .. })
    }

    fn count_breaker_transitions(&self, replica: usize, before: u64, st: &ReplicaState) {
        let after = st.breaker.transitions();
        if after > before {
            let to = st.breaker.state().label();
            let name = self.names[replica].clone();
            let mut m = self.metrics.lock().expect("metrics poisoned");
            m.counter_add(
                "cachemap_router_breaker_transitions_total",
                "Breaker state transitions, by replica and target state",
                &[("replica", &name), ("to", to)],
                after - before,
            );
            let code = match st.breaker.state() {
                BreakerState::Closed => 0.0,
                BreakerState::Open => 1.0,
                BreakerState::HalfOpen => 2.0,
            };
            m.gauge_set(
                "cachemap_router_replica_breaker",
                "Replica breaker state (0 closed, 1 open, 2 half-open)",
                &[("replica", &name)],
                code,
            );
        }
    }

    /// Routes one request: primary replica by fingerprint, ring
    /// successors on failure. Returns a mapping or a **typed** error —
    /// never panics on a dead replica, never surfaces a raw transport
    /// error.
    pub fn submit(&self, req: MapRequest) -> Result<MapResponse, ServiceError> {
        let fp =
            cachemap_core::wire::fingerprint(&req.program, &req.platform, &req.mapper, req.version);
        let key = HashRing::key_of(fp.0);
        let order = self.ring.successors(key);
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);

        let mut attempts = 0u32;
        let mut last_code = String::new();
        let mut shed_down = 0u64;
        let mut shed_open = 0u64;
        let mut failovers = 0u64;
        let mut retries = 0u64;

        for (pos, &r) in order.iter().enumerate() {
            let now = self.clock.now_ns();
            let gate = {
                let mut st = self.replicas[r].lock().expect("replica poisoned");
                if !st.health.state().takes_traffic() {
                    Gate::Down
                } else {
                    let before = st.breaker.transitions();
                    let state = st.breaker.poll(now);
                    let allowed = st.breaker.allow(now);
                    let gate = if !allowed {
                        Gate::Open
                    } else if state == BreakerState::HalfOpen {
                        Gate::Probe
                    } else {
                        Gate::Go
                    };
                    self.count_breaker_transitions(r, before, &st);
                    gate
                }
            };
            let budget = match gate {
                Gate::Down => {
                    shed_down += 1;
                    continue;
                }
                Gate::Open => {
                    shed_open += 1;
                    continue;
                }
                Gate::Probe => 1,
                Gate::Go => self.cfg.retries + 1,
            };

            let mut backoff =
                Backoff::exponential(self.cfg.backoff_base_ns, self.cfg.backoff_cap_ns)
                    .with_jitter(self.cfg.seed ^ seq.rotate_left(17) ^ (r as u64) << 56);

            for attempt in 0..budget {
                attempts += 1;
                let outcome = self.backends[r].call(&req);
                let now = self.clock.now_ns();
                match outcome {
                    Ok(resp) => {
                        {
                            let mut st = self.replicas[r].lock().expect("replica poisoned");
                            let before = st.breaker.transitions();
                            st.breaker.record_success(now);
                            self.count_breaker_transitions(r, before, &st);
                        }
                        self.served[r].fetch_add(1, Ordering::SeqCst);
                        self.finish(
                            seq, fp, r, pos, attempts, retries, failovers, shed_down, shed_open,
                            "ok",
                        );
                        return Ok(resp);
                    }
                    Err(e) => {
                        let failover = match &e {
                            BackendError::Unavailable(_) => true,
                            BackendError::Service(se) => Self::failover_eligible(se),
                        };
                        if !failover {
                            // A live replica answered with a business
                            // rejection: breaker success, caller's
                            // problem.
                            let BackendError::Service(se) = e else {
                                unreachable!("non-service errors always fail over")
                            };
                            {
                                let mut st = self.replicas[r].lock().expect("replica poisoned");
                                let before = st.breaker.transitions();
                                st.breaker.record_success(now);
                                self.count_breaker_transitions(r, before, &st);
                            }
                            self.finish(
                                seq,
                                fp,
                                r,
                                pos,
                                attempts,
                                retries,
                                failovers,
                                shed_down,
                                shed_open,
                                se.code(),
                            );
                            return Err(se);
                        }
                        last_code = e.code().to_string();
                        {
                            let mut st = self.replicas[r].lock().expect("replica poisoned");
                            let before = st.breaker.transitions();
                            st.breaker.record_failure(now);
                            self.count_breaker_transitions(r, before, &st);
                        }
                        if attempt + 1 < budget {
                            retries += 1;
                            let delay = backoff.next().unwrap_or(self.cfg.backoff_base_ns);
                            self.clock.sleep_ns(delay);
                        }
                    }
                }
            }
            failovers += 1;
        }

        // Exhausted the whole ring: answer typed.
        let primary = order.first().copied().unwrap_or(0);
        let err = if attempts > 0 {
            ServiceError::RetriesExhausted {
                attempts,
                last: if last_code.is_empty() {
                    "unavailable".into()
                } else {
                    last_code
                },
            }
        } else if shed_down >= shed_open {
            ServiceError::ReplicaDown {
                replica: self.names[primary].clone(),
            }
        } else {
            ServiceError::BreakerOpen {
                replica: self.names[primary].clone(),
            }
        };
        self.finish(
            seq,
            fp,
            primary,
            order.len(),
            attempts,
            retries,
            failovers,
            shed_down,
            shed_open,
            err.code(),
        );
        Err(err)
    }

    /// Books one finished request into totals, metrics, and the flight
    /// recorder.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        seq: u64,
        fp: Fingerprint,
        replica: usize,
        position: usize,
        attempts: u32,
        retries: u64,
        failovers: u64,
        shed_down: u64,
        shed_open: u64,
        outcome: &str,
    ) {
        {
            let mut t = self.totals.lock().expect("totals poisoned");
            if outcome == "ok" {
                t.ok += 1;
                if position > 0 {
                    t.ok_failover += 1;
                }
            } else {
                *t.errors.entry(outcome.to_string()).or_insert(0) += 1;
            }
            t.retries += retries;
            t.failovers += failovers;
            t.shed_down += shed_down;
            t.shed_open += shed_open;
        }
        {
            let name = self.names[replica].clone();
            let mut m = self.metrics.lock().expect("metrics poisoned");
            m.counter_add(
                "cachemap_router_requests_total",
                "Requests routed, by outcome code",
                &[("outcome", outcome)],
                1,
            );
            if outcome == "ok" {
                m.counter_add(
                    "cachemap_router_served_total",
                    "Requests served, by replica",
                    &[("replica", &name)],
                    1,
                );
                if position > 0 {
                    m.counter_add(
                        "cachemap_router_failover_served_total",
                        "Requests served by a non-primary replica",
                        &[],
                        1,
                    );
                }
            }
            m.counter_add("cachemap_router_retries_total", "", &[], retries);
            m.counter_add("cachemap_router_failovers_total", "", &[], failovers);
            m.counter_add(
                "cachemap_router_sheds_total",
                "",
                &[("reason", "down")],
                shed_down,
            );
            m.counter_add(
                "cachemap_router_sheds_total",
                "",
                &[("reason", "breaker_open")],
                shed_open,
            );
        }
        if let Some(flight) = &self.flight {
            let record = Json::object(vec![
                ("seq", Json::UInt(seq)),
                ("fingerprint", Json::Str(fp.to_hex())),
                ("replica", Json::Str(self.names[replica].clone())),
                ("attempts", Json::UInt(attempts as u64)),
                ("outcome", Json::Str(outcome.to_string())),
            ]);
            flight.record(record, outcome != "ok");
        }
    }

    /// A snapshot of the router's counters and fleet state.
    pub fn stats(&self) -> RouterStats {
        let t = self.totals.lock().expect("totals poisoned").clone();
        let now = self.clock.now_ns();
        let replicas = (0..self.backends.len())
            .map(|r| {
                let mut st = self.replicas[r].lock().expect("replica poisoned");
                (
                    self.names[r].clone(),
                    self.served[r].load(Ordering::SeqCst),
                    st.health.state(),
                    st.breaker.poll(now),
                )
            })
            .collect();
        RouterStats {
            ok: t.ok,
            ok_failover: t.ok_failover,
            errors: t.errors,
            retries: t.retries,
            failovers: t.failovers,
            shed_down: t.shed_down,
            shed_open: t.shed_open,
            replicas,
        }
    }

    /// Prometheus text exposition of the router registry.
    pub fn metrics_text(&self) -> String {
        self.metrics
            .lock()
            .expect("metrics poisoned")
            .to_prometheus()
    }

    /// Reads one router counter back (test support).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.metrics
            .lock()
            .expect("metrics poisoned")
            .counter(name, labels)
    }

    /// Reads one router gauge back (test support).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.metrics
            .lock()
            .expect("metrics poisoned")
            .gauge(name, labels)
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop_health_checks();
    }
}
