//! The JSON-lines wire protocol.
//!
//! One request per line, one response per line, UTF-8, `\n`-terminated.
//! Every request is an object with an `"op"` discriminator:
//!
//! ```text
//! {"op":"map","id":7,"version":"inter-processor","deadline_ms":5000,
//!  "program":{…},"platform":{…},"mapper":{…}}          → mapping or error
//! {"op":"ping","id":1}                                  → liveness echo
//! {"op":"metrics","id":2}                               → Prometheus text
//! {"op":"stats","id":3}                                 → cache/queue counters
//! {"op":"trace","id":5,"trace_id":"9f2c…"}              → flight-recorder trace
//! {"op":"shutdown","id":4}                              → stop accepting
//! ```
//!
//! When request tracing is enabled (`ServiceConfig::tracing`), map
//! responses additionally carry a `"trace"` object — the per-stage
//! latency attribution of that request — and `trace` looks a recent
//! trace up again by id (`"last"`, the default, returns the most
//! recent). With tracing off, map responses are byte-identical to the
//! untraced protocol and `trace` answers `not_found`.
//!
//! `mapper` and `deadline_ms` are optional (paper defaults / the
//! service's default deadline). Responses always carry `id` (0 when the
//! request was too malformed to read one) and `"status"`: `"ok"` or
//! `"error"` with a typed [`ServiceError`] body. The same port also
//! answers plain `GET /metrics` HTTP requests for scrapers (see
//! [`crate::server`]).

use crate::error::ServiceError;
use cachemap_core::wire::{mapper_config_from_json, version_from_json};
use cachemap_core::{MapperConfig, Version};
use cachemap_polyhedral::wire::program_from_json;
use cachemap_polyhedral::Program;
use cachemap_storage::wire::platform_from_json;
use cachemap_storage::{MappedProgram, PlatformConfig};
use cachemap_util::{Fingerprint, Json, ToJson};
use std::sync::Arc;

/// One mapping request: the pipeline inputs plus caller bookkeeping.
#[derive(Debug, Clone)]
pub struct MapRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The loop nests to map.
    pub program: Program,
    /// The storage hierarchy to map onto.
    pub platform: PlatformConfig,
    /// Mapper tuning knobs (paper defaults when omitted on the wire).
    pub mapper: MapperConfig,
    /// Which program version to generate.
    pub version: Version,
    /// Per-request deadline in milliseconds; `None` uses the service
    /// default, `Some(0)` is an already-expired deadline (rejected at
    /// admission — useful for probes and tests).
    pub deadline_ms: Option<u64>,
    /// Tenant for quota accounting and weighted-fair admission; `None`
    /// is the shared anonymous tenant. Deliberately **not** part of the
    /// content fingerprint: identical problems coalesce and share cache
    /// entries across tenants.
    pub tenant: Option<String>,
}

impl ToJson for MapRequest {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("op", Json::Str("map".into())),
            ("id", Json::UInt(self.id)),
            ("version", self.version.to_json()),
            ("program", self.program.to_json()),
            ("platform", self.platform.to_json()),
            ("mapper", self.mapper.to_json()),
        ];
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::UInt(ms)));
        }
        if let Some(t) = &self.tenant {
            pairs.push(("tenant", Json::Str(t.clone())));
        }
        Json::object(pairs)
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compute (or recall) a mapping.
    Map(Box<MapRequest>),
    /// Liveness echo.
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// Prometheus text exposition of the service registry.
    Metrics {
        /// Correlation id.
        id: u64,
    },
    /// Service counters as JSON (cache hits/misses, queue, rejections).
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Look up a recent request trace in the flight recorder.
    Trace {
        /// Correlation id.
        id: u64,
        /// Hex trace id, or `"last"` for the most recent trace.
        trace_id: String,
    },
    /// Ask the server to stop accepting connections.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let v = cachemap_util::json::parse(line.trim()).map_err(|e| ServiceError::BadRequest {
        message: e.to_string(),
    })?;
    request_from_json(&v)
}

/// Parses a request from an already-built JSON tree.
pub fn request_from_json(v: &Json) -> Result<Request, ServiceError> {
    let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::BadRequest {
            message: "missing string field 'op'".into(),
        })?;
    match op {
        "ping" => Ok(Request::Ping { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "stats" => Ok(Request::Stats { id }),
        "trace" => {
            let trace_id = match v.get("trace_id") {
                None | Some(Json::Null) => "last".to_string(),
                Some(t) => t
                    .as_str()
                    .ok_or_else(|| ServiceError::BadRequest {
                        message: "trace_id: expected a string".into(),
                    })?
                    .to_string(),
            };
            Ok(Request::Trace { id, trace_id })
        }
        "shutdown" => Ok(Request::Shutdown { id }),
        "map" => {
            let program =
                program_from_json(v.get("program").ok_or_else(|| ServiceError::BadRequest {
                    message: "missing field 'program'".into(),
                })?)?;
            let platform =
                platform_from_json(v.get("platform").ok_or_else(|| ServiceError::BadRequest {
                    message: "missing field 'platform'".into(),
                })?)?;
            let mapper = match v.get("mapper") {
                None => MapperConfig::default(),
                Some(m) => mapper_config_from_json(m)?,
            };
            let version =
                version_from_json(v.get("version").ok_or_else(|| ServiceError::BadRequest {
                    message: "missing field 'version'".into(),
                })?)?;
            let deadline_ms = match v.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(d) => Some(d.as_u64().ok_or_else(|| ServiceError::BadRequest {
                    message: "deadline_ms: expected a non-negative integer".into(),
                })?),
            };
            let tenant = match v.get("tenant") {
                None | Some(Json::Null) => None,
                Some(t) => Some(
                    t.as_str()
                        .ok_or_else(|| ServiceError::BadRequest {
                            message: "tenant: expected a string".into(),
                        })?
                        .to_string(),
                ),
            };
            Ok(Request::Map(Box::new(MapRequest {
                id,
                program,
                platform,
                mapper,
                version,
                deadline_ms,
                tenant,
            })))
        }
        other => Err(ServiceError::BadRequest {
            message: format!("unknown op '{other}'"),
        }),
    }
}

/// A served mapping.
#[derive(Debug, Clone)]
pub struct MapResponse {
    /// Echo of the request id.
    pub id: u64,
    /// True when the mapping came from the fingerprint cache.
    pub cached: bool,
    /// The request's content fingerprint (hex on the wire).
    pub fingerprint: Fingerprint,
    /// The mapping itself (shared with the cache).
    pub mapping: Arc<MappedProgram>,
    /// Service-side latency in microseconds (admission to reply).
    pub service_us: u64,
    /// The request's trace, pending its serialization stage (`None`
    /// with tracing disabled). Not part of [`ToJson`]: the server
    /// serializes the base response first (timing it), then appends the
    /// finalized trace — see `MapService::finalize_trace`.
    pub trace: Option<Box<crate::PendingTrace>>,
}

impl ToJson for MapResponse {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::UInt(self.id)),
            ("status", Json::Str("ok".into())),
            ("op", Json::Str("map".into())),
            ("cached", Json::Bool(self.cached)),
            ("fingerprint", Json::Str(self.fingerprint.to_hex())),
            ("service_us", Json::UInt(self.service_us)),
            ("mapping", self.mapping.to_json()),
        ])
    }
}

/// Builds the error response line body for `op`.
pub fn error_response_json(id: u64, op: &str, err: &ServiceError) -> Json {
    Json::object(vec![
        ("id", Json::UInt(id)),
        ("status", Json::Str("error".into())),
        ("op", Json::Str(op.to_string())),
        ("error", err.to_json()),
    ])
}

/// Builds a simple `status:ok` response with extra payload fields.
pub fn ok_response_json(id: u64, op: &str, extra: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("id", Json::UInt(id)),
        ("status", Json::Str("ok".into())),
        ("op", Json::Str(op.to_string())),
    ];
    pairs.extend(extra);
    Json::object(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_polyhedral::{AffineExpr, ArrayDecl, ArrayRef, IterationSpace, LoopNest};

    fn tiny_request() -> MapRequest {
        let a = ArrayDecl::new("A", vec![64], 8);
        let space = IterationSpace::rectangular(&[64]);
        let nest = LoopNest::new(
            "axpy",
            space,
            vec![
                ArrayRef::read(0, vec![AffineExpr::var(0)]),
                ArrayRef::write(0, vec![AffineExpr::var(0)]),
            ],
        );
        MapRequest {
            id: 42,
            program: Program::new("axpy", vec![a], vec![nest]),
            platform: PlatformConfig::tiny(),
            mapper: MapperConfig::default(),
            version: Version::InterProcessor,
            deadline_ms: Some(2000),
            tenant: Some("acme".into()),
        }
    }

    #[test]
    fn map_request_round_trips_through_a_line() {
        let req = tiny_request();
        let line = req.to_json().to_string_compact();
        match parse_request(&line).unwrap() {
            Request::Map(back) => {
                assert_eq!(back.id, 42);
                assert_eq!(back.program, req.program);
                assert_eq!(back.platform, req.platform);
                assert_eq!(back.mapper, req.mapper);
                assert_eq!(back.version, req.version);
                assert_eq!(back.deadline_ms, Some(2000));
                assert_eq!(back.tenant.as_deref(), Some("acme"));
            }
            other => panic!("expected a map request, got {other:?}"),
        }
    }

    #[test]
    fn control_ops_parse() {
        for (op, want) in [
            ("ping", "ping"),
            ("metrics", "metrics"),
            ("stats", "stats"),
            ("trace", "trace"),
            ("shutdown", "shutdown"),
        ] {
            let line = format!("{{\"op\":\"{op}\",\"id\":9}}");
            let req = parse_request(&line).unwrap();
            let got = match req {
                Request::Ping { id } => ("ping", id),
                Request::Metrics { id } => ("metrics", id),
                Request::Stats { id } => ("stats", id),
                Request::Trace { id, ref trace_id } => {
                    assert_eq!(trace_id, "last", "trace_id defaults to last");
                    ("trace", id)
                }
                Request::Shutdown { id } => ("shutdown", id),
                Request::Map(_) => panic!("not a map"),
            };
            assert_eq!(got, (want, 9));
        }
        // An explicit id is carried through.
        match parse_request("{\"op\":\"trace\",\"id\":1,\"trace_id\":\"00ff00ff00ff00ff\"}")
            .unwrap()
        {
            Request::Trace { trace_id, .. } => assert_eq!(trace_id, "00ff00ff00ff00ff"),
            other => panic!("expected trace, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_bad_requests() {
        for line in ["", "{", "{\"id\":1}", "{\"op\":\"fly\"}"] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), "bad_request", "line {line:?}");
        }
    }
}
