//! Typed rejection and failure errors for the mapping service.
//!
//! Every request that the service does not answer with a mapping is
//! answered with a [`ServiceError`] — there is no silent drop path.
//! The variants mirror the admission state machine (see DESIGN.md
//! "Service layer"): malformed input is rejected at parse time, overload
//! at admission time, lateness at dispatch or wait time, and teardown
//! drains the queue with [`ServiceError::Shutdown`].

use cachemap_polyhedral::wire::WireError;
use cachemap_util::Json;
use std::fmt;

/// Why a request was not served with a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request was structurally invalid (JSON shape, unknown
    /// version, inconsistent platform, dangling array reference…).
    BadRequest {
        /// Human-readable description, with a field path when known.
        message: String,
    },
    /// The admission queue was full — backpressure, try again later.
    QueueFull {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// The request's deadline expired before a worker produced a result.
    DeadlineExceeded {
        /// The deadline budget the request ran with, in milliseconds.
        budget_ms: u64,
    },
    /// The tenant already has its full quota of requests queued.
    QuotaExceeded {
        /// The tenant that hit its quota (empty = the anonymous tenant).
        tenant: String,
        /// The configured per-tenant admission quota.
        quota: usize,
    },
    /// The TCP front end refused the connection at its concurrency cap.
    ConnLimit {
        /// Active connections observed at rejection.
        active: usize,
        /// The configured connection limit.
        limit: usize,
    },
    /// The connection sat idle past the front end's read timeout.
    ReadTimeout {
        /// The idle budget the connection ran with, in milliseconds.
        budget_ms: u64,
    },
    /// A lookup op referenced something the service does not hold
    /// (e.g. a `trace` id that fell out of the flight-recorder ring).
    NotFound {
        /// What was looked up, for the error message.
        what: String,
    },
    /// The service is shutting down; queued work is drained with this.
    Shutdown,
    /// An unexpected internal failure (never the caller's fault).
    Internal {
        /// Description for the server log.
        message: String,
    },
    /// Every replica that could own the key is health-checked down
    /// (router front end; see DESIGN.md "Replica fleet").
    ReplicaDown {
        /// The replica (or replica set summary) the router gave up on.
        replica: String,
    },
    /// The router exhausted its per-backend retry budgets on every
    /// eligible replica without a successful call.
    RetriesExhausted {
        /// Total call attempts across the failover chain.
        attempts: u32,
        /// Stable code of the last underlying failure.
        last: String,
    },
    /// Every eligible replica's circuit breaker is open — the fleet is
    /// shedding load while backends cool down.
    BreakerOpen {
        /// The replica whose breaker refused the primary route.
        replica: String,
    },
}

impl ServiceError {
    /// Stable machine-readable code for the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::BadRequest { .. } => "bad_request",
            ServiceError::QueueFull { .. } => "queue_full",
            ServiceError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServiceError::QuotaExceeded { .. } => "quota_exceeded",
            ServiceError::ConnLimit { .. } => "conn_limit",
            ServiceError::ReadTimeout { .. } => "read_timeout",
            ServiceError::NotFound { .. } => "not_found",
            ServiceError::Shutdown => "shutdown",
            ServiceError::Internal { .. } => "internal",
            ServiceError::ReplicaDown { .. } => "replica_down",
            ServiceError::RetriesExhausted { .. } => "retries_exhausted",
            ServiceError::BreakerOpen { .. } => "breaker_open",
        }
    }

    /// The `{"code":…,"message":…}` wire body.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("code", Json::Str(self.code().to_string())),
            ("message", Json::Str(self.to_string())),
        ])
    }

    /// Parses the error object of a wire response (client side).
    pub fn from_response_json(v: &Json) -> Option<ServiceError> {
        let code = v.get("code")?.as_str()?;
        let message = v.get("message").and_then(Json::as_str).unwrap_or("");
        Some(match code {
            "bad_request" => ServiceError::BadRequest {
                message: message.to_string(),
            },
            "queue_full" => ServiceError::QueueFull { depth: 0, limit: 0 },
            "deadline_exceeded" => ServiceError::DeadlineExceeded { budget_ms: 0 },
            "quota_exceeded" => ServiceError::QuotaExceeded {
                tenant: String::new(),
                quota: 0,
            },
            "conn_limit" => ServiceError::ConnLimit {
                active: 0,
                limit: 0,
            },
            "read_timeout" => ServiceError::ReadTimeout { budget_ms: 0 },
            "not_found" => ServiceError::NotFound {
                what: message.to_string(),
            },
            "shutdown" => ServiceError::Shutdown,
            "internal" => ServiceError::Internal {
                message: message.to_string(),
            },
            "replica_down" => ServiceError::ReplicaDown {
                replica: message.to_string(),
            },
            "retries_exhausted" => ServiceError::RetriesExhausted {
                attempts: 0,
                last: message.to_string(),
            },
            "breaker_open" => ServiceError::BreakerOpen {
                replica: message.to_string(),
            },
            _ => return None,
        })
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServiceError::QueueFull { depth, limit } => {
                write!(f, "admission queue full ({depth}/{limit})")
            }
            ServiceError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded ({budget_ms} ms budget)")
            }
            ServiceError::QuotaExceeded { tenant, quota } => {
                let name = if tenant.is_empty() {
                    "<anonymous>"
                } else {
                    tenant
                };
                write!(
                    f,
                    "tenant {name} is at its admission quota ({quota} queued)"
                )
            }
            ServiceError::ConnLimit { active, limit } => {
                write!(f, "connection limit reached ({active}/{limit})")
            }
            ServiceError::ReadTimeout { budget_ms } => {
                write!(f, "connection idle past read timeout ({budget_ms} ms)")
            }
            ServiceError::NotFound { what } => write!(f, "not found: {what}"),
            ServiceError::Shutdown => write!(f, "service is shutting down"),
            ServiceError::Internal { message } => write!(f, "internal error: {message}"),
            ServiceError::ReplicaDown { replica } => {
                write!(f, "replica down: {replica}")
            }
            ServiceError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts (last: {last})"
                )
            }
            ServiceError::BreakerOpen { replica } => {
                write!(f, "circuit breaker open for replica {replica}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::BadRequest {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_round_trip() {
        let errs = [
            ServiceError::BadRequest {
                message: "x".into(),
            },
            ServiceError::QueueFull { depth: 9, limit: 8 },
            ServiceError::DeadlineExceeded { budget_ms: 5 },
            ServiceError::QuotaExceeded {
                tenant: "acme".into(),
                quota: 4,
            },
            ServiceError::ConnLimit {
                active: 8,
                limit: 8,
            },
            ServiceError::ReadTimeout { budget_ms: 100 },
            ServiceError::NotFound {
                what: "trace feedbeef".into(),
            },
            ServiceError::Shutdown,
            ServiceError::Internal {
                message: "y".into(),
            },
            ServiceError::ReplicaDown {
                replica: "replica-1".into(),
            },
            ServiceError::RetriesExhausted {
                attempts: 6,
                last: "shutdown".into(),
            },
            ServiceError::BreakerOpen {
                replica: "replica-2".into(),
            },
        ];
        let codes: std::collections::HashSet<&str> = errs.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errs.len());
        for e in &errs {
            let back = ServiceError::from_response_json(&e.to_json()).unwrap();
            assert_eq!(back.code(), e.code());
        }
    }
}
