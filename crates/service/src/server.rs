//! The TCP front end: JSON-lines requests plus a plain-HTTP
//! `GET /metrics` endpoint on the same port.
//!
//! Each accepted connection gets its own thread; lines are dispatched
//! to the shared [`MapService`]. A connection whose first bytes look
//! like an HTTP request line (`GET …`) is answered with one HTTP
//! response (Prometheus text for `/metrics`, 404 otherwise) and closed,
//! so ordinary scrapers need no special client.

use crate::dispatch;
use crate::MapService;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-end hardening knobs (see [`Server::spawn_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Per-connection idle read budget in milliseconds; a connection
    /// that sends nothing for this long is answered with a typed
    /// `read_timeout` error line and closed. `0` disables the timeout.
    pub read_timeout_ms: u64,
    /// Maximum concurrently served connections; beyond this, new
    /// connections get one `conn_limit` error line and are closed
    /// without ever reaching the admission queue.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout_ms: 30_000,
            max_connections: 256,
        }
    }
}

/// Decrements the active-connection gauge when a connection thread
/// exits, however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running mapping server: an accept loop plus per-connection threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    active: Arc<AtomicUsize>,
    service: Arc<MapService>,
}

impl Server {
    /// Binds `bind` (e.g. `"127.0.0.1:7411"`, port 0 for ephemeral) and
    /// starts accepting connections against `service` with the default
    /// [`ServerConfig`].
    pub fn spawn<A: ToSocketAddrs>(bind: A, service: Arc<MapService>) -> std::io::Result<Server> {
        Self::spawn_with(bind, service, ServerConfig::default())
    }

    /// [`Server::spawn`] with explicit front-end limits. Connections
    /// over `cfg.max_connections` are refused with a typed error line;
    /// connections idle past `cfg.read_timeout_ms` are closed the same
    /// way. Both rejections are counted on the service's metric
    /// registry (`cachemap_service_front_end_rejections_total`).
    pub fn spawn_with<A: ToSocketAddrs>(
        bind: A,
        service: Arc<MapService>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let accept_service = Arc::clone(&service);
        let accept_thread = std::thread::Builder::new()
            .name("map-server-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    // Admission at the transport: claim a slot first so
                    // exactly `max_connections` can ever hold one.
                    let prev = accept_active.fetch_add(1, Ordering::SeqCst);
                    if prev >= cfg.max_connections {
                        accept_active.fetch_sub(1, Ordering::SeqCst);
                        accept_service.count_front_end_rejection("conn_limit");
                        let reply = dispatch::conn_limit_reply(prev, cfg.max_connections);
                        let _ = stream.write_all(reply.as_bytes());
                        let _ = stream.write_all(b"\n");
                        continue;
                    }
                    let guard = ConnGuard(Arc::clone(&accept_active));
                    let svc = Arc::clone(&accept_service);
                    let conn_stop = Arc::clone(&accept_stop);
                    let _ = std::thread::Builder::new()
                        .name("map-server-conn".into())
                        .spawn(move || {
                            let _guard = guard;
                            let _ = serve_connection(stream, &svc, &conn_stop, addr, cfg);
                        });
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            active,
            service,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. The
    /// underlying [`MapService`] is left running (shut it down
    /// separately if owned). Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<MapService> {
        &self.service
    }

    /// Blocks until the server stops (an in-protocol `shutdown` request
    /// or a [`Server::shutdown`] call from another thread), then drains
    /// active connections through the same bounded-wait path as `Drop`
    /// — so a `map` in flight when the shutdown arrived still gets its
    /// typed reply written before the caller proceeds to teardown.
    pub fn join(mut self) {
        self.drain_connections();
    }

    /// Joins the accept loop (blocking until it exits) and then gives
    /// detached connection threads a bounded window to finish writing
    /// their in-flight replies. Shared by [`Server::join`] and `Drop` so
    /// both teardown orderings are identical. Idempotent.
    fn drain_connections(&mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Connection threads are detached but hold their own service
        // references; give their in-flight dispatches a bounded window
        // to finish writing typed replies before teardown proceeds.
        let deadline = std::time::Instant::now() + Duration::from_millis(500);
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Teardown order matters: stop admitting connections and join
        // the accept loop *before* the `service` field can drop. The
        // last service reference triggers its graceful drain, and a
        // still-running accept loop would feed it requests mid-drain.
        self.shutdown();
        self.drain_connections();
    }
}

fn serve_connection(
    stream: TcpStream,
    service: &MapService,
    stop: &AtomicBool,
    addr: SocketAddr,
    cfg: ServerConfig,
) -> std::io::Result<()> {
    if cfg.read_timeout_ms > 0 {
        stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms)))?;
    }
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle past the read budget: answer with the typed
                // error so the client can tell a policy close from a
                // crash, count it, and drop the connection.
                service.count_front_end_rejection("read_timeout");
                let reply = dispatch::read_timeout_reply(cfg.read_timeout_ms);
                let _ = writer.write_all(reply.as_bytes());
                let _ = writer.write_all(b"\n");
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        // HTTP scrape path: answer one response and close.
        if dispatch::is_http_request_line(&line) {
            return serve_http(&line, &mut reader, &mut writer, service);
        }
        let done = dispatch::dispatch_line(service, &line);
        writer.write_all(done.reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if done.shutdown {
            stop.store(true, Ordering::SeqCst);
        }
        if stop.load(Ordering::SeqCst) {
            // Unblock the accept loop so `join` returns promptly.
            let _ = TcpStream::connect(addr);
            return Ok(());
        }
    }
}

fn serve_http(
    request_line: &str,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    service: &MapService,
) -> std::io::Result<()> {
    // Drain the request headers so the peer's write isn't reset.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 0 {
        if header == "\r\n" || header == "\n" {
            break;
        }
        header.clear();
    }
    let response = dispatch::http_response(service, request_line);
    writer.write_all(response.as_bytes())?;
    writer.flush()
}
