//! Safe readiness polling: [`Poller`] (an epoll instance) and
//! [`Waker`] (a cross-thread wake channel).
//!
//! The poller is level-triggered on purpose: a connection with bytes
//! still buffered keeps reporting readable, so the loop never needs
//! the re-arm bookkeeping edge-triggered modes demand, and a missed
//! event is re-delivered on the next wait instead of lost. Interest is
//! per-fd `(readable, writable)`; the `token` travels through the
//! kernel untouched and comes back in each [`Event`].

use crate::sys;
use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::sync::Arc;

/// Reserved token delivered when the [`Waker`] fires.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token registered with the fd.
    pub token: u64,
    /// Readable (or a peer hang-up, which also unblocks reads).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition; the fd should be torn down after
    /// draining whatever still reads.
    pub closed: bool,
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: OwnedFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// A new poller with room for `capacity` events per wait.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(8)],
        })
    }

    fn mask(readable: bool, writable: bool) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if readable {
            m |= sys::EPOLLIN;
        }
        if writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    /// Registers `fd` with the given interest under `token`.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        sys::epoll_ctl_op(
            &self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            Self::mask(readable, writable),
            token,
        )
    }

    /// Replaces `fd`'s interest set.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        sys::epoll_ctl_op(
            &self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            Self::mask(readable, writable),
            token,
        )
    }

    /// Deregisters `fd`. Best-effort (teardown path).
    pub fn remove(&self, fd: RawFd) {
        sys::epoll_del(&self.epfd, fd);
    }

    /// Waits up to `timeout_ms` (`-1` = forever) and appends readiness
    /// events to `out`. Returns the number appended.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let n = sys::epoll_wait_events(&self.epfd, &mut self.buf, timeout_ms)?;
        for raw in &self.buf[..n] {
            let bits = { raw.events };
            out.push(Event {
                token: { raw.data },
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// A clonable cross-thread wake channel for one [`Poller`].
///
/// Created by [`Waker::register`], which parks an eventfd in the
/// poller under [`WAKE_TOKEN`]; any thread may then call
/// [`Waker::wake`] to make a blocked `wait` return. Wakes coalesce —
/// a thousand `wake` calls cost one readiness event.
#[derive(Clone)]
pub struct Waker {
    fd: Arc<OwnedFd>,
}

impl Waker {
    /// Creates the eventfd and registers it with `poller`.
    pub fn register(poller: &Poller) -> io::Result<Waker> {
        let fd = sys::eventfd_new()?;
        poller.add(fd.as_raw_fd(), WAKE_TOKEN, true, false)?;
        Ok(Waker { fd: Arc::new(fd) })
    }

    /// Makes the poller's current (or next) `wait` return.
    pub fn wake(&self) {
        sys::eventfd_signal(&self.fd);
    }

    /// Drains pending wake signals; the loop calls this when it sees
    /// [`WAKE_TOKEN`] so the level-triggered fd goes quiet.
    pub fn drain(&self) {
        sys::eventfd_drain(&self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_unblocks_wait_from_another_thread() {
        let mut poller = Poller::new(8).unwrap();
        let waker = Waker::register(&poller).unwrap();
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            remote.wake();
        });
        let mut events = Vec::new();
        let t0 = std::time::Instant::now();
        poller.wait(&mut events, 5_000).unwrap();
        assert!(t0.elapsed() < std::time::Duration::from_secs(2));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, WAKE_TOKEN);
        waker.drain();
        t.join().unwrap();
    }

    #[test]
    fn listener_readable_on_pending_accept() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(8).unwrap();
        poller.add(listener.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no pending connection yet");
        let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }
}
