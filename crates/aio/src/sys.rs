//! The crate's only `unsafe` surface: raw Linux syscall bindings.
//!
//! The workspace is dependency-free, so instead of the `libc` crate
//! this module declares the handful of symbols the event loop needs —
//! `epoll_*`, `eventfd`, `read`/`write` on raw fds, `listen`, and
//! `getrlimit`/`setrlimit` — as `extern "C"` imports. `std` already
//! links the platform C library, so the symbols resolve without any
//! build-script work. Everything exported from here is a safe wrapper
//! returning `io::Result`; fd lifetimes ride on [`OwnedFd`] so a
//! dropped poller or waker cannot leak descriptors.
//!
//! Linux-only by construction (epoll, eventfd). The constants below
//! are the x86-64/aarch64 generic-ABI values from the kernel headers.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: replace an fd's interest set.
pub const EPOLL_CTL_MOD: i32 = 3;

/// Readable.
pub const EPOLLIN: u32 = 0x1;
/// Writable.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition.
pub const EPOLLERR: u32 = 0x8;
/// Hang-up (both directions down).
pub const EPOLLHUP: u32 = 0x10;
/// Peer closed its write side (half-close).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;
const RLIMIT_NOFILE: i32 = 7;

/// One readiness record, kernel layout (`struct epoll_event`).
///
/// Packed: on x86-64 the kernel ABI has no padding between the 32-bit
/// event mask and the 64-bit user datum.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLLIN | EPOLLOUT | …` readiness bits.
    pub events: u32,
    /// Caller-owned token (the connection slot, or a reserved value).
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn listen(sockfd: i32, backlog: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A new close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<OwnedFd> {
    // SAFETY: plain syscall; on success the kernel hands us a fresh fd
    // we immediately take unique ownership of.
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Registers (`EPOLL_CTL_ADD`) or re-targets (`EPOLL_CTL_MOD`) `fd`'s
/// interest set; `op` is one of the `EPOLL_CTL_*` constants.
pub fn epoll_ctl_op(epfd: &OwnedFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: `ev` outlives the call; the kernel copies it.
    cvt(unsafe { epoll_ctl(epfd.as_raw_fd(), op, fd, &mut ev) })?;
    Ok(())
}

/// Removes `fd` from the interest set. Best-effort: ENOENT (already
/// gone) is not an error worth surfacing during teardown.
pub fn epoll_del(epfd: &OwnedFd, fd: RawFd) {
    let mut ev = EpollEvent { events: 0, data: 0 };
    // SAFETY: as above; a null event pointer is only required pre-2.6.9.
    let _ = unsafe { epoll_ctl(epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
}

/// Waits for readiness, filling `events` from the front. Returns the
/// number of records written. Retries `EINTR` internally; a `timeout`
/// of `-1` blocks indefinitely, `0` polls.
pub fn epoll_wait_events(
    epfd: &OwnedFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        // SAFETY: `events` is a live, writable slice; `maxevents`
        // matches its length.
        let n = unsafe {
            epoll_wait(
                epfd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A non-blocking close-on-exec eventfd (the loop's wake channel).
pub fn eventfd_new() -> io::Result<OwnedFd> {
    // SAFETY: plain syscall returning a fresh fd.
    let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Posts one wake-up. `EAGAIN` (counter already saturated — the loop
/// has a pending wake) is success.
pub fn eventfd_signal(fd: &OwnedFd) {
    let one: u64 = 1;
    // SAFETY: 8 initialized bytes, the eventfd write unit.
    let _ = unsafe { write(fd.as_raw_fd(), (&one as *const u64).cast(), 8) };
}

/// Drains all pending wake-ups so a level-triggered poll goes quiet.
pub fn eventfd_drain(fd: &OwnedFd) {
    let mut buf: u64 = 0;
    // SAFETY: 8 writable bytes, the eventfd read unit.
    let _ = unsafe { read(fd.as_raw_fd(), (&mut buf as *mut u64).cast(), 8) };
}

/// Re-issues `listen(2)` with a deeper `backlog` on an already-bound,
/// already-listening socket. `std::net::TcpListener` hardcodes a
/// backlog of 128, which a 10k-connection storm overflows; calling
/// `listen` again on Linux just updates the queue depth.
pub fn relisten(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: plain syscall on a caller-owned socket fd.
    cvt(unsafe { listen(fd, backlog) })?;
    Ok(())
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit (the server holds
/// one fd per connection). Returns `(soft, hard)` after the attempt;
/// failure to raise is reported through the unchanged soft value, not
/// an error — the caller can still run, just with fewer connections.
pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a live out-param of the kernel's expected shape.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur < lim.rlim_max {
        let want = Rlimit {
            rlim_cur: lim.rlim_max,
            rlim_max: lim.rlim_max,
        };
        // SAFETY: passing a fully initialized struct by pointer.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            lim.rlim_cur = lim.rlim_max;
        }
    }
    Ok((lim.rlim_cur, lim.rlim_max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_round_trip_wakes_epoll() {
        let ep = epoll_create().unwrap();
        let ev = eventfd_new().unwrap();
        epoll_ctl_op(&ep, EPOLL_CTL_ADD, ev.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a zero-timeout wait returns empty.
        assert_eq!(epoll_wait_events(&ep, &mut events, 0).unwrap(), 0);
        eventfd_signal(&ev);
        eventfd_signal(&ev); // coalesces, still one readiness record
        let n = epoll_wait_events(&ep, &mut events, 1_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);
        assert_ne!({ events[0].events } & EPOLLIN, 0);
        eventfd_drain(&ev);
        assert_eq!(epoll_wait_events(&ep, &mut events, 0).unwrap(), 0);
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let (soft, hard) = raise_nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
    }
}
