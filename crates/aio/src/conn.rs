//! Per-connection state machine: read framing and buffered writes.
//!
//! Reads accumulate into a growable buffer and are framed as
//! newline-terminated JSON lines with **partial-frame resumption**: a
//! frame split across any number of `read(2)` returns is reassembled,
//! and the scan for the terminator resumes where it left off instead
//! of re-scanning the buffer. A connection whose first line starts
//! with `GET ` / `HEAD ` flips into HTTP mode: headers are drained
//! until the blank line, then one [`Frame::Http`] is emitted and the
//! response closes the connection (exactly the legacy threaded
//! server's scrape behavior).
//!
//! Writes go through a buffer with an explicit offset so a short
//! `write(2)` resumes mid-response; the event loop keeps `EPOLLOUT`
//! interest exactly while [`Conn::pending_write`] is non-zero. Fault
//! injection ([`crate::shim::ConnFaults`]) hooks both paths: swallowed
//! reads (slow-loris), truncated writes (torn responses), and dripped
//! writes (1 byte per readiness cycle).

use crate::shim::ConnFaults;
use cachemap_util::TimerId;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// One decoded inbound frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A newline-terminated JSON-lines request (terminator stripped).
    Line(String),
    /// An HTTP request line whose headers have been fully drained.
    Http(String),
}

/// What a readiness-driven read pass concluded.
#[derive(Debug)]
pub enum ReadOutcome {
    /// Consumed what was available; keep the connection.
    Continue,
    /// Orderly EOF from the peer.
    PeerClosed,
    /// A frame exceeded the configured maximum without a terminator.
    FrameTooLarge,
    /// Transport error; tear the connection down.
    Error(io::Error),
}

/// What a flush pass concluded.
#[derive(Debug)]
pub enum FlushOutcome {
    /// Write buffer fully drained; no write interest needed.
    Idle,
    /// Bytes remain; keep `EPOLLOUT` interest.
    Pending,
    /// The connection is done (close-after-write completed, peer gone,
    /// or a truncate fault fired) and should be torn down.
    Closed,
    /// Transport error; tear the connection down.
    Error(io::Error),
}

/// Cap on `read(2)` calls per readiness event so one fire-hose peer
/// cannot starve the rest of the loop; level-triggered epoll re-fires
/// while bytes remain buffered in the kernel.
const MAX_READS_PER_EVENT: usize = 8;

/// A registered connection.
pub struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// Slot generation; completions carrying a stale generation are
    /// dropped instead of writing into a recycled slot.
    pub gen: u64,
    /// Monotonic accept sequence (fault-stream derivation key).
    pub seq: u64,
    read_buf: Vec<u8>,
    /// Resume point for the newline scan (no terminator before it).
    scan_from: usize,
    /// Set once the first line announced HTTP; headers drain until the
    /// blank line, then the request line is emitted as a frame.
    http_request_line: Option<String>,
    write_buf: Vec<u8>,
    write_off: usize,
    written_total: usize,
    /// Close the connection once the write buffer drains.
    pub close_after_write: bool,
    /// Clock reading at the last inbound byte (idle-deadline anchor).
    pub last_activity_ns: u64,
    /// The armed idle-deadline timer, if any.
    pub idle_timer: Option<TimerId>,
    /// Decided-at-accept fault behaviors.
    pub faults: ConnFaults,
    /// Reading paused by write-buffer backpressure.
    pub paused: bool,
    /// Current epoll write-interest (loop-managed, mirrors the kernel).
    pub want_write: bool,
    /// Requests decoded on this connection (loop stats; also the next
    /// frame's sequence number).
    pub frames_in: u64,
    /// Next completion sequence expected on the wire. Replies are sent
    /// strictly in frame order: with several dispatcher threads, batch
    /// N+1 can finish before batch N, and a pipelining client must
    /// still see its replies FIFO.
    pub next_write_seq: u64,
    /// Completions that arrived ahead of `next_write_seq`, parked until
    /// the gap fills.
    pub held: std::collections::BTreeMap<u64, HeldReply>,
}

/// A reply parked in [`Conn::held`] until its predecessors are written.
pub struct HeldReply {
    /// Wire bytes, including any trailing newline.
    pub bytes: Vec<u8>,
    /// Close the connection once the bytes drain.
    pub close_after: bool,
}

impl Conn {
    /// Wraps an accepted, already non-blocking stream. `read_buf` and
    /// `write_buf` typically come from a [`cachemap_util::BufferPool`].
    pub fn new(
        stream: TcpStream,
        gen: u64,
        seq: u64,
        now_ns: u64,
        faults: ConnFaults,
        read_buf: Vec<u8>,
        write_buf: Vec<u8>,
    ) -> Conn {
        Conn {
            stream,
            gen,
            seq,
            read_buf,
            scan_from: 0,
            http_request_line: None,
            write_buf,
            write_off: 0,
            written_total: 0,
            close_after_write: false,
            last_activity_ns: now_ns,
            idle_timer: None,
            faults,
            paused: false,
            want_write: false,
            frames_in: 0,
            next_write_seq: 0,
            held: std::collections::BTreeMap::new(),
        }
    }

    /// Reclaims the connection's buffers for pooling.
    pub fn into_buffers(self) -> (Vec<u8>, Vec<u8>) {
        (self.read_buf, self.write_buf)
    }

    /// Reads whatever the socket has (bounded per event), appending
    /// completed frames to `frames`. `now_ns` stamps activity for the
    /// idle deadline.
    pub fn read_ready(
        &mut self,
        scratch: &mut [u8],
        max_frame_bytes: usize,
        now_ns: u64,
        frames: &mut Vec<Frame>,
    ) -> (u64, ReadOutcome) {
        let mut bytes_read = 0u64;
        for _ in 0..MAX_READS_PER_EVENT {
            match self.stream.read(scratch) {
                Ok(0) => return (bytes_read, ReadOutcome::PeerClosed),
                Ok(n) => {
                    bytes_read += n as u64;
                    self.last_activity_ns = now_ns;
                    if self.faults.swallow_reads {
                        // Slow-loris shim: the bytes vanish before
                        // framing, so only the idle deadline can save
                        // this connection's slot.
                        continue;
                    }
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    self.extract_frames(frames);
                    // Whatever remains after extraction is one partial
                    // frame; cap its size.
                    if self.read_buf.len() > max_frame_bytes {
                        return (bytes_read, ReadOutcome::FrameTooLarge);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return (bytes_read, ReadOutcome::Continue)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return (bytes_read, ReadOutcome::Error(e)),
            }
        }
        (bytes_read, ReadOutcome::Continue)
    }

    /// Splits completed lines out of the read buffer, resuming the
    /// terminator scan at `scan_from`.
    fn extract_frames(&mut self, frames: &mut Vec<Frame>) {
        let mut consumed = 0usize;
        loop {
            let rest = &self.read_buf[consumed.max(self.scan_from)..];
            let Some(rel) = rest.iter().position(|b| *b == b'\n') else {
                break;
            };
            let line_end = consumed.max(self.scan_from) + rel;
            let raw = &self.read_buf[consumed..line_end];
            let line = String::from_utf8_lossy(raw);
            let trimmed = line.trim_end_matches('\r');
            if let Some(request_line) = self.http_request_line.take() {
                // HTTP mode: headers drain until the blank line.
                if trimmed.is_empty() {
                    self.frames_in += 1;
                    frames.push(Frame::Http(request_line));
                } else {
                    self.http_request_line = Some(request_line);
                }
            } else if trimmed.is_empty() {
                // Blank JSON-lines input is skipped, as in the
                // threaded server.
            } else if trimmed.starts_with("GET ") || trimmed.starts_with("HEAD ") {
                self.http_request_line = Some(trimmed.to_string());
            } else {
                self.frames_in += 1;
                frames.push(Frame::Line(trimmed.to_string()));
            }
            consumed = line_end + 1;
            self.scan_from = consumed;
        }
        if consumed > 0 {
            self.read_buf.drain(..consumed);
        }
        // Everything left has been scanned without finding a terminator.
        self.scan_from = self.read_buf.len();
    }

    /// Queues reply bytes (a newline must already be included for
    /// JSON-lines replies).
    pub fn queue_write(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
    }

    /// Unsent bytes currently buffered.
    pub fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_off
    }

    /// Pushes buffered bytes to the socket, honoring truncate/drip
    /// faults. Call whenever bytes were queued or `EPOLLOUT` fired.
    pub fn flush(&mut self) -> (u64, FlushOutcome) {
        let mut bytes_written = 0u64;
        loop {
            if self.write_off == self.write_buf.len() {
                self.write_buf.clear();
                self.write_off = 0;
                let done = if self.close_after_write {
                    FlushOutcome::Closed
                } else {
                    FlushOutcome::Idle
                };
                return (bytes_written, done);
            }
            let mut end = self.write_buf.len();
            if let Some(cut) = self.faults.truncate_write_at {
                if self.written_total >= cut {
                    return (bytes_written, FlushOutcome::Closed);
                }
                end = end.min(self.write_off + (cut - self.written_total));
            }
            if self.faults.drip_write {
                end = end.min(self.write_off + 1);
            }
            match self.stream.write(&self.write_buf[self.write_off..end]) {
                Ok(0) => return (bytes_written, FlushOutcome::Closed),
                Ok(n) => {
                    self.write_off += n;
                    self.written_total += n;
                    bytes_written += n as u64;
                    if let Some(cut) = self.faults.truncate_write_at {
                        if self.written_total >= cut {
                            return (bytes_written, FlushOutcome::Closed);
                        }
                    }
                    if self.faults.drip_write {
                        // One byte per readiness cycle: report Pending
                        // so EPOLLOUT interest persists and the next
                        // cycle sends the next byte.
                        return (bytes_written, FlushOutcome::Pending);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return (bytes_written, FlushOutcome::Pending)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return (bytes_written, FlushOutcome::Error(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    fn read_all_frames(conn: &mut Conn) -> Vec<Frame> {
        let mut scratch = [0u8; 4096];
        let mut frames = Vec::new();
        let (_, out) = conn.read_ready(&mut scratch, 1 << 20, 0, &mut frames);
        assert!(matches!(
            out,
            ReadOutcome::Continue | ReadOutcome::PeerClosed
        ));
        frames
    }

    #[test]
    fn partial_frames_resume_across_reads() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(
            server,
            0,
            0,
            0,
            ConnFaults::default(),
            Vec::new(),
            Vec::new(),
        );
        client.write_all(b"{\"op\":\"pi").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(read_all_frames(&mut conn).is_empty(), "half a frame");
        client.write_all(b"ng\"}\n{\"op\":").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(
            read_all_frames(&mut conn),
            vec![Frame::Line("{\"op\":\"ping\"}".into())]
        );
        client.write_all(b"\"stats\"}\r\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(
            read_all_frames(&mut conn),
            vec![Frame::Line("{\"op\":\"stats\"}".into())],
            "CR is stripped"
        );
    }

    #[test]
    fn http_mode_drains_headers_then_emits_one_frame() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(
            server,
            0,
            0,
            0,
            ConnFaults::default(),
            Vec::new(),
            Vec::new(),
        );
        client
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(
            read_all_frames(&mut conn),
            vec![Frame::Http("GET /metrics HTTP/1.1".into())]
        );
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(
            server,
            0,
            0,
            0,
            ConnFaults::default(),
            Vec::new(),
            Vec::new(),
        );
        client.write_all(&[b'x'; 4096]).unwrap(); // no newline
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut scratch = [0u8; 4096];
        let mut frames = Vec::new();
        let (_, out) = conn.read_ready(&mut scratch, 1024, 0, &mut frames);
        assert!(matches!(out, ReadOutcome::FrameTooLarge), "{out:?}");
        assert!(frames.is_empty());
    }

    #[test]
    fn short_writes_resume_and_close_after_write_closes() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(
            server,
            0,
            0,
            0,
            ConnFaults::default(),
            Vec::new(),
            Vec::new(),
        );
        conn.queue_write(b"hello ");
        conn.queue_write(b"world\n");
        conn.close_after_write = true;
        loop {
            let (_, out) = conn.flush();
            match out {
                FlushOutcome::Closed => break,
                FlushOutcome::Pending => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        drop(conn);
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert_eq!(got, "hello world\n");
    }

    #[test]
    fn truncate_fault_cuts_the_stream() {
        let (mut client, server) = pair();
        let faults = ConnFaults {
            truncate_write_at: Some(4),
            ..ConnFaults::default()
        };
        let mut conn = Conn::new(server, 0, 0, 0, faults, Vec::new(), Vec::new());
        conn.queue_write(b"0123456789\n");
        let (n, out) = conn.flush();
        assert!(matches!(out, FlushOutcome::Closed), "{out:?}");
        assert_eq!(n, 4);
        drop(conn); // close delivers EOF after the 4 bytes
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert_eq!(got, "0123", "stream cut mid-frame");
    }

    #[test]
    fn drip_fault_sends_one_byte_per_cycle() {
        let (mut client, server) = pair();
        let faults = ConnFaults {
            drip_write: true,
            ..ConnFaults::default()
        };
        let mut conn = Conn::new(server, 0, 0, 0, faults, Vec::new(), Vec::new());
        conn.queue_write(b"abc\n");
        conn.close_after_write = true;
        let mut cycles = 0;
        loop {
            let (n, out) = conn.flush();
            cycles += 1;
            match out {
                FlushOutcome::Pending => assert!(n <= 1, "dripped {n} bytes in one cycle"),
                FlushOutcome::Closed => break,
                other => panic!("unexpected {other:?}"),
            }
            assert!(cycles < 100);
        }
        assert!(cycles >= 4, "took {cycles} cycles for 4 bytes");
        drop(conn);
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert_eq!(got, "abc\n");
    }
}
