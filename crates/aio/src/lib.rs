//! # cachemap-aio — a dependency-free epoll front end
//!
//! The mapping service's original TCP server spends a thread per
//! connection; at the "millions of users" scale the ROADMAP aims for,
//! thread stacks and context switches dominate before the mapper ever
//! runs. This crate is the replacement substrate: **one** event-loop
//! thread owns every socket through a level-triggered epoll instance
//! (raw FFI, no `libc` crate — see [`sys`]), frames newline-delimited
//! JSON with partial-frame resumption ([`conn`]), enforces idle
//! deadlines through a hashed timer wheel riding the workspace
//! [`cachemap_util::Clock`] (simulated in tests, so nothing sleeps),
//! and hands decoded frames to a pluggable [`Dispatch`] in batches —
//! amortizing the queue/condvar crossings that dominate per-request
//! overhead at high arrival rates.
//!
//! Layering (strictly one-directional):
//!
//! ```text
//! sys    raw syscalls (the only unsafe code)
//!  └─ poll    Poller (epoll) + Waker (eventfd)
//!      └─ conn    per-connection read framing / buffered writes
//!          └─ event_loop    accept, batch, complete, deadlines
//! ```
//!
//! The crate knows nothing about the mapping protocol: request
//! semantics live in `cachemap-service`'s `aserver`, which implements
//! [`Dispatch`] over the shared protocol module. Fault injection for
//! robustness tests ([`shim`]) mirrors the service's `netfault` idiom:
//! seeded, per-connection, ppm-rated.
//!
//! Linux-only (epoll, eventfd), which matches the workspace's CI and
//! the paper's storage-cluster setting.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod conn;
pub mod event_loop;
pub mod poll;
pub mod shim;
pub mod sys;

pub use conn::{Conn, Frame};
pub use event_loop::{
    spawn, Completion, CompletionQueue, Dispatch, EventLoopConfig, Handle, Inbound, LoopStats,
};
pub use poll::{Event, Poller, Waker};
pub use shim::{ConnFaults, FaultPlan};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;

    /// Echoes each line back uppercased; HTTP gets a fixed response.
    struct Echo;

    impl Dispatch for Echo {
        fn dispatch(&self, batch: Vec<Inbound>, done: &Arc<CompletionQueue>) {
            for inb in batch {
                let (bytes, close) = match inb.frame {
                    Frame::Line(l) => (format!("{}\n", l.to_uppercase()).into_bytes(), false),
                    Frame::Http(_) => (
                        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok"
                            .to_vec(),
                        true,
                    ),
                };
                done.complete(Completion {
                    token: inb.token,
                    gen: inb.gen,
                    seq: inb.seq,
                    bytes,
                    close_after: close,
                    shutdown: false,
                });
            }
        }
    }

    #[test]
    fn echo_round_trip_and_batching() {
        let handle = spawn(EventLoopConfig::default(), Arc::new(Echo)).unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        // Two pipelined frames, the second split across writes.
        c.write_all(b"hello\nwor").unwrap();
        c.write_all(b"ld\n").unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "HELLO\n");
        line.clear();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "WORLD\n");
        let stats = handle.stats();
        assert_eq!(
            stats
                .frames_total
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn http_scrape_closes_after_response() {
        let handle = spawn(EventLoopConfig::default(), Arc::new(Echo)).unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.write_all(b"GET /x HTTP/1.1\r\nHost: y\r\n\r\n").unwrap();
        let mut body = String::new();
        std::io::Read::read_to_string(&mut c, &mut body).unwrap(); // EOF = closed
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn over_capacity_connection_gets_typed_line() {
        let cfg = EventLoopConfig {
            max_connections: 1,
            ..EventLoopConfig::default()
        };
        let handle = spawn(cfg, Arc::new(Echo)).unwrap();
        let _held = TcpStream::connect(handle.addr()).unwrap();
        // Give the loop a cycle to register the first connection.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let second = TcpStream::connect(handle.addr()).unwrap();
        let mut r = BufReader::new(second);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("conn_limit"), "{line}");
        assert_eq!(
            handle
                .stats()
                .rejected_capacity_total
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn idle_deadline_fires_on_simulated_clock_without_sleeping() {
        let clock = Arc::new(cachemap_util::Clock::simulated());
        let cfg = EventLoopConfig {
            idle_timeout_ms: 30_000,
            clock: Arc::clone(&clock),
            ..EventLoopConfig::default()
        };
        let handle = spawn(cfg, Arc::new(Echo)).unwrap();
        let c = TcpStream::connect(handle.addr()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50)); // let accept register
        let t0 = std::time::Instant::now();
        handle.advance_clock(31_000_000_000); // 31 virtual seconds
        let mut r = BufReader::new(c);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("read_timeout"), "{line}");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "virtual deadline must not need real waiting"
        );
        assert_eq!(
            handle
                .stats()
                .idle_timeouts_total
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn shutdown_via_completion_drains_pending_replies() {
        struct ShutdownEcho;
        impl Dispatch for ShutdownEcho {
            fn dispatch(&self, batch: Vec<Inbound>, done: &Arc<CompletionQueue>) {
                for inb in batch {
                    let Frame::Line(l) = inb.frame else { continue };
                    done.complete(Completion {
                        token: inb.token,
                        gen: inb.gen,
                        seq: inb.seq,
                        bytes: b"bye\n".to_vec(),
                        close_after: false,
                        shutdown: l == "stop",
                    });
                }
            }
        }
        let handle = spawn(EventLoopConfig::default(), Arc::new(ShutdownEcho)).unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.write_all(b"stop\n").unwrap();
        let mut r = BufReader::new(c);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "bye\n", "the shutdown request still gets its reply");
        handle.join(); // loop exits on its own
    }
}
