//! The event loop: accept, frame, batch, complete.
//!
//! One thread owns every socket. Each poll cycle it: (1) drains the
//! completion queue — replies produced by the caller's dispatcher
//! threads — into per-connection write buffers, (2) accepts pending
//! connections up to `max_connections`, (3) reads readable connections
//! and extracts frames, (4) fires timer-wheel deadlines (idle
//! connections get a typed timeout reply; the batch window flushes).
//! Decoded frames accumulate into a **batch** handed to
//! [`Dispatch::dispatch`] either when `batch_max` frames are pending or
//! when the batch window closes — one handoff per batch instead of one
//! queue/condvar crossing per request.
//!
//! The loop itself never blocks on request work: [`Dispatch::dispatch`]
//! must only enqueue. Replies come back through the
//! [`CompletionQueue`], whose [`Waker`] makes a parked poll return.
//! Completions carry the connection's `(token, generation)`; a stale
//! generation (the slot was recycled) is dropped instead of writing
//! into someone else's connection.
//!
//! Time comes from a [`Clock`]: with [`Clock::simulated`], deadlines
//! are driven by [`Handle::advance_clock`] and tests never sleep.

use crate::conn::{Conn, FlushOutcome, Frame, ReadOutcome};
use crate::poll::{Event, Poller, Waker, WAKE_TOKEN};
use crate::shim::FaultPlan;
use crate::sys;
use cachemap_util::{BufferPool, Clock, TimerId, TimerWheel};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Token reserved for the listening socket.
const LISTEN_TOKEN: u64 = u64::MAX - 1;
/// Poll timeout cap: wake at least this often so stop flags and
/// simulated-clock changes are observed promptly.
const MAX_POLL_MS: i32 = 50;

/// Event-loop tuning knobs.
#[derive(Debug, Clone)]
pub struct EventLoopConfig {
    /// Bind address (port 0 for ephemeral).
    pub bind: String,
    /// Connection slots; accepts beyond this get one
    /// `over_capacity_reply` line and are closed.
    pub max_connections: usize,
    /// Idle budget per connection in milliseconds (`0` disables): a
    /// connection sending nothing for this long gets one
    /// `idle_timeout_reply` line and is closed.
    pub idle_timeout_ms: u64,
    /// How long a non-full batch may wait for company, in
    /// microseconds. `0` still batches frames decoded in the same
    /// poll cycle.
    pub batch_window_us: u64,
    /// Dispatch a batch as soon as it holds this many frames.
    pub batch_max: usize,
    /// Maximum bytes of one frame (unterminated input beyond this is
    /// answered with `frame_too_large_reply` and closed).
    pub max_frame_bytes: usize,
    /// Per-connection buffered-write cap; beyond it the connection's
    /// reads pause (backpressure) until the buffer half-drains.
    pub write_buf_limit: usize,
    /// Time source for deadlines (share one simulated clock in tests).
    pub clock: Arc<Clock>,
    /// Connection-level fault injection (off by default).
    pub faults: FaultPlan,
    /// A poll cycle overrunning its deadline by more than this fires
    /// [`Dispatch::on_stall`] (`0` disables).
    pub stall_grace_ms: u64,
    /// Reply line (no trailing newline) for over-capacity rejects.
    pub over_capacity_reply: String,
    /// Reply line for idle-deadline closes.
    pub idle_timeout_reply: String,
    /// Reply line for oversized-frame closes.
    pub frame_too_large_reply: String,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            bind: "127.0.0.1:0".into(),
            max_connections: 10_240,
            idle_timeout_ms: 30_000,
            batch_window_us: 1_000,
            batch_max: 64,
            max_frame_bytes: 1 << 20,
            write_buf_limit: 256 << 10,
            clock: Arc::new(Clock::real()),
            faults: FaultPlan::none(),
            stall_grace_ms: 250,
            over_capacity_reply: r#"{"ok":false,"error":{"kind":"conn_limit"}}"#.into(),
            idle_timeout_reply: r#"{"ok":false,"error":{"kind":"read_timeout"}}"#.into(),
            frame_too_large_reply: r#"{"ok":false,"error":{"kind":"bad_request"}}"#.into(),
        }
    }
}

/// One decoded frame tagged with its connection's identity.
#[derive(Debug, Clone)]
pub struct Inbound {
    /// Connection slot.
    pub token: usize,
    /// Slot generation at decode time.
    pub gen: u64,
    /// Per-connection frame sequence (0-based). The matching
    /// [`Completion`] must echo it: replies are written in sequence
    /// order, so a multi-threaded dispatcher finishing batches out of
    /// order cannot reorder one connection's pipelined replies.
    pub seq: u64,
    /// The frame itself.
    pub frame: Frame,
}

/// A reply heading back to a connection.
#[derive(Debug)]
pub struct Completion {
    /// Connection slot (from the [`Inbound`]).
    pub token: usize,
    /// Slot generation (stale generations are dropped).
    pub gen: u64,
    /// The [`Inbound`]'s sequence number; the loop writes replies in
    /// this order, parking early arrivals until the gap fills.
    pub seq: u64,
    /// Wire bytes, including any trailing newline.
    pub bytes: Vec<u8>,
    /// Close the connection once the bytes are written (HTTP replies,
    /// policy closes).
    pub close_after: bool,
    /// The request asked the server to stop: after this reply is
    /// queued, the loop stops accepting and drains.
    pub shutdown: bool,
}

/// The dispatcher-to-loop reply channel.
pub struct CompletionQueue {
    queue: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl CompletionQueue {
    fn new(waker: Waker) -> CompletionQueue {
        CompletionQueue {
            queue: Mutex::new(Vec::new()),
            waker,
        }
    }

    /// Posts one reply and wakes the loop. Callable from any thread.
    pub fn complete(&self, c: Completion) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push(c);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }
}

/// Request handling plugged into the loop. Implementations must not
/// block in [`Dispatch::dispatch`] — hand the batch to worker threads
/// and return; replies go through the [`CompletionQueue`].
pub trait Dispatch: Send + Sync + 'static {
    /// A batch of decoded frames, in arrival order.
    fn dispatch(&self, batch: Vec<Inbound>, done: &Arc<CompletionQueue>);
    /// A poll cycle overran its deadline by `gap_ns`.
    fn on_stall(&self, gap_ns: u64) {
        let _ = gap_ns;
    }
    /// A connection was closed for idling past its read budget.
    fn on_idle_timeout(&self) {}
}

/// Loop-level counters, readable from any thread.
#[derive(Debug, Default)]
pub struct LoopStats {
    /// Currently open connections.
    pub connections: AtomicU64,
    /// Connections accepted since start.
    pub accepted_total: AtomicU64,
    /// Connections rejected at the door (capacity).
    pub rejected_capacity_total: AtomicU64,
    /// Frames decoded and dispatched.
    pub frames_total: AtomicU64,
    /// Batches handed to the dispatcher.
    pub batches_total: AtomicU64,
    /// Poll returns (the loop's heartbeat).
    pub wakeups_total: AtomicU64,
    /// Times a connection's reads were paused by write backpressure.
    pub backpressure_total: AtomicU64,
    /// Connections closed by the idle deadline.
    pub idle_timeouts_total: AtomicU64,
    /// Connections closed for an oversized frame.
    pub frame_too_large_total: AtomicU64,
    /// Poll cycles that overran their deadline past the stall grace.
    pub stalls_total: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_read_total: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_written_total: AtomicU64,
}

/// Control handle for a running loop (cheap to share).
pub struct Handle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    waker: Waker,
    clock: Arc<Clock>,
    stats: Arc<LoopStats>,
    join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Handle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live loop counters.
    pub fn stats(&self) -> &Arc<LoopStats> {
        &self.stats
    }

    /// The loop's clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Graceful stop: no new connections, in-flight requests answered,
    /// write buffers drained, then the loop exits. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Immediate stop: the loop exits at the next cycle without
    /// draining; connections are torn down mid-write.
    pub fn kill(&self) {
        self.kill.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Advances a simulated clock and wakes the loop so deadlines are
    /// re-evaluated against the new time. No-op sleep-free driver for
    /// timeout tests.
    pub fn advance_clock(&self, ns: u64) {
        self.clock.advance_ns(ns);
        self.waker.wake();
    }

    /// Waits for the loop thread to exit.
    pub fn join(&self) {
        if let Some(h) = self.join.lock().expect("join handle poisoned").take() {
            let _ = h.join();
        }
    }
}

/// Timer-wheel tokens: per-connection idle deadlines and the batch
/// window.
#[derive(Debug, Clone, Copy)]
enum TimerToken {
    Idle(usize, u64),
    Batch,
}

/// Binds the listener, spawns the loop thread, and returns its handle.
pub fn spawn(cfg: EventLoopConfig, dispatch: Arc<dyn Dispatch>) -> io::Result<Handle> {
    // One fd per connection: lift the soft fd limit to the hard one so
    // `max_connections` is a config decision, not an rlimit accident.
    let _ = sys::raise_nofile_limit();
    let listener = TcpListener::bind(&cfg.bind)?;
    listener.set_nonblocking(true)?;
    // std hardcodes listen(128); deepen the accept queue so a
    // thousands-strong connect storm doesn't see resets.
    let _ = sys::relisten(listener.as_raw_fd(), 4096);
    let addr = listener.local_addr()?;
    let poller = Poller::new(1024)?;
    poller.add(listener.as_raw_fd(), LISTEN_TOKEN, true, false)?;
    let waker = Waker::register(&poller)?;
    let completions = Arc::new(CompletionQueue::new(waker.clone()));
    let stop = Arc::new(AtomicBool::new(false));
    let kill = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(LoopStats::default());
    let clock = Arc::clone(&cfg.clock);
    let mut state = LoopState {
        slots: Vec::new(),
        free: Vec::new(),
        timers: TimerWheel::new(1_000_000, 512), // 1 ms ticks
        batch: Vec::new(),
        batch_timer: None,
        in_flight: 0,
        seq: 0,
        gen: 0,
        pool: BufferPool::new(256, 1 << 20),
        scratch: vec![0u8; 64 << 10],
        tmp_frames: Vec::new(),
        accepting: true,
        draining: false,
        drain_started: None,
        poller,
        listener,
        waker: waker.clone(),
        completions: Arc::clone(&completions),
        dispatch,
        stats: Arc::clone(&stats),
        stop: Arc::clone(&stop),
        kill: Arc::clone(&kill),
        clock: Arc::clone(&clock),
        cfg,
    };
    let join = std::thread::Builder::new()
        .name("aio-loop".into())
        .spawn(move || state.run())?;
    Ok(Handle {
        addr,
        stop,
        kill,
        waker,
        clock,
        stats,
        join: Mutex::new(Some(join)),
    })
}

struct LoopState {
    cfg: EventLoopConfig,
    poller: Poller,
    listener: TcpListener,
    waker: Waker,
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    timers: TimerWheel<TimerToken>,
    batch: Vec<Inbound>,
    batch_timer: Option<TimerId>,
    /// Frames dispatched whose completions have not yet drained.
    in_flight: usize,
    seq: u64,
    gen: u64,
    pool: BufferPool,
    scratch: Vec<u8>,
    tmp_frames: Vec<Frame>,
    accepting: bool,
    draining: bool,
    drain_started: Option<Instant>,
    completions: Arc<CompletionQueue>,
    dispatch: Arc<dyn Dispatch>,
    stats: Arc<LoopStats>,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    clock: Arc<Clock>,
}

impl LoopState {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.kill.load(Ordering::SeqCst) {
                break;
            }
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.drained() {
                break;
            }
            let timeout_ms = self.poll_timeout_ms();
            let wait_t0 = Instant::now();
            events.clear();
            if self.poller.wait(&mut events, timeout_ms).is_err() {
                break;
            }
            self.stats.wakeups_total.fetch_add(1, Ordering::Relaxed);
            // Stall detection: a cycle that overslept its own deadline
            // by more than the grace means the loop thread was blocked
            // — exactly the regression the flight recorder should
            // capture while the evidence is fresh.
            if self.cfg.stall_grace_ms > 0 {
                let elapsed_ms = wait_t0.elapsed().as_millis() as u64;
                let overrun = elapsed_ms.saturating_sub(timeout_ms.max(0) as u64);
                if overrun > self.cfg.stall_grace_ms {
                    self.stats.stalls_total.fetch_add(1, Ordering::Relaxed);
                    self.dispatch.on_stall(overrun * 1_000_000);
                }
            }
            let now = self.clock.now_ns();
            for &ev in &events {
                match ev.token {
                    WAKE_TOKEN => {
                        self.waker.drain();
                        self.apply_completions();
                    }
                    LISTEN_TOKEN => self.accept_ready(now),
                    token => {
                        let slot = token as usize;
                        if ev.readable {
                            self.read_ready(slot, now);
                        }
                        if ev.writable {
                            self.flush_conn(slot);
                        }
                        if ev.closed {
                            // Full hang-up: nothing can be delivered
                            // either way.
                            self.close_conn(slot);
                        }
                    }
                }
            }
            // Completions may have arrived while we processed sockets;
            // cheap to check, and it shortens reply latency by a cycle.
            self.apply_completions();
            for fired in self.timers.advance(now) {
                match fired {
                    TimerToken::Batch => {
                        self.batch_timer = None;
                        self.flush_batch();
                    }
                    TimerToken::Idle(slot, gen) => self.idle_fired(slot, gen, now),
                }
            }
            if self.cfg.batch_window_us == 0 || self.draining {
                self.flush_batch();
            }
        }
        // Teardown: deregister and drop every socket.
        for slot in 0..self.slots.len() {
            self.close_conn(slot);
        }
        self.poller.remove(self.listener.as_raw_fd());
    }

    /// Milliseconds until the next deadline, capped at [`MAX_POLL_MS`].
    fn poll_timeout_ms(&self) -> i32 {
        if self.draining {
            return 5;
        }
        let now = self.clock.now_ns();
        match self.timers.next_deadline_ns() {
            Some(dl) => {
                let ms = dl.saturating_sub(now).div_ceil(1_000_000);
                (ms.min(MAX_POLL_MS as u64)) as i32
            }
            None => MAX_POLL_MS,
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_started = Some(Instant::now());
        if self.accepting {
            self.poller.remove(self.listener.as_raw_fd());
            self.accepting = false;
        }
        self.flush_batch();
    }

    /// Drain is complete when every dispatched frame has completed and
    /// every reply byte has left the process — or the bounded drain
    /// window lapsed (a wedged peer must not hold shutdown hostage).
    fn drained(&self) -> bool {
        let timed_out = self
            .drain_started
            .map(|t| t.elapsed() > std::time::Duration::from_secs(5))
            .unwrap_or(false);
        timed_out
            || (self.in_flight == 0
                && self.batch.is_empty()
                && self.slots.iter().flatten().all(|c| c.pending_write() == 0))
    }

    fn accept_ready(&mut self, now: u64) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.seq += 1;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let active = self.stats.connections.load(Ordering::Relaxed) as usize;
                    if active >= self.cfg.max_connections {
                        self.stats
                            .rejected_capacity_total
                            .fetch_add(1, Ordering::Relaxed);
                        let mut s = stream;
                        let _ = s.write_all(self.cfg.over_capacity_reply.as_bytes());
                        let _ = s.write_all(b"\n");
                        continue;
                    }
                    self.register(stream, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (EMFILE and friends):
                // level-triggered epoll will retry next cycle.
                Err(_) => break,
            }
        }
    }

    fn register(&mut self, stream: TcpStream, now: u64) {
        self.gen += 1;
        let gen = self.gen;
        let faults = self.cfg.faults.decide(self.seq);
        let conn = Conn::new(
            stream,
            gen,
            self.seq,
            now,
            faults,
            self.pool.get(),
            self.pool.get(),
        );
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        if self
            .poller
            .add(conn.stream.as_raw_fd(), slot as u64, true, false)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.slots[slot] = Some(conn);
        if self.cfg.idle_timeout_ms > 0 {
            let dl = now + self.cfg.idle_timeout_ms * 1_000_000;
            let id = self.timers.schedule(dl, TimerToken::Idle(slot, gen));
            if let Some(c) = self.slots[slot].as_mut() {
                c.idle_timer = Some(id);
            }
        }
        self.stats.accepted_total.fetch_add(1, Ordering::Relaxed);
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
    }

    fn read_ready(&mut self, slot: usize, now: u64) {
        let Some(conn) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) else {
            return;
        };
        if conn.paused {
            return;
        }
        let gen = conn.gen;
        self.tmp_frames.clear();
        let (nread, outcome) = conn.read_ready(
            &mut self.scratch,
            self.cfg.max_frame_bytes,
            now,
            &mut self.tmp_frames,
        );
        self.stats
            .bytes_read_total
            .fetch_add(nread, Ordering::Relaxed);
        // `frames_in` already counts the frames just decoded; the k-th
        // of them carries sequence `frames_in - len + k`.
        let seq_base = conn.frames_in - self.tmp_frames.len() as u64;
        for (k, frame) in self.tmp_frames.drain(..).enumerate() {
            self.batch.push(Inbound {
                token: slot,
                gen,
                seq: seq_base + k as u64,
                frame,
            });
        }
        match outcome {
            ReadOutcome::Continue => {
                if self.batch.len() >= self.cfg.batch_max {
                    self.flush_batch();
                } else if !self.batch.is_empty()
                    && self.batch_timer.is_none()
                    && self.cfg.batch_window_us > 0
                {
                    let dl = now + self.cfg.batch_window_us * 1_000;
                    self.batch_timer = Some(self.timers.schedule(dl, TimerToken::Batch));
                }
                // Backpressure is applied when replies queue up; reads
                // pausing is decided at flush time.
            }
            ReadOutcome::PeerClosed => {
                let outstanding = self.outstanding_for(slot, gen);
                let pending = self.slots[slot]
                    .as_ref()
                    .map(|c| c.pending_write())
                    .unwrap_or(0);
                if outstanding == 0 && pending == 0 {
                    self.close_conn(slot);
                } else if let Some(c) = self.slots[slot].as_mut() {
                    // Half-closed peer still owed replies: deliver
                    // them, then close.
                    c.close_after_write = true;
                }
            }
            ReadOutcome::FrameTooLarge => {
                self.stats
                    .frame_too_large_total
                    .fetch_add(1, Ordering::Relaxed);
                self.reply_and_close(slot, self.cfg.frame_too_large_reply.clone());
            }
            ReadOutcome::Error(_) => self.close_conn(slot),
        }
    }

    /// Frames from `(slot, gen)` currently batched or in flight.
    fn outstanding_for(&self, slot: usize, gen: u64) -> usize {
        // The batch is cheap to scan; in-flight frames are tracked on
        // the connection via its decode counter minus completions is
        // overkill — the batch scan plus the global in-flight bound is
        // a conservative proxy: when anything is in flight we keep the
        // connection until its writes drain.
        self.batch
            .iter()
            .filter(|i| i.token == slot && i.gen == gen)
            .count()
            + self.in_flight
    }

    fn idle_fired(&mut self, slot: usize, gen: u64, now: u64) {
        let idle_ns = self.cfg.idle_timeout_ms * 1_000_000;
        let Some(conn) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) else {
            return;
        };
        if conn.gen != gen {
            return;
        }
        let deadline = conn.last_activity_ns + idle_ns;
        if now < deadline {
            // Lazy re-arm: bytes arrived since the timer was set, so
            // push the deadline out instead of cancelling per byte.
            let id = self.timers.schedule(deadline, TimerToken::Idle(slot, gen));
            conn.idle_timer = Some(id);
            return;
        }
        self.stats
            .idle_timeouts_total
            .fetch_add(1, Ordering::Relaxed);
        self.dispatch.on_idle_timeout();
        self.reply_and_close(slot, self.cfg.idle_timeout_reply.clone());
    }

    /// Queues a final reply line and closes once it drains.
    fn reply_and_close(&mut self, slot: usize, line: String) {
        if let Some(conn) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) {
            conn.queue_write(line.as_bytes());
            conn.queue_write(b"\n");
            conn.close_after_write = true;
        }
        self.flush_conn(slot);
    }

    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        if let Some(id) = self.batch_timer.take() {
            self.timers.cancel(id);
        }
        let batch = std::mem::take(&mut self.batch);
        self.in_flight += batch.len();
        self.stats
            .frames_total
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.stats.batches_total.fetch_add(1, Ordering::Relaxed);
        self.dispatch.dispatch(batch, &self.completions);
    }

    fn apply_completions(&mut self) {
        let done = self.completions.drain();
        if done.is_empty() {
            return;
        }
        for c in done {
            self.in_flight = self.in_flight.saturating_sub(1);
            if c.shutdown {
                self.stop.store(true, Ordering::SeqCst);
            }
            let Some(conn) = self.slots.get_mut(c.token).and_then(|s| s.as_mut()) else {
                continue; // connection already gone
            };
            if conn.gen != c.gen {
                continue; // slot recycled: stale completion
            }
            // Strict reply order per connection: a completion ahead of
            // its predecessors (another dispatcher thread finished a
            // later batch first) parks until the gap fills.
            if c.seq != conn.next_write_seq {
                conn.held.insert(
                    c.seq,
                    crate::conn::HeldReply {
                        bytes: c.bytes,
                        close_after: c.close_after,
                    },
                );
                continue;
            }
            conn.queue_write(&c.bytes);
            if c.close_after {
                conn.close_after_write = true;
            }
            conn.next_write_seq += 1;
            while let Some(held) = conn.held.remove(&conn.next_write_seq) {
                conn.queue_write(&held.bytes);
                if held.close_after {
                    conn.close_after_write = true;
                }
                conn.next_write_seq += 1;
            }
            // Backpressure: a peer not draining replies stops being
            // read until the buffer half-empties.
            if !conn.paused && conn.pending_write() > self.cfg.write_buf_limit {
                conn.paused = true;
                self.stats
                    .backpressure_total
                    .fetch_add(1, Ordering::Relaxed);
                self.update_interest(c.token);
            }
            self.flush_conn(c.token);
        }
        if self.stop.load(Ordering::SeqCst) && !self.draining {
            self.begin_drain();
        }
    }

    fn update_interest(&mut self, slot: usize) {
        if let Some(conn) = self.slots.get(slot).and_then(|s| s.as_ref()) {
            let _ = self.poller.modify(
                conn.stream.as_raw_fd(),
                slot as u64,
                !conn.paused,
                conn.want_write,
            );
        }
    }

    fn flush_conn(&mut self, slot: usize) {
        let Some(conn) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) else {
            return;
        };
        let (nwritten, outcome) = conn.flush();
        self.stats
            .bytes_written_total
            .fetch_add(nwritten, Ordering::Relaxed);
        match outcome {
            FlushOutcome::Idle => {
                let mut changed = false;
                if conn.want_write {
                    conn.want_write = false;
                    changed = true;
                }
                if conn.paused {
                    conn.paused = false;
                    changed = true;
                }
                if changed {
                    self.update_interest(slot);
                }
            }
            FlushOutcome::Pending => {
                let mut changed = false;
                if !conn.want_write {
                    conn.want_write = true;
                    changed = true;
                }
                if conn.paused && conn.pending_write() <= self.cfg.write_buf_limit / 2 {
                    conn.paused = false;
                    changed = true;
                }
                if changed {
                    self.update_interest(slot);
                }
            }
            FlushOutcome::Closed | FlushOutcome::Error(_) => self.close_conn(slot),
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.slots.get_mut(slot).and_then(|s| s.take()) else {
            return;
        };
        self.poller.remove(conn.stream.as_raw_fd());
        if let Some(id) = conn.idle_timer {
            self.timers.cancel(id);
        }
        let (rb, wb) = conn.into_buffers();
        self.pool.put(rb);
        self.pool.put(wb);
        self.free.push(slot);
        self.stats.connections.fetch_sub(1, Ordering::Relaxed);
    }
}
