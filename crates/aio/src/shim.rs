//! Seeded connection-level fault injection for the event loop.
//!
//! The service crate's `netfault` module torments the *router → replica*
//! hop; this shim torments the *client → front end* hop, at the same
//! ppm-rate granularity and with the same derived-stream determinism:
//! each accepted connection's faults are decided once, from a
//! [`cachemap_util::XorShift64`] stream derived from `(seed, conn_seq)`,
//! so a test replaying the same accept order sees the same faults.
//!
//! Three behaviors, mirroring what a hostile or broken client/network
//! does to a server:
//!
//! * **stall** — the connection's reads are swallowed: bytes arrive at
//!   the socket but never reach the framer, exactly what a slow-loris
//!   peer looks like from the application. The idle deadline must fire
//!   and answer with a typed `read_timeout`.
//! * **truncate** — the write side is cut dead after a fixed number of
//!   response bytes, then the connection closes: a half-written frame,
//!   the torn-response case clients must survive.
//! * **drip** — writes trickle one byte per readiness cycle, forcing
//!   the write-buffer/backpressure path that a fast writer never hits.

use cachemap_util::XorShift64;

/// Per-million fault rates applied at accept time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Stream seed; every connection derives its own generator.
    pub seed: u64,
    /// Per-million chance the connection's reads are swallowed.
    pub stall_read_ppm: u32,
    /// Per-million chance the connection's writes are cut after
    /// [`FaultPlan::truncate_after_bytes`] and the socket closed.
    pub truncate_write_ppm: u32,
    /// Per-million chance the connection's writes drip 1 byte/cycle.
    pub drip_write_ppm: u32,
    /// Where a truncated write is cut (response-stream offset).
    pub truncate_after_bytes: usize,
}

impl FaultPlan {
    /// No faults (rates all zero).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            stall_read_ppm: 0,
            truncate_write_ppm: 0,
            drip_write_ppm: 0,
            truncate_after_bytes: 16,
        }
    }

    /// The fault decisions for the `conn_seq`-th accepted connection.
    /// Deterministic in `(self.seed, conn_seq)`.
    pub fn decide(&self, conn_seq: u64) -> ConnFaults {
        if self.stall_read_ppm == 0 && self.truncate_write_ppm == 0 && self.drip_write_ppm == 0 {
            return ConnFaults::default();
        }
        // Same derivation idiom as netfault's per-backend streams: a
        // golden-ratio multiply keeps neighbouring sequences decorrelated.
        let mut g = XorShift64::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(conn_seq + 1),
        );
        ConnFaults {
            swallow_reads: g.chance(self.stall_read_ppm as u64, 1_000_000),
            truncate_write_at: if g.chance(self.truncate_write_ppm as u64, 1_000_000) {
                Some(self.truncate_after_bytes)
            } else {
                None
            },
            drip_write: g.chance(self.drip_write_ppm as u64, 1_000_000),
        }
    }
}

/// One connection's decided faults (all off by default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnFaults {
    /// Bytes read from the socket are discarded before framing.
    pub swallow_reads: bool,
    /// Cut the response stream at this offset, then close.
    pub truncate_write_at: Option<usize>,
    /// Write at most one byte per flush cycle.
    pub drip_write: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan {
            seed: 42,
            stall_read_ppm: 500_000,
            truncate_write_ppm: 0,
            drip_write_ppm: 0,
            truncate_after_bytes: 16,
        };
        let a: Vec<bool> = (0..1000).map(|i| plan.decide(i).swallow_reads).collect();
        let b: Vec<bool> = (0..1000).map(|i| plan.decide(i).swallow_reads).collect();
        assert_eq!(a, b, "same seed, same decisions");
        let hits = a.iter().filter(|x| **x).count();
        assert!((300..700).contains(&hits), "~50% rate, got {hits}/1000");
        assert_eq!(FaultPlan::none().decide(7), ConnFaults::default());
    }
}
