//! The eight application builders.
//!
//! Conventions shared by all builders:
//!
//! * arrays are 1-D element spaces; a logical "block" is [`CHUNK_ELEMS`]
//!   consecutive elements, i.e. exactly one 64 KB data chunk at the
//!   paper's default chunk size;
//! * every nest has an innermost `k` loop of a few iterations re-touching
//!   the same blocks at different element offsets — the within-block work
//!   of the real application, which is what gives each app its L1
//!   hit-rate character;
//! * per-iteration `compute_us` reflects the app's compute:I/O balance
//!   (Hartree-Fock and MADbench2 are compute-heavy per block; contour
//!   displaying is nearly pure streaming).

use crate::{Application, Scale, CHUNK_ELEMS};
use cachemap_polyhedral::{
    AffineExpr, ArrayDecl, ArrayRef, IterationSpace, Loop, LoopNest, Program,
};

const E: i64 = CHUNK_ELEMS;

/// Shorthand: an affine subscript `Σ coeffs[j]·i_j + c`.
fn sub(coeffs: Vec<i64>, c: i64) -> Vec<AffineExpr> {
    vec![AffineExpr::new(coeffs, c)]
}

/// `hf` — Hartree-Fock method.
///
/// Sweeps all (i, j) block pairs, streaming the quadratic two-electron
/// integral file. The Fock-build symmetry means iteration `(i, j)` needs
/// *both* row blocks: it reads `I[i·B+j]`, `D[i]`, `D[j]`, `F[j]` and
/// read-modify-writes `F[i]`. The `j`-indexed blocks recur across every
/// `i` row — sharing at stride `B` in iteration order, which a
/// contiguous block distribution scatters across clients but tag
/// clustering co-locates (and `(i,j)`/`(j,i)` tags overlap in 4 of 5
/// chunks, the classic integral-symmetry affinity).
pub fn hf(scale: Scale) -> Application {
    let b = scale.dim(40);
    let k = scale.reps(2);
    let f = ArrayDecl::new("F", vec![b * E], 8);
    let d = ArrayDecl::new("D", vec![b * E], 8);
    let i_arr = ArrayDecl::new("I", vec![b * b * E], 8);
    let space = IterationSpace::new(vec![
        Loop::constant(0, b - 1),
        Loop::constant(0, b - 1),
        Loop::constant(0, k - 1),
    ]);
    let refs = vec![
        ArrayRef::read(2, sub(vec![b * E, E, 1], 0)), // I[(i·B+j)·E + k]
        ArrayRef::read(1, sub(vec![0, E, 1], 0)),     // D[j·E + k]
        ArrayRef::read(1, sub(vec![E, 0, 1], 0)),     // D[i·E + k]
        ArrayRef::read(0, sub(vec![0, E, 1], 0)),     // F[j·E + k]
        ArrayRef::write(0, sub(vec![E, 0, 1], 0)),    // F[i·E + k] =
    ];
    let nest = LoopNest::new("pair_sweep", space, refs).with_compute_us(1500.0);
    Application {
        name: "hf",
        description: "Hartree-Fock Method",
        program: Program::new("hf", vec![f, d, i_arr], vec![nest]),
        paper_miss_rates: (0.213, 0.404, 0.479),
    }
}

/// `sar` — Synthetic Aperture Radar kernel.
///
/// Two passes over the image: a row-major *range* pass (raw → image) and
/// a *subaperture-combining azimuth* pass that fuses each row block with
/// taps a quarter- and half-aperture away (`IMG[r]`, `IMG[r+R/4]`,
/// `IMG[r+R/2]`). The long-stride taps mean row blocks far apart in
/// iteration order share data — contiguous block mapping splits those
/// sharers across distant clients, tag clustering reunites them.
pub fn sar(scale: Scale) -> Application {
    let r = scale.dim(32);
    let c = scale.dim(32);
    let k = scale.reps(2);
    let raw = ArrayDecl::new("RAW", vec![r * c * E], 8);
    let img = ArrayDecl::new("IMG", vec![r * c * E], 8);
    let out = ArrayDecl::new("OUT", vec![r * c * E], 8);
    let quarter = (r / 4).max(1);
    let half = (r / 2).max(1);

    // Range pass: (row, col, k).
    let range_space = IterationSpace::new(vec![
        Loop::constant(0, r - 1),
        Loop::constant(0, c - 1),
        Loop::constant(0, k - 1),
    ]);
    let range_refs = vec![
        ArrayRef::read(0, sub(vec![c * E, E, 1], 0)),
        ArrayRef::write(1, sub(vec![c * E, E, 1], 0)),
    ];
    let range = LoopNest::new("range_pass", range_space, range_refs).with_compute_us(400.0);

    // Azimuth pass: (row, col, k) with subaperture taps.
    let azimuth_space = IterationSpace::new(vec![
        Loop::constant(0, r - half - 1),
        Loop::constant(0, c - 1),
        Loop::constant(0, k - 1),
    ]);
    let azimuth_refs = vec![
        ArrayRef::read(1, sub(vec![c * E, E, 1], 0)), // IMG[r][col]
        ArrayRef::read(1, sub(vec![c * E, E, 1], quarter * c * E)), // IMG[r+R/4][col]
        ArrayRef::read(1, sub(vec![c * E, E, 1], half * c * E)), // IMG[r+R/2][col]
        ArrayRef::write(2, sub(vec![c * E, E, 1], 0)), // OUT[r][col]
    ];
    let azimuth = LoopNest::new("azimuth_pass", azimuth_space, azimuth_refs).with_compute_us(400.0);

    Application {
        name: "sar",
        description: "Synthetic Aperture Radar Kernel",
        program: Program::new("sar", vec![raw, img, out], vec![range, azimuth]),
        paper_miss_rates: (0.160, 0.233, 0.444),
    }
}

/// `contour` — contour displaying.
///
/// A single streaming scan of a large grid with a right/down neighbour
/// stencil; almost no temporal reuse, so deep cache levels see cold
/// streams (matching its very high L3 miss rate in Table 2).
pub fn contour(scale: Scale) -> Application {
    let r = scale.dim(48);
    let c = scale.dim(32);
    let k = scale.reps(2);
    let g = ArrayDecl::new("G", vec![r * c * E], 8);
    let ct = ArrayDecl::new("CT", vec![r * c * E], 8);
    // Per-column isoline level table, reused by every row of the scan —
    // column-strided sharing on top of the streaming stencil.
    let lvl = ArrayDecl::new("LVL", vec![c * E], 8);
    let space = IterationSpace::new(vec![
        Loop::constant(0, r - 2),
        Loop::constant(0, c - 2),
        Loop::constant(0, k - 1),
    ]);
    let refs = vec![
        ArrayRef::read(0, sub(vec![c * E, E, 1], 0)), // G[i][j]
        ArrayRef::read(0, sub(vec![c * E, E, 1], c * E)), // G[i+1][j]
        ArrayRef::read(0, sub(vec![c * E, E, 1], E)), // G[i][j+1]
        ArrayRef::read(2, sub(vec![0, E, 1], 0)),     // LVL[j]
        ArrayRef::write(1, sub(vec![c * E, E, 1], 0)), // CT[i][j]
    ];
    let nest = LoopNest::new("scan", space, refs).with_compute_us(200.0);
    Application {
        name: "contour",
        description: "Contour Displaying",
        program: Program::new("contour", vec![g, ct, lvl], vec![nest]),
        paper_miss_rates: (0.153, 0.393, 0.671),
    }
}

/// `astro` — analysis of astronomical data.
///
/// Streams a time series of volumes once, matching every block against
/// the `t = 0` reference epoch (template matching) and folding the
/// result into small per-timestep statistics. The stream itself runs
/// cold at every cache level (the suite's worst miss rates in Table 2),
/// while the reference-epoch blocks recur at stride `V` — cross-client
/// sharing a block distribution misses entirely.
pub fn astro(scale: Scale) -> Application {
    let t = scale.dim(6);
    let v = scale.dim(256);
    let k = scale.reps(2);
    let vol = ArrayDecl::new("VOL", vec![t * v * E], 8);
    let stats = ArrayDecl::new("STATS", vec![t * E], 8);
    // Per-block noise/mask map consulted alongside the reference epoch.
    let noise = ArrayDecl::new("NOISE", vec![v * E], 8);
    let space = IterationSpace::new(vec![
        Loop::constant(0, t - 1),
        Loop::constant(0, v - 1),
        Loop::constant(0, k - 1),
    ]);
    let refs = vec![
        ArrayRef::read(0, sub(vec![v * E, E, 1], 0)), // VOL[(t·V+b)·E+k]
        ArrayRef::read(0, sub(vec![0, E, 1], 0)),     // VOL[b] — the t=0 reference epoch
        ArrayRef::read(2, sub(vec![0, E, 1], 0)),     // NOISE[b]
        ArrayRef::read(1, sub(vec![E, 0, 1], 0)),     // STATS[t·E+k]
        ArrayRef::write(1, sub(vec![E, 0, 1], 0)),
    ];
    let nest = LoopNest::new("reduce", space, refs).with_compute_us(300.0);
    Application {
        name: "astro",
        description: "Analysis of Astronomical Data",
        program: Program::new("astro", vec![vol, stats, noise], vec![nest]),
        paper_miss_rates: (0.284, 0.544, 0.764),
    }
}

/// `e_elem` — finite element electromagnetic modelling.
///
/// Element sweeps gathering from a banded node neighbourhood
/// (consecutive node blocks plus a +16 band); consecutive elements share
/// most of their gather footprint, giving the suite's *lowest* L1 miss
/// rate.
pub fn e_elem(scale: Scale) -> Application {
    let nb = scale.dim(512);
    let k = scale.reps(6);
    let band = 16.min(nb - 1);
    let half = nb / 2;
    let node = ArrayDecl::new("NODE", vec![(nb + half + band + 2) * E], 8);
    let elem = ArrayDecl::new("ELEM", vec![2 * nb * E], 8);
    let space = IterationSpace::new(vec![
        Loop::constant(0, nb - 1),
        Loop::constant(0, 1),
        Loop::constant(0, k - 1),
    ]);
    let refs = vec![
        ArrayRef::read(0, sub(vec![E, 0, 1], 0)),        // NODE[nb]
        ArrayRef::read(0, sub(vec![E, 0, 1], E)),        // NODE[nb+1]
        ArrayRef::read(0, sub(vec![E, 0, 1], band * E)), // NODE[nb+band]
        ArrayRef::read(0, sub(vec![E, 0, 1], half * E)), // NODE[nb+NB/2] — symmetric coupling
        ArrayRef::write(1, sub(vec![2 * E, E, 1], 0)),   // ELEM[2·nb+j]
    ];
    let nest = LoopNest::new("gather", space, refs).with_compute_us(600.0);
    Application {
        name: "e_elem",
        description: "Finite Element Electromagnetic Modeling",
        program: Program::new("e_elem", vec![node, elem], vec![nest]),
        paper_miss_rates: (0.083, 0.336, 0.499),
    }
}

/// `apsi` — pollutant distribution modelling.
///
/// Repeated 2-D plane stencil sweeps (three sweeps as separate nests):
/// each sweep reads the concentration plane with a 3-point neighbourhood
/// plus the wind field and rewrites the plane. Inter-sweep reuse gives
/// it the suite's best deep-cache behaviour.
pub fn apsi(scale: Scale) -> Application {
    let n = scale.dim(32);
    let k = scale.reps(2);
    let g = n + 1; // padded grid pitch so i+1 / j+1 stay in bounds
    let conc = ArrayDecl::new("CONC", vec![(g * g + 1) * E], 8);
    // One wind-profile block per column, shared by every row of a sweep.
    let wind = ArrayDecl::new("WIND", vec![g * E], 8);
    let sweep = |name: &str| {
        let space = IterationSpace::new(vec![
            Loop::constant(0, n - 1),
            Loop::constant(0, n - 1),
            Loop::constant(0, k - 1),
        ]);
        let refs = vec![
            ArrayRef::read(0, sub(vec![g * E, E, 1], 0)), // C[i][j]
            ArrayRef::read(0, sub(vec![g * E, E, 1], g * E)), // C[i+1][j]
            ArrayRef::read(0, sub(vec![g * E, E, 1], E)), // C[i][j+1]
            ArrayRef::read(1, sub(vec![0, E, 1], 0)),     // W[j] — vertical wind profile
            ArrayRef::write(0, sub(vec![g * E, E, 1], 0)), // C[i][j] =
        ];
        LoopNest::new(name, space, refs).with_compute_us(400.0)
    };
    Application {
        name: "apsi",
        description: "Pollutant Distribution Modeling",
        program: Program::new(
            "apsi",
            vec![conc, wind],
            vec![sweep("sweep0"), sweep("sweep1"), sweep("sweep2")],
        ),
        paper_miss_rates: (0.177, 0.254, 0.360),
    }
}

/// `madbench2` — cosmic microwave background radiation calculation.
///
/// Out-of-core blocked matrix-matrix products (the dominant phase of
/// MADbench2): iteration `(i, j, kk)` multiplies 2-chunk blocks
/// `A[i][kk]·B[kk][j]` into `C[i][j]`.
pub fn madbench2(scale: Scale) -> Application {
    let bm = scale.dim(14);
    let k = scale.reps(2);
    let a = ArrayDecl::new("A", vec![bm * bm * 2 * E], 8);
    let b = ArrayDecl::new("B", vec![bm * bm * 2 * E], 8);
    let c = ArrayDecl::new("C", vec![bm * bm * E], 8);
    let space = IterationSpace::new(vec![
        Loop::constant(0, bm - 1),
        Loop::constant(0, bm - 1),
        Loop::constant(0, bm - 1),
        Loop::constant(0, k - 1),
    ]);
    let refs = vec![
        ArrayRef::read(0, sub(vec![2 * bm * E, 0, 2 * E, 1], 0)), // A[i][kk] chunk 0
        ArrayRef::read(0, sub(vec![2 * bm * E, 0, 2 * E, 1], E)), // A[i][kk] chunk 1
        ArrayRef::read(1, sub(vec![0, 2 * E, 2 * bm * E, 1], 0)), // B[kk][j] chunk 0
        ArrayRef::read(1, sub(vec![0, 2 * E, 2 * bm * E, 1], E)), // B[kk][j] chunk 1
        ArrayRef::read(2, sub(vec![bm * E, E, 0, 1], 0)),         // C[i][j]
        ArrayRef::write(2, sub(vec![bm * E, E, 0, 1], 0)),
    ];
    let nest = LoopNest::new("dgemm_blocks", space, refs).with_compute_us(1200.0);
    Application {
        name: "madbench2",
        description: "Cosmic Microwave Background Radiation Calculation",
        program: Program::new("madbench2", vec![a, b, c], vec![nest]),
        paper_miss_rates: (0.206, 0.347, 0.565),
    }
}

/// `wupwise` — physics / quantum chromodynamics.
///
/// A (collapsed) 4-D lattice sweep: nearest-neighbour spinor couplings,
/// the gauge link, and the even-odd preconditioning partner half a
/// lattice away — long-stride sharing that block distribution splits.
pub fn wupwise(scale: Scale) -> Application {
    let l = scale.dim(40);
    let k = scale.reps(3);
    let g = l + 2; // column pitch with room for the +1 neighbours
    let half = l / 2;
    let psi = ArrayDecl::new("PSI", vec![((l + half + 1) * g + 1) * E], 8);
    let u = ArrayDecl::new("U", vec![(g * g + 1) * E], 8);
    let space = IterationSpace::new(vec![
        Loop::constant(0, l - 1),
        Loop::constant(0, l - 1),
        Loop::constant(0, k - 1),
    ]);
    let refs = vec![
        ArrayRef::read(0, sub(vec![g * E, E, 1], 0)), // PSI[x][y]
        ArrayRef::read(0, sub(vec![g * E, E, 1], g * E)), // PSI[x+1][y]
        ArrayRef::read(0, sub(vec![g * E, E, 1], E)), // PSI[x][y+1]
        ArrayRef::read(0, sub(vec![g * E, E, 1], half * g * E)), // PSI[x+L/2][y] — even-odd partner
        ArrayRef::read(1, sub(vec![g * E, E, 1], 0)), // U[x][y]
        ArrayRef::write(0, sub(vec![g * E, E, 1], 0)), // PSI[x][y] =
    ];
    let nest = LoopNest::new("lattice_sweep", space, refs).with_compute_us(800.0);
    Application {
        name: "wupwise",
        description: "Physics / Quantum Chromodynamics",
        program: Program::new("wupwise", vec![psi, u], vec![nest]),
        paper_miss_rates: (0.208, 0.363, 0.528),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_polyhedral::DataSpace;

    #[test]
    fn hf_streams_integrals_once() {
        let app = hf(Scale::Test);
        let data = DataSpace::new(&app.program.arrays, 64 * 1024);
        // The integral file dominates the dataset.
        let i_chunks = data.array_chunks(2);
        assert!(i_chunks as f64 > 0.8 * (data.num_chunks() as f64 - i_chunks as f64));
    }

    #[test]
    fn sar_passes_touch_same_image() {
        let app = sar(Scale::Test);
        assert_eq!(app.program.nests.len(), 2);
        // Azimuth reads what range wrote (array id 1 = IMG).
        let range_writes: Vec<usize> = app.program.nests[0]
            .refs
            .iter()
            .filter(|r| r.kind == cachemap_polyhedral::AccessKind::Write)
            .map(|r| r.array)
            .collect();
        let azimuth_reads: Vec<usize> = app.program.nests[1]
            .refs
            .iter()
            .filter(|r| r.kind == cachemap_polyhedral::AccessKind::Read)
            .map(|r| r.array)
            .collect();
        assert_eq!(range_writes, vec![1]);
        assert_eq!(azimuth_reads, vec![1, 1, 1]);
    }

    #[test]
    fn azimuth_taps_are_subapertures_apart() {
        // The three azimuth taps of one iteration sit 0, R/4 and R/2 rows
        // apart — long-stride sharing between distant row blocks.
        let app = sar(Scale::Test);
        let nest = &app.program.nests[1];
        let t0 = nest.refs[0].eval(&[0, 0, 0])[0];
        let t1 = nest.refs[1].eval(&[0, 0, 0])[0];
        let t2 = nest.refs[2].eval(&[0, 0, 0])[0];
        assert!(t1 > t0 && t2 > t1);
        assert_eq!(t2 - t0, 2 * (t1 - t0), "taps evenly spaced");
        assert!(t1 - t0 >= CHUNK_ELEMS, "taps must cross chunk boundaries");
        // The quarter-aperture tap of iteration (0,·) aliases the base
        // block of iteration (R/4,·) — the cross-iteration sharing that
        // block distribution scatters. Test scale: R = 8, R/4 = 2.
        assert_eq!(t1, nest.refs[0].eval(&[2, 0, 0])[0]);
    }

    #[test]
    fn astro_is_streaming() {
        // Nearly every (t, b) iteration has a distinct volume chunk.
        let app = astro(Scale::Test);
        let data = DataSpace::new(&app.program.arrays, 64 * 1024);
        let nest = &app.program.nests[0];
        let mut seen = std::collections::HashSet::new();
        for p in nest.space.iter() {
            let lin = nest.refs[0].eval_linear(&p, &app.program.arrays[0]);
            seen.insert(data.chunk_of(0, lin));
        }
        let iters_per_chunk = nest.num_iterations() as f64 / seen.len() as f64;
        // Only the k-loop revisits a chunk.
        assert!(iters_per_chunk <= 2.01, "{iters_per_chunk}");
    }

    #[test]
    fn e_elem_band_is_shared_between_neighbours() {
        let app = e_elem(Scale::Test);
        let nest = &app.program.nests[0];
        // NODE[nb+1] at element nb equals NODE[nb] at element nb+1.
        let a = nest.refs[1].eval(&[3, 0, 0]);
        let b = nest.refs[0].eval(&[4, 0, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn apsi_sweeps_are_identical_nests() {
        let app = apsi(Scale::Test);
        assert_eq!(app.program.nests.len(), 3);
        assert_eq!(app.program.nests[0].refs, app.program.nests[1].refs);
        assert_eq!(app.program.nests[0].space, app.program.nests[2].space);
    }

    #[test]
    fn madbench_blocks_are_two_chunks_wide() {
        let app = madbench2(Scale::Test);
        let nest = &app.program.nests[0];
        let a0 = nest.refs[0].eval(&[1, 0, 2, 0])[0];
        let a1 = nest.refs[1].eval(&[1, 0, 2, 0])[0];
        assert_eq!(a1 - a0, CHUNK_ELEMS);
    }

    #[test]
    fn wupwise_even_odd_partner_is_half_a_lattice_away() {
        let app = wupwise(Scale::Test);
        let nest = &app.program.nests[0];
        let base = nest.refs[0].eval(&[0, 0, 0])[0];
        let partner = nest.refs[3].eval(&[0, 0, 0])[0];
        // Test scale: L = 10, pitch g = 12 → L/2 · g rows of elements.
        assert_eq!(partner - base, 5 * 12 * CHUNK_ELEMS);
        // And it aliases the base block of iteration (L/2, ·).
        assert_eq!(partner, nest.refs[0].eval(&[5, 0, 0])[0]);
    }
}
