//! The eight I/O-intensive application models of the HPDC'10 evaluation.
//!
//! The paper's suite (Table 2) consists of production codes manipulating
//! 190-423 GB disk-resident datasets. Those codes and datasets are not
//! available, so each application is modelled as a parameterized set of
//! affine loop nests whose *chunk-level access structure* matches what
//! the paper (and the applications' public descriptions) document:
//!
//! | name | structure modelled |
//! |---|---|
//! | `hf` | Hartree-Fock: block-pair sweeps over a large integral file with quadratic reuse of Fock/density blocks |
//! | `sar` | SAR kernel: a row-major range pass followed by a column-major azimuth pass over the image |
//! | `contour` | contour displaying: one streaming neighbour-stencil scan of a huge grid |
//! | `astro` | astronomy analysis: time-series volumes streamed once with tiny shared statistics |
//! | `e_elem` | FEM electromagnetics: element sweeps gathering from a banded node neighbourhood |
//! | `apsi` | pollutant modelling: repeated 2-D plane stencil sweeps (multiple nests, inter-sweep reuse) |
//! | `madbench2` | CMB analysis: out-of-core blocked matrix-matrix products |
//! | `wupwise` | lattice QCD: 4-D (collapsed) stencil with short and long stride couplings |
//!
//! Dataset sizes are scaled down ~3 orders of magnitude with the
//! cache:data ratios preserved (see `cachemap-storage`'s
//! `PlatformConfig::paper_default`). Suite subscripts are affine; array
//! strides are expressed in units of [`CHUNK_ELEMS`] so one subscript
//! step moves one 64 KB data chunk at the paper's default chunk size.
//! [`extras`] holds extension workloads beyond Table 2 (periodic
//! boundaries via quasi-affine subscripts, write-heavy checkpointing).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cachemap_polyhedral::Program;

pub mod apps;
pub mod extras;
pub mod scenarios;

/// Elements of an 8-byte-element array per 64 KB data chunk. Workload
/// subscripts stride in multiples of this, so at the default chunk size
/// each logical "block" is exactly one chunk (at 16 KB it spans four
/// chunks, at 128 KB two blocks share one — exactly the granularity
/// effect Figure 14 studies).
pub const CHUNK_ELEMS: i64 = 8192;

/// Workload scale knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for unit/integration tests (seconds in debug).
    Test,
    /// The evaluation scale used by the experiment harness.
    Paper,
}

impl Scale {
    /// Divides a paper-scale dimension down for the test scale.
    pub(crate) fn dim(&self, paper: i64) -> i64 {
        match self {
            Scale::Paper => paper,
            Scale::Test => (paper / 4).max(2),
        }
    }

    /// Scales an inner repetition count.
    pub(crate) fn reps(&self, paper: i64) -> i64 {
        match self {
            Scale::Paper => paper,
            Scale::Test => (paper / 2).max(1),
        }
    }
}

/// An application model plus its paper-reported reference numbers.
#[derive(Debug, Clone)]
pub struct Application {
    /// Suite name (matches Table 2).
    pub name: &'static str,
    /// One-line description (matches Table 2's "Brief Description").
    pub description: &'static str,
    /// The loop nests and arrays.
    pub program: Program,
    /// Miss rates of the *original* version reported in Table 2
    /// (L1, L2, L3) as fractions — the calibration reference.
    pub paper_miss_rates: (f64, f64, f64),
}

/// Builds the full eight-application suite at a scale.
pub fn suite(scale: Scale) -> Vec<Application> {
    vec![
        apps::hf(scale),
        apps::sar(scale),
        apps::contour(scale),
        apps::astro(scale),
        apps::e_elem(scale),
        apps::apsi(scale),
        apps::madbench2(scale),
        apps::wupwise(scale),
    ]
}

/// Builds one application by its Table 2 name.
pub fn by_name(name: &str, scale: Scale) -> Option<Application> {
    match name {
        "hf" => Some(apps::hf(scale)),
        "sar" => Some(apps::sar(scale)),
        "contour" => Some(apps::contour(scale)),
        "astro" => Some(apps::astro(scale)),
        "e_elem" => Some(apps::e_elem(scale)),
        "apsi" => Some(apps::apsi(scale)),
        "madbench2" => Some(apps::madbench2(scale)),
        "wupwise" => Some(apps::wupwise(scale)),
        _ => None,
    }
}

/// Builds the adversarial policy-zoo scenarios (see [`scenarios`]).
pub fn scenarios(scale: Scale) -> Vec<Application> {
    vec![
        scenarios::scan_storm(scale),
        scenarios::zipf_flip(scale),
        scenarios::graph_bfs(scale),
        scenarios::graph_dfs(scale),
    ]
}

/// Builds one adversarial scenario by name.
pub fn scenario_by_name(name: &str, scale: Scale) -> Option<Application> {
    match name {
        "scan_storm" => Some(scenarios::scan_storm(scale)),
        "zipf_flip" => Some(scenarios::zipf_flip(scale)),
        "graph_bfs" => Some(scenarios::graph_bfs(scale)),
        "graph_dfs" => Some(scenarios::graph_dfs(scale)),
        _ => None,
    }
}

/// The adversarial scenario names, in [`scenarios`] order.
pub const SCENARIO_NAMES: [&str; 4] = ["scan_storm", "zipf_flip", "graph_bfs", "graph_dfs"];

/// The suite names in Table 2 order.
pub const NAMES: [&str; 8] = [
    "hf",
    "sar",
    "contour",
    "astro",
    "e_elem",
    "apsi",
    "madbench2",
    "wupwise",
];

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_polyhedral::DataSpace;

    #[test]
    fn suite_has_eight_apps_in_table2_order() {
        let s = suite(Scale::Test);
        assert_eq!(s.len(), 8);
        for (app, name) in s.iter().zip(NAMES) {
            assert_eq!(app.name, name);
        }
    }

    #[test]
    fn scenario_registry_roundtrip() {
        let s = scenarios(Scale::Test);
        assert_eq!(s.len(), SCENARIO_NAMES.len());
        for (app, name) in s.iter().zip(SCENARIO_NAMES) {
            assert_eq!(app.name, name);
            let again = scenario_by_name(name, Scale::Test).expect(name);
            assert_eq!(again.name, name);
        }
        // Scenario names never collide with the Table 2 suite.
        for name in SCENARIO_NAMES {
            assert!(by_name(name, Scale::Test).is_none());
            assert!(!NAMES.contains(&name));
        }
        assert!(scenario_by_name("hf", Scale::Test).is_none());
    }

    #[test]
    fn by_name_roundtrip() {
        for name in NAMES {
            let app = by_name(name, Scale::Test).expect(name);
            assert_eq!(app.name, name);
        }
        assert!(by_name("nonesuch", Scale::Test).is_none());
    }

    #[test]
    fn every_reference_stays_in_bounds_at_both_scales() {
        for scale in [Scale::Test, Scale::Paper] {
            for app in suite(scale) {
                for nest in &app.program.nests {
                    nest.validate_bounds(&app.program.arrays)
                        .unwrap_or_else(|e| panic!("{} ({scale:?}): {e}", app.name));
                }
            }
        }
    }

    #[test]
    fn paper_scale_datasets_are_in_the_calibrated_range() {
        // 2-6 Ki chunks at 64 KB keeps the cache:data ratio near the
        // paper's; see PlatformConfig::paper_default.
        for app in suite(Scale::Paper) {
            let data = DataSpace::new(&app.program.arrays, 64 * 1024);
            let chunks = data.num_chunks();
            assert!(
                (900..8000).contains(&chunks),
                "{}: {chunks} chunks out of calibrated range",
                app.name
            );
        }
    }

    #[test]
    fn paper_scale_iteration_counts_are_tractable() {
        for app in suite(Scale::Paper) {
            let iters = app.program.total_iterations();
            assert!(
                (1_000..200_000).contains(&iters),
                "{}: {iters} iterations",
                app.name
            );
        }
    }

    #[test]
    fn paper_miss_rates_match_table2() {
        let s = suite(Scale::Test);
        let expect = [
            (0.213, 0.404, 0.479),
            (0.160, 0.233, 0.444),
            (0.153, 0.393, 0.671),
            (0.284, 0.544, 0.764),
            (0.083, 0.336, 0.499),
            (0.177, 0.254, 0.360),
            (0.206, 0.347, 0.565),
            (0.208, 0.363, 0.528),
        ];
        for (app, e) in s.iter().zip(expect) {
            assert_eq!(app.paper_miss_rates, e, "{}", app.name);
        }
    }
}
