//! Extension workloads beyond the paper's Table 2 suite.
//!
//! These exercise the features the paper lists as extensions/future
//! work: quasi-affine (modular) subscripts — "irregular data access
//! patterns" — and write-heavy checkpointing phases. They are not part
//! of the eight-app evaluation tables; examples and tests use them.

use crate::{Application, Scale, CHUNK_ELEMS};
use cachemap_polyhedral::{
    AffineExpr, ArrayDecl, ArrayRef, IterationSpace, Loop, LoopNest, Program,
};

const E: i64 = CHUNK_ELEMS;

fn sub(coeffs: Vec<i64>, c: i64) -> Vec<AffineExpr> {
    vec![AffineExpr::new(coeffs, c)]
}

/// `wupwise_periodic` — the lattice sweep with true periodic boundary
/// conditions expressed through modular subscripts
/// (`PSI[(x+1) mod L][y]`): iterations at the lattice edge wrap around
/// and share data with the opposite edge — irregular sharing that only
/// the quasi-affine extension can express.
pub fn wupwise_periodic(scale: Scale) -> Application {
    let l = scale.dim(40);
    let k = scale.reps(3);
    let g = l; // exact pitch: periodic wrap never leaves the lattice
    let psi = ArrayDecl::new("PSI", vec![(g * g + 1) * E], 8);
    let u = ArrayDecl::new("U", vec![(g * g + 1) * E], 8);
    let space = IterationSpace::new(vec![
        Loop::constant(0, l - 1),
        Loop::constant(0, l - 1),
        Loop::constant(0, k - 1),
    ]);
    // The whole element index ((x+dx)·g + y)·E + k is reduced modulo
    // L·g·E: because y·E + k < g·E, the reduction fires exactly when the
    // row index (x+dx) crosses the lattice edge, wrapping it to row 0
    // with the column preserved — true periodic boundary semantics.
    let refs = vec![
        // PSI[x][·] — own row block (one chunk per row at 64 KB).
        ArrayRef::read(0, sub(vec![g * E, E, 1], 0)),
        // PSI[(x+1) mod L][·] — wrapping neighbour row.
        ArrayRef::read(
            0,
            vec![AffineExpr::new(vec![g * E, E, 1], g * E).with_mod(l * g * E)],
        ),
        // PSI[(x+L/2) mod L][·] — even-odd partner, also wrapping.
        ArrayRef::read(
            0,
            vec![AffineExpr::new(vec![g * E, E, 1], (l / 2) * g * E).with_mod(l * g * E)],
        ),
        // U[x][y] gauge link.
        ArrayRef::read(1, sub(vec![g * E, E, 1], 0)),
        // PSI[x][·] write-back.
        ArrayRef::write(0, sub(vec![g * E, E, 1], 0)),
    ];
    let nest = LoopNest::new("periodic_sweep", space, refs).with_compute_us(800.0);
    Application {
        name: "wupwise_periodic",
        description: "Lattice QCD sweep with periodic boundaries (quasi-affine extension)",
        program: Program::new("wupwise_periodic", vec![psi, u], vec![nest]),
        paper_miss_rates: (0.208, 0.363, 0.528), // reference: same as wupwise
    }
}

/// `checkpoint` — a write-dominant phase: every client's state is dumped
/// to a disk-resident snapshot, then a small catalog is updated. Models
/// the checkpointing traffic the paper's introduction motivates ("writes
/// for checkpointing"); exercises dirty write-back paths end to end.
pub fn checkpoint(scale: Scale) -> Application {
    let blocks = scale.dim(512);
    let k = scale.reps(4);
    let state = ArrayDecl::new("STATE", vec![blocks * E], 8);
    let snap = ArrayDecl::new("SNAP", vec![blocks * E], 8);
    let catalog = ArrayDecl::new("CATALOG", vec![E], 8);
    let space = IterationSpace::new(vec![
        Loop::constant(0, blocks - 1),
        Loop::constant(0, k - 1),
    ]);
    let refs = vec![
        ArrayRef::read(0, sub(vec![E, 1], 0)),  // STATE[b]
        ArrayRef::write(1, sub(vec![E, 1], 0)), // SNAP[b] =
        ArrayRef::write(2, sub(vec![0, 1], 0)), // CATALOG entry
    ];
    let nest = LoopNest::new("dump", space, refs).with_compute_us(100.0);
    Application {
        name: "checkpoint",
        description: "Write-dominant checkpoint dump with shared catalog",
        program: Program::new("checkpoint", vec![state, snap, catalog], vec![nest]),
        paper_miss_rates: (0.0, 0.0, 0.0), // not a Table 2 application
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_polyhedral::DataSpace;

    #[test]
    fn periodic_boundary_wraps_to_row_zero() {
        let app = wupwise_periodic(Scale::Test);
        let nest = &app.program.nests[0];
        let l = 10i64; // Test scale
                       // At the last row, the +1 neighbour wraps to row 0.
        let last = nest.refs[1].eval(&[l - 1, 0, 0])[0];
        let first_row = nest.refs[0].eval(&[0, 0, 0])[0];
        assert_eq!(last, first_row);
        // Mid-lattice it does not wrap.
        let mid = nest.refs[1].eval(&[3, 0, 0])[0];
        assert_eq!(mid, nest.refs[0].eval(&[4, 0, 0])[0]);
    }

    #[test]
    fn periodic_refs_stay_in_bounds() {
        let app = wupwise_periodic(Scale::Test);
        app.program.nests[0]
            .validate_bounds(&app.program.arrays)
            .unwrap();
    }

    #[test]
    fn periodic_tags_connect_the_edges() {
        // The wrap means an edge-row iteration shares a chunk with the
        // matching column of row 0 — sharing a contiguous block split
        // would sever.
        let app = wupwise_periodic(Scale::Test);
        let data = DataSpace::new(&app.program.arrays, 64 * 1024);
        let l = 10i64; // Test scale
        let tag_of = |p: &[i64]| {
            let nest = &app.program.nests[0];
            let mut tag = cachemap_util::BitSet::new(data.num_chunks());
            for r in &nest.refs {
                let lin = r.eval_linear(p, &app.program.arrays[r.array]);
                tag.set(data.chunk_of(r.array, lin));
            }
            tag
        };
        let edge = tag_of(&[l - 1, 0, 0]);
        let origin = tag_of(&[0, 0, 0]);
        assert!(
            edge.intersects(&origin),
            "periodic wrap must connect the lattice edges:\n  edge   {}\n  origin {}",
            edge.to_tag_string(),
            origin.to_tag_string()
        );
        // An interior row does not touch row 0.
        let interior = tag_of(&[3, 0, 0]);
        assert!(!interior.intersects(&origin) || 3 + l / 2 == l || 4 == l);
    }

    #[test]
    fn checkpoint_is_write_dominant() {
        let app = checkpoint(Scale::Test);
        let writes = app.program.nests[0]
            .refs
            .iter()
            .filter(|r| r.kind == cachemap_polyhedral::AccessKind::Write)
            .count();
        assert_eq!(writes, 2);
        app.program.nests[0]
            .validate_bounds(&app.program.arrays)
            .unwrap();
    }
}
