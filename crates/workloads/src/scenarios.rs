//! Adversarial workload families for the eviction-policy zoo.
//!
//! The Table 2 suite ([`crate::apps`]) is the paper's evaluation; these
//! scenarios are deliberately engineered *against* specific replacement
//! policies, so the policy advisor has something to disagree about:
//!
//! * [`scan_storm`] — a reused hot set repeatedly flushed by large
//!   sequential scans. LRU loses the hot set on every storm; SLRU's
//!   protected segment keeps it (scan resistance).
//! * [`zipf_flip`] — a popularity inversion mid-run: the head of the
//!   popularity distribution moves to previously-cold blocks. Plain LFU
//!   starves the new head behind stale high counts; LFUDA's dynamic
//!   aging recovers.
//! * [`graph_bfs`] — level-synchronous breadth-first traversal: edge
//!   lists stream once per level while a wrapped frontier array is
//!   re-referenced across levels (quasi-affine subscripts).
//! * [`graph_dfs`] — depth-first walk: a sliding stack window with
//!   strong short-term reuse over a pseudo-randomly visited graph.
//!
//! All four are regular enough for the mapper (affine or quasi-affine
//! subscripts) but adversarial for at least one cache policy. They are
//! not part of the eight-app tables; the advisor, examples, and tests
//! use them.

use crate::{Application, Scale, CHUNK_ELEMS};
use cachemap_polyhedral::{
    AffineExpr, ArrayDecl, ArrayRef, IterationSpace, Loop, LoopNest, Program,
};

const E: i64 = CHUNK_ELEMS;

fn sub(coeffs: Vec<i64>, c: i64) -> Vec<AffineExpr> {
    vec![AffineExpr::new(coeffs, c)]
}

fn wrapped(coeffs: Vec<i64>, c: i64, m: i64) -> Vec<AffineExpr> {
    vec![AffineExpr::new(coeffs, c).with_mod(m)]
}

/// Number of scan storms in [`scan_storm`] (warm pass + this many
/// scan/re-reference cycles).
pub const SCAN_STORM_CYCLES: usize = 3;

/// `scan_storm` — a hot working set interleaved with sequential scan
/// storms.
///
/// Structure: one warm-up nest touches every hot block `reps` times
/// (building the re-reference history scan-resistant policies key on),
/// then [`SCAN_STORM_CYCLES`] rounds of (full sequential scan over a
/// dataset much larger than any cache, hot-set re-reference pass).
/// Under LRU every storm flushes the hot set, so each re-reference pass
/// pays cold misses again; SLRU keeps the promoted hot lines in its
/// protected segment while the single-use scan lines churn through
/// probation.
pub fn scan_storm(scale: Scale) -> Application {
    let hot = scale.dim(192); // hot blocks, one chunk each
    let scan = scale.dim(4096); // scan blocks — far above cumulative cache
    let reps = scale.reps(4); // re-references per hot pass (>= 2)
    let hot_arr = ArrayDecl::new("HOT", vec![hot * E], 8);
    let scan_arr = ArrayDecl::new("SCAN", vec![scan * E], 8);

    let hot_pass = |name: &str| {
        let space = IterationSpace::new(vec![
            Loop::constant(0, reps - 1),
            Loop::constant(0, hot - 1),
        ]);
        // HOT[b], re-visited `reps` times.
        let refs = vec![ArrayRef::read(0, sub(vec![0, E], 0))];
        LoopNest::new(name, space, refs).with_compute_us(50.0)
    };
    let storm = |name: &str| {
        let space = IterationSpace::new(vec![Loop::constant(0, scan - 1)]);
        // SCAN[i], each block exactly once.
        let refs = vec![ArrayRef::read(1, sub(vec![E], 0))];
        LoopNest::new(name, space, refs).with_compute_us(20.0)
    };

    let mut nests = vec![hot_pass("warm")];
    for k in 0..SCAN_STORM_CYCLES {
        nests.push(storm(["storm0", "storm1", "storm2"][k]));
        nests.push(hot_pass(["rehot0", "rehot1", "rehot2"][k]));
    }
    Application {
        name: "scan_storm",
        description: "Hot working set flushed by repeated sequential scan storms (anti-LRU)",
        program: Program::new("scan_storm", vec![hot_arr, scan_arr], nests),
        paper_miss_rates: (0.0, 0.0, 0.0), // not a Table 2 application
    }
}

/// `zipf_flip` — popularity inversion mid-run.
///
/// Phase A cycles over the first region of `POP` enough times to build
/// large access counts; phase B abandons it and cycles over the second
/// region. Plain LFU keeps phase A's stale high-count lines resident
/// (phase B lines are evicted before re-reference, so their counts never
/// grow), while LFUDA's cache age ratchets past the stale counts and
/// admits the new head; recency policies adapt immediately.
pub fn zipf_flip(scale: Scale) -> Application {
    let qa = scale.dim(1536); // phase A hot region, in chunks
    let qb = scale.dim(1280); // phase B hot region, in chunks
    let ra = scale.reps(10); // phase A passes (builds frequency)
    let rb = scale.reps(12); // phase B passes (time to recover)
    let pop = ArrayDecl::new("POP", vec![(qa + qb) * E], 8);

    let phase = |name: &str, blocks: i64, reps: i64, base: i64| {
        let space = IterationSpace::new(vec![
            Loop::constant(0, reps - 1),
            Loop::constant(0, blocks - 1),
        ]);
        let refs = vec![ArrayRef::read(0, sub(vec![0, E], base * E))];
        LoopNest::new(name, space, refs).with_compute_us(30.0)
    };
    let nests = vec![phase("phase_a", qa, ra, 0), phase("phase_b", qb, rb, qa)];
    Application {
        name: "zipf_flip",
        description: "Zipf popularity inversion mid-run (anti-LFU, pro-aging)",
        program: Program::new("zipf_flip", vec![pop], nests),
        paper_miss_rates: (0.0, 0.0, 0.0), // not a Table 2 application
    }
}

/// `graph_bfs` — level-synchronous BFS over a chunked CSR graph.
///
/// Each level streams its slice of the edge array once (no reuse) while
/// frontier reads and next-frontier writes revisit a much smaller
/// wrapped frontier array — the frontier is the reusable working set,
/// the edge stream is the scan pressure, and the wrap makes the
/// frontier subscripts quasi-affine (irregular neighbour order).
pub fn graph_bfs(scale: Scale) -> Application {
    let levels = scale.reps(6);
    let verts = scale.dim(512); // vertex blocks visited per level
    let front = scale.dim(128); // frontier blocks (fits shared caches)
    let adj = ArrayDecl::new("ADJ", vec![levels * verts * E], 8);
    let front_arr = ArrayDecl::new("FRONT", vec![front * E], 8);

    let space = IterationSpace::new(vec![
        Loop::constant(0, levels - 1),
        Loop::constant(0, verts - 1),
    ]);
    let refs = vec![
        // ADJ[l][v] — edge list, streamed exactly once.
        ArrayRef::read(0, sub(vec![verts * E, E], 0)),
        // FRONT[(l + 3v) mod F] — current-frontier reads in shuffled
        // neighbour order, re-referenced across levels.
        ArrayRef::read(1, wrapped(vec![E, 3 * E], 0, front * E)),
        // FRONT[(5l + v) mod F] — next-frontier marks.
        ArrayRef::write(1, wrapped(vec![5 * E, E], 0, front * E)),
    ];
    let nest = LoopNest::new("bfs_levels", space, refs).with_compute_us(60.0);
    Application {
        name: "graph_bfs",
        description: "Level-synchronous BFS: streamed edges + re-referenced wrapped frontier",
        program: Program::new("graph_bfs", vec![adj, front_arr], vec![nest]),
        paper_miss_rates: (0.0, 0.0, 0.0), // not a Table 2 application
    }
}

/// `graph_dfs` — depth-first walk with a sliding stack window.
///
/// The visit order over the graph is a strided pseudo-random walk (no
/// spatial locality), but every step reads and writes a small window of
/// recent stack frames — strong short-term temporal reuse that recency
/// policies capture and frequency policies undervalue.
pub fn graph_dfs(scale: Scale) -> Application {
    let steps = scale.dim(768);
    let depth = scale.reps(8); // stack frames touched per step
    let graph = scale.dim(1536); // graph blocks
    let stack = scale.dim(96); // stack blocks
    let graph_arr = ArrayDecl::new("GRAPH", vec![graph * E], 8);
    let stack_arr = ArrayDecl::new("STACK", vec![stack * E], 8);

    let space = IterationSpace::new(vec![
        Loop::constant(0, steps - 1),
        Loop::constant(0, depth - 1),
    ]);
    let refs = vec![
        // GRAPH[(7t + 11d) mod G] — pseudo-random vertex visits.
        ArrayRef::read(0, wrapped(vec![7 * E, 11 * E], 0, graph * E)),
        // STACK[(t + d) mod S] — sliding window of recent frames.
        ArrayRef::read(1, wrapped(vec![E, E], 0, stack * E)),
        // STACK[(t + d) mod S] — frame updates (dirty write-back).
        ArrayRef::write(1, wrapped(vec![E, E], 0, stack * E)),
    ];
    let nest = LoopNest::new("dfs_walk", space, refs).with_compute_us(40.0);
    Application {
        name: "graph_dfs",
        description: "DFS walk: pseudo-random graph visits + sliding stack-window reuse",
        program: Program::new("graph_dfs", vec![graph_arr, stack_arr], vec![nest]),
        paper_miss_rates: (0.0, 0.0, 0.0), // not a Table 2 application
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_polyhedral::{AccessKind, DataSpace};

    #[test]
    fn all_scenarios_stay_in_bounds_at_both_scales() {
        for scale in [Scale::Test, Scale::Paper] {
            for app in crate::scenarios(scale) {
                for nest in &app.program.nests {
                    nest.validate_bounds(&app.program.arrays)
                        .unwrap_or_else(|e| panic!("{} ({scale:?}): {e}", app.name));
                }
            }
        }
    }

    #[test]
    fn scan_storm_alternates_storms_and_hot_passes() {
        let app = scan_storm(Scale::Test);
        let names: Vec<&str> = app.program.nests.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            names,
            ["warm", "storm0", "rehot0", "storm1", "rehot1", "storm2", "rehot2"]
        );
        // The scan dwarfs every cache level; the hot set does not.
        let data = DataSpace::new(&app.program.arrays, 64 * 1024);
        assert!(data.num_chunks() > 1000);
    }

    #[test]
    fn zipf_flip_phases_touch_disjoint_regions() {
        let app = zipf_flip(Scale::Test);
        let a = &app.program.nests[0].refs[0];
        let b = &app.program.nests[1].refs[0];
        let qa = Scale::Test.dim(1536);
        // Phase A's maximum element index stays below phase B's minimum.
        let a_max = a.eval(&[0, qa - 1])[0];
        let b_min = b.eval(&[0, 0])[0];
        assert!(a_max < b_min, "a_max {a_max} vs b_min {b_min}");
    }

    #[test]
    fn graph_frontier_and_stack_wrap_within_their_arrays() {
        let bfs = graph_bfs(Scale::Test);
        let front = Scale::Test.dim(128) * E;
        let nest = &bfs.program.nests[0];
        let levels = Scale::Test.reps(6);
        let verts = Scale::Test.dim(512);
        let idx = nest.refs[1].eval(&[levels - 1, verts - 1])[0];
        assert!(idx < front, "frontier read escaped its array");

        let dfs = graph_dfs(Scale::Test);
        let stack = Scale::Test.dim(96) * E;
        let nest = &dfs.program.nests[0];
        // The sliding window revisits the same frame a step later.
        let now = nest.refs[1].eval(&[10, 3])[0];
        let later = nest.refs[1].eval(&[11, 2])[0];
        assert_eq!(now, later, "stack window must overlap across steps");
        assert!(now < stack);
    }

    #[test]
    fn graph_dfs_writes_back_stack_frames() {
        let app = graph_dfs(Scale::Test);
        let writes = app.program.nests[0]
            .refs
            .iter()
            .filter(|r| r.kind == AccessKind::Write)
            .count();
        assert_eq!(writes, 1);
    }
}
