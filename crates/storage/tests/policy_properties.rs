//! Property tests for the eviction-policy zoo: every production cache is
//! cross-checked against an executable reference model under seeded
//! random streams of access / insert / set_capacity / drain / reset
//! operations.
//!
//! The models are deliberately naive — ordered `Vec`s and linear scans —
//! so their behaviour is easy to audit; the production caches must match
//! them *exactly* (hits, eviction victims, dirty write-back bits), which
//! pins down deterministic eviction order for every policy. Two
//! invariants are additionally checked on every step: residency never
//! exceeds capacity, and a dirty chunk surfaces as dirty exactly once
//! between residencies.

use cachemap_storage::cache::{build_cache, Chunk, InsertOutcome};
use cachemap_storage::PolicyKind;

/// Deterministic xorshift64* generator — keeps the streams seeded and
/// dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

// ---------------------------------------------------------------------------
// Reference models
// ---------------------------------------------------------------------------

/// One resident line of a reference model.
#[derive(Debug, Clone)]
struct Line {
    chunk: Chunk,
    dirty: bool,
    freq: u64,
    key: u64, // LFUDA / GDSF priority at last touch
    seq: u64,
    seg: u8, // SLRU: 0 probationary, 1 protected
}

/// Executable specification of each policy: a `Vec` of lines in recency
/// order (front = most recently touched) plus whatever bookkeeping the
/// policy needs. `victim()` returns the index to evict next.
struct Model {
    policy: PolicyKind,
    capacity: usize,
    lines: Vec<Line>, // front = most recent (recency policies)
    fifo: Vec<Chunk>, // FIFO arrival order (front = oldest)
    age: u64,
    next_seq: u64,
    hits: u64,
    misses: u64,
}

impl Model {
    fn new(policy: PolicyKind, capacity: usize) -> Self {
        Model {
            policy,
            capacity,
            lines: Vec::new(),
            fifo: Vec::new(),
            age: 0,
            next_seq: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn protected_cap(&self) -> usize {
        (self.capacity * 4 / 5).max(1)
    }

    fn pos(&self, chunk: Chunk) -> Option<usize> {
        self.lines.iter().position(|l| l.chunk == chunk)
    }

    fn touch(&mut self, chunk: Chunk, write: bool) {
        let i = self.pos(chunk).expect("resident");
        let mut line = self.lines.remove(i);
        line.dirty |= write;
        line.freq += 1;
        match self.policy {
            PolicyKind::Lru => self.lines.insert(0, line),
            PolicyKind::Fifo => {
                // Order untouched: put it back where it was.
                self.lines.insert(i, line);
            }
            PolicyKind::Lfu => self.lines.insert(i, line),
            PolicyKind::Slru => {
                line.seg = 1;
                self.lines.insert(0, line);
                // Demote protected overflow (never evicts).
                let protected: Vec<usize> = (0..self.lines.len())
                    .filter(|&j| self.lines[j].seg == 1)
                    .collect();
                if protected.len() > self.protected_cap() {
                    let demote = *protected.last().expect("non-empty");
                    self.lines[demote].seg = 0;
                    let l = self.lines.remove(demote);
                    self.lines.insert(0, l);
                    // Re-order: the demoted line becomes probationary
                    // MRU, which is position 0 among probationary lines.
                }
            }
            PolicyKind::Lfuda => {
                line.key = self.age + line.freq;
                self.lines.insert(i, line);
            }
            PolicyKind::Gdsf => {
                line.key = self.age + line.freq * 1024;
                self.lines.insert(i, line);
            }
        }
    }

    /// Index of the next victim in `lines`, per policy.
    fn victim(&self) -> usize {
        match self.policy {
            PolicyKind::Lru => self.lines.len() - 1,
            PolicyKind::Fifo => {
                let oldest = self.fifo[0];
                self.pos(oldest).expect("fifo line resident")
            }
            PolicyKind::Lfu => (0..self.lines.len())
                .min_by_key(|&i| (self.lines[i].freq, self.lines[i].seq))
                .expect("non-empty"),
            PolicyKind::Slru => {
                // Probationary LRU first (last probationary in recency
                // order), protected LRU otherwise.
                let pick = |seg: u8| (0..self.lines.len()).rfind(|&i| self.lines[i].seg == seg);
                pick(0).or_else(|| pick(1)).expect("non-empty")
            }
            PolicyKind::Lfuda | PolicyKind::Gdsf => (0..self.lines.len())
                .min_by_key(|&i| (self.lines[i].key, self.lines[i].seq))
                .expect("non-empty"),
        }
    }

    fn evict_one(&mut self) -> (Chunk, bool) {
        let v = self.victim();
        let line = self.lines.remove(v);
        if matches!(self.policy, PolicyKind::Lfuda | PolicyKind::Gdsf) {
            self.age = self.age.max(line.key);
        }
        self.fifo.retain(|&c| c != line.chunk);
        (line.chunk, line.dirty)
    }

    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if self.pos(chunk).is_some() {
            self.hits += 1;
            self.touch(chunk, write);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if let Some(i) = self.pos(chunk) {
            match self.policy {
                PolicyKind::Lru | PolicyKind::Slru | PolicyKind::Lfuda | PolicyKind::Gdsf => {
                    // Re-insert counts as a touch for these policies…
                    self.lines[i].dirty |= dirty;
                    self.touch(chunk, false);
                }
                PolicyKind::Fifo | PolicyKind::Lfu => {
                    // …but FIFO/LFU just merge the dirty bit.
                    self.lines[i].dirty |= dirty;
                }
            }
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.lines.len() == self.capacity {
            let (victim, was_dirty) = self.evict_one();
            outcome = if was_dirty {
                InsertOutcome::EvictedDirty(victim)
            } else {
                InsertOutcome::EvictedClean(victim)
            };
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = match self.policy {
            PolicyKind::Lfuda => self.age + 1,
            PolicyKind::Gdsf => self.age + 1024,
            _ => 0,
        };
        self.lines.insert(
            0,
            Line {
                chunk,
                dirty,
                freq: 1,
                key,
                seq,
                seg: 0,
            },
        );
        self.fifo.push(chunk);
        outcome
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.lines.len() > self.capacity {
            out.push(self.evict_one());
        }
        if self.policy == PolicyKind::Slru {
            // Shrunk protected share demotes the overflow.
            loop {
                let protected: Vec<usize> = (0..self.lines.len())
                    .filter(|&j| self.lines[j].seg == 1)
                    .collect();
                if protected.len() <= self.protected_cap() {
                    break;
                }
                let demote = *protected.last().expect("non-empty");
                self.lines[demote].seg = 0;
                let l = self.lines.remove(demote);
                self.lines.insert(0, l);
            }
        }
        out
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::new();
        while !self.lines.is_empty() {
            out.push(self.evict_one());
        }
        out
    }

    fn reset(&mut self) {
        self.lines.clear();
        self.fifo.clear();
        self.age = 0;
        self.next_seq = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

// ---------------------------------------------------------------------------
// The property harness
// ---------------------------------------------------------------------------

/// Tracks that a dirtied chunk surfaces as dirty exactly once between
/// residencies: marked when a residency becomes dirty, cleared when the
/// eviction/drain surfaces it.
struct DirtyLedger {
    dirty: std::collections::BTreeSet<Chunk>,
}

impl DirtyLedger {
    fn new() -> Self {
        DirtyLedger {
            dirty: std::collections::BTreeSet::new(),
        }
    }

    fn mark(&mut self, chunk: Chunk) {
        self.dirty.insert(chunk);
    }

    fn surfaced(&mut self, chunk: Chunk, dirty: bool, ctx: &str) {
        if dirty {
            assert!(
                self.dirty.remove(&chunk),
                "{ctx}: chunk {chunk} surfaced dirty twice (or was never dirtied)"
            );
        } else {
            assert!(
                !self.dirty.contains(&chunk),
                "{ctx}: chunk {chunk} was dirty but surfaced clean"
            );
        }
    }
}

fn run_stream(policy: PolicyKind, seed: u64, steps: usize) {
    let capacity = 2 + (seed % 14) as usize;
    let universe = (capacity as u64) * 3;
    let mut cache = build_cache(policy, capacity);
    let mut model = Model::new(policy, capacity);
    let mut ledger = DirtyLedger::new();
    let mut rng = Rng::new(seed);

    for step in 0..steps {
        let ctx = format!("{policy:?} seed {seed} step {step}");
        let op = rng.below(100);
        match op {
            // Mostly accesses + fill-on-miss, like the engine's flow.
            0..=79 => {
                let chunk = rng.below(universe) as usize;
                let write = rng.below(4) == 0;
                let hit = cache.access(chunk, write);
                let model_hit = model.access(chunk, write);
                assert_eq!(hit, model_hit, "{ctx}: hit/miss diverged");
                if hit && write {
                    ledger.mark(chunk);
                }
                if !hit {
                    let out = cache.insert(chunk, write);
                    let model_out = model.insert(chunk, write);
                    assert_eq!(out, model_out, "{ctx}: eviction diverged");
                    if write {
                        ledger.mark(chunk);
                    }
                    match out {
                        InsertOutcome::Inserted => {}
                        InsertOutcome::EvictedClean(c) => ledger.surfaced(c, false, &ctx),
                        InsertOutcome::EvictedDirty(c) => ledger.surfaced(c, true, &ctx),
                    }
                }
            }
            // Blind inserts (readahead-style).
            80..=89 => {
                let chunk = rng.below(universe) as usize;
                let dirty = rng.below(8) == 0;
                let was_resident = cache.contains(chunk);
                let out = cache.insert(chunk, dirty);
                let model_out = model.insert(chunk, dirty);
                assert_eq!(out, model_out, "{ctx}: eviction diverged");
                let _ = was_resident;
                if dirty {
                    ledger.mark(chunk);
                }
                match out {
                    InsertOutcome::Inserted => {}
                    InsertOutcome::EvictedClean(c) => ledger.surfaced(c, false, &ctx),
                    InsertOutcome::EvictedDirty(c) => ledger.surfaced(c, true, &ctx),
                }
            }
            // Resize (degradation / recovery).
            90..=94 => {
                let cap = 1 + rng.below(16) as usize;
                let evicted = cache.set_capacity(cap);
                let model_evicted = model.set_capacity(cap);
                assert_eq!(evicted, model_evicted, "{ctx}: resize evictions diverged");
                for (c, d) in &evicted {
                    ledger.surfaced(*c, *d, &ctx);
                }
                assert_eq!(cache.capacity(), cap.max(1), "{ctx}");
            }
            // Crash-drain.
            95..=97 => {
                let drained = cache.drain();
                let model_drained = model.drain();
                assert_eq!(drained, model_drained, "{ctx}: drain order diverged");
                for (c, d) in &drained {
                    ledger.surfaced(*c, *d, &ctx);
                }
                assert!(cache.is_empty(), "{ctx}");
            }
            // Full reset.
            _ => {
                cache.reset();
                model.reset();
                ledger = DirtyLedger::new();
                assert_eq!(cache.stats().accesses(), 0, "{ctx}");
            }
        }

        // Step invariants.
        assert!(
            cache.len() <= cache.capacity(),
            "{ctx}: residency above capacity"
        );
        assert_eq!(cache.len(), model.lines.len(), "{ctx}: length diverged");
        assert_eq!(
            (cache.stats().hits, cache.stats().misses),
            (model.hits, model.misses),
            "{ctx}: stats diverged"
        );
    }

    // Terminal drain: every still-dirty line must surface exactly once.
    let ctx = format!("{policy:?} seed {seed} terminal");
    for (c, d) in cache.drain() {
        ledger.surfaced(c, d, &ctx);
    }
    assert!(
        ledger.dirty.is_empty(),
        "{ctx}: dirty chunks lost without a write-back: {:?}",
        ledger.dirty
    );
}

#[test]
fn every_policy_matches_its_reference_model() {
    for policy in PolicyKind::ALL {
        for seed in 1..=12u64 {
            run_stream(policy, seed * 7919, 1500);
        }
    }
}

#[test]
fn eviction_order_is_deterministic_across_runs() {
    // Same stream twice → byte-equal drain transcripts.
    for policy in PolicyKind::ALL {
        let transcript = |_: u32| {
            let mut cache = build_cache(policy, 6);
            let mut rng = Rng::new(99);
            let mut log = Vec::new();
            for _ in 0..400 {
                let chunk = rng.below(18) as usize;
                let write = rng.below(3) == 0;
                if !cache.access(chunk, write) {
                    log.push(format!("{:?}", cache.insert(chunk, write)));
                }
            }
            log.push(format!("{:?}", cache.drain()));
            log.join("\n")
        };
        assert_eq!(transcript(0), transcript(1), "{policy:?}");
    }
}
