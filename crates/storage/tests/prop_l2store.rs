//! Property tests for the crash-durable L2 fingerprint store: random
//! write / crash-truncate / reopen cycles must recover every fully
//! written record and never serve a corrupt one.

use cachemap_storage::{L2Config, L2Store};
use cachemap_util::check::{self, Gen};
use cachemap_util::{Fingerprint, FxHashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cachemap-l2-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn payload(g: &mut Gen) -> Vec<u8> {
    (0..g.usize_in(0, 200))
        .map(|_| g.u64_in(0, 255) as u8)
        .collect()
}

fn segment_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// Random write/invalidate traffic interleaved with crash-truncate and
/// reopen cycles. Invariants after every reopen:
///
/// * with an intact tail, recovery is **exact**: every key reads back
///   its latest state (bytes or tombstoned miss);
/// * with a torn tail, a key may roll back to an *earlier fully written*
///   state — but the store must never serve bytes that were not at some
///   point written for that key, and it must always open.
#[test]
fn crash_truncate_reopen_recovers_a_consistent_prefix() {
    check::cases(0x12d5_707e, 25, |g| {
        let dir = temp_dir("cycle");
        let cfg = L2Config {
            dir: dir.clone(),
            ttl_secs: 0, // TTL off: this test is about durability
            segment_bytes: g.u64_in(96, 4096),
        };
        // Latest state per key, plus every payload ever written for it.
        let mut latest: FxHashMap<u128, Option<Vec<u8>>> = FxHashMap::default();
        let mut history: FxHashMap<u128, Vec<Vec<u8>>> = FxHashMap::default();
        let mut store = L2Store::open(cfg.clone(), 0).unwrap();
        let mut now = 1u64;

        for _cycle in 0..g.usize_in(1, 4) {
            // A burst of traffic.
            for _ in 0..g.usize_in(1, 30) {
                let key = g.u64_in(0, 12) as u128;
                if g.usize_in(0, 9) == 0 {
                    store.invalidate(Fingerprint(key), now).unwrap();
                    if latest.contains_key(&key) {
                        latest.insert(key, None);
                    }
                } else {
                    let bytes = payload(g);
                    store
                        .put(Fingerprint(key), Fingerprint(7), &bytes, now)
                        .unwrap();
                    history.entry(key).or_default().push(bytes.clone());
                    latest.insert(key, Some(bytes));
                }
                now += 1;
            }
            store.flush().unwrap();

            // Crash: drop the store, then maybe tear the tail of the
            // last segment (a partial final write).
            drop(store);
            let torn = g.bool() && {
                let files = segment_files(&dir);
                let last = files.last().unwrap().clone();
                let len = std::fs::metadata(&last).unwrap().len();
                let cut = g.u64_in(0, len.min(60));
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&last)
                    .unwrap()
                    .set_len(len - cut)
                    .unwrap();
                cut > 0
            };

            store = L2Store::open(cfg.clone(), now).unwrap();
            for (key, want) in &latest {
                let got = store.get(&Fingerprint(*key), now);
                if !torn {
                    assert_eq!(&got, want, "key {key}: intact-tail recovery must be exact");
                } else if let Some(bytes) = &got {
                    assert!(
                        history.get(key).is_some_and(|h| h.contains(bytes)),
                        "key {key}: recovered bytes were never written"
                    );
                }
            }
            // Re-anchor the model on what actually survived so later
            // cycles assert against the recovered state.
            let keys: Vec<u128> = latest.keys().copied().collect();
            for key in keys {
                let got = store.get(&Fingerprint(key), now);
                latest.insert(key, got);
            }
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// A bit flip injected at a random offset of a sealed store must never
/// let a read return bytes that differ from what was written: the
/// checksum turns corruption into a miss, at recovery and on reads.
#[test]
fn random_bit_flips_never_yield_corrupt_reads() {
    check::cases(0xb17f_11b5, 30, |g| {
        let dir = temp_dir("flip");
        let cfg = L2Config {
            dir: dir.clone(),
            ttl_secs: 0,
            segment_bytes: 1 << 16,
        };
        let mut written: FxHashMap<u128, Vec<u8>> = FxHashMap::default();
        {
            let mut store = L2Store::open(cfg.clone(), 0).unwrap();
            for key in 0..g.u64_in(2, 12) as u128 {
                let bytes = payload(g);
                store
                    .put(Fingerprint(key), Fingerprint(7), &bytes, 1)
                    .unwrap();
                written.insert(key, bytes);
            }
            store.flush().unwrap();
        }

        // Flip one random bit somewhere in the segment files.
        let files = segment_files(&dir);
        let victim = files[g.usize_in(0, files.len() - 1)].clone();
        let mut bytes = std::fs::read(&victim).unwrap();
        if !bytes.is_empty() {
            let at = g.usize_in(0, bytes.len() - 1);
            bytes[at] ^= 1 << g.usize_in(0, 7);
            std::fs::write(&victim, &bytes).unwrap();
        }

        // Recovery must start, and every successful read must be exact.
        let mut store = L2Store::open(cfg, 2).unwrap();
        for (key, want) in &written {
            if let Some(got) = store.get(&Fingerprint(*key), 2) {
                assert_eq!(
                    &got, want,
                    "key {key}: a bit flip slipped past the checksum"
                );
            }
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });
}
