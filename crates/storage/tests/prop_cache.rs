//! Property tests for the cache implementations and the event engine.

use cachemap_storage::cache::{ChunkCache, FifoCache, LfuCache, LruCache};
use cachemap_storage::{ClientOp, HierarchyTree, MappedProgram, PlatformConfig, Simulator};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<(usize, bool)>> {
    proptest::collection::vec((0usize..64, proptest::bool::ANY), 1..400)
}

fn drive(cache: &mut dyn ChunkCache, trace: &[(usize, bool)]) {
    for &(chunk, write) in trace {
        if !cache.access(chunk, write) {
            cache.insert(chunk, write);
        }
    }
}

proptest! {
    #[test]
    fn caches_never_exceed_capacity(trace in arb_trace(), cap in 1usize..32) {
        let mut lru = LruCache::new(cap);
        let mut fifo = FifoCache::new(cap);
        let mut lfu = LfuCache::new(cap);
        for &(chunk, write) in &trace {
            for cache in [&mut lru as &mut dyn ChunkCache, &mut fifo, &mut lfu] {
                if !cache.access(chunk, write) {
                    cache.insert(chunk, write);
                }
                prop_assert!(cache.len() <= cap);
            }
        }
    }

    #[test]
    fn stats_account_for_every_access(trace in arb_trace(), cap in 1usize..32) {
        let mut lru = LruCache::new(cap);
        drive(&mut lru, &trace);
        prop_assert_eq!(lru.stats().accesses() as usize, trace.len());
    }

    #[test]
    fn lru_matches_reference_model(trace in arb_trace(), cap in 1usize..16) {
        let mut lru = LruCache::new(cap);
        let mut model: Vec<usize> = Vec::new(); // front = MRU
        for &(chunk, write) in &trace {
            let hit = lru.access(chunk, write);
            let model_hit = model.contains(&chunk);
            prop_assert_eq!(hit, model_hit);
            model.retain(|&x| x != chunk);
            if !hit {
                lru.insert(chunk, write);
                if model.len() == cap {
                    model.pop();
                }
            }
            model.insert(0, chunk);
        }
    }

    #[test]
    fn bigger_lru_never_hits_less(trace in arb_trace(), cap in 1usize..16) {
        // LRU has the inclusion property: hits are monotone in capacity.
        let mut small = LruCache::new(cap);
        let mut big = LruCache::new(cap * 2);
        drive(&mut small, &trace);
        drive(&mut big, &trace);
        prop_assert!(big.stats().hits >= small.stats().hits);
    }

    #[test]
    fn engine_funnel_invariants_hold(
        seeds in proptest::collection::vec((0usize..128, proptest::bool::ANY), 1..200)
    ) {
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg);
        let mut prog = MappedProgram::new(cfg.num_clients);
        for (k, &(chunk, write)) in seeds.iter().enumerate() {
            prog.per_client[k % cfg.num_clients].push(ClientOp::Access { chunk, write });
        }
        let rep = Simulator::new(cfg).run(&prog);
        prop_assert_eq!(rep.l1.accesses() as usize, seeds.len());
        prop_assert_eq!(rep.l2.accesses(), rep.l1.misses);
        prop_assert_eq!(rep.l3.accesses(), rep.l2.misses);
        prop_assert_eq!(rep.disk_reads, rep.l3.misses);
        prop_assert!(rep.exec_time_ns > 0);
        let _ = tree;
    }

    #[test]
    fn interleaving_cannot_create_more_hits_than_accesses(
        per_client in proptest::collection::vec(
            proptest::collection::vec(0usize..32, 0..60), 4),
    ) {
        let cfg = PlatformConfig::tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        for (c, chunks) in per_client.iter().enumerate() {
            prog.per_client[c] = chunks
                .iter()
                .map(|&chunk| ClientOp::Access { chunk, write: false })
                .collect();
        }
        let rep = Simulator::new(cfg).run(&prog);
        prop_assert!(rep.l1.hits <= rep.l1.accesses());
        prop_assert!(rep.disk_writes == 0, "read-only run must not write back");
    }
}
