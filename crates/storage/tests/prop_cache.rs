//! Property tests for the cache implementations and the event engine,
//! driven by the in-repo deterministic harness (`cachemap_util::check`).

use cachemap_storage::cache::{ChunkCache, FifoCache, LfuCache, LruCache};
use cachemap_storage::{ClientOp, HierarchyTree, MappedProgram, PlatformConfig, Simulator};
use cachemap_util::check::{cases, Gen};

fn arb_trace(g: &mut Gen, max_chunk: usize, max_len: usize) -> Vec<(usize, bool)> {
    let n = g.usize_in(1, max_len);
    (0..n)
        .map(|_| (g.usize_in(0, max_chunk), g.bool()))
        .collect()
}

fn drive(cache: &mut dyn ChunkCache, trace: &[(usize, bool)]) {
    for &(chunk, write) in trace {
        if !cache.access(chunk, write) {
            cache.insert(chunk, write);
        }
    }
}

#[test]
fn caches_never_exceed_capacity() {
    cases(0xCAC4_E001, 96, |g| {
        let trace = arb_trace(g, 64, 400);
        let cap = g.usize_in(1, 32);
        let mut lru = LruCache::new(cap);
        let mut fifo = FifoCache::new(cap);
        let mut lfu = LfuCache::new(cap);
        for &(chunk, write) in &trace {
            for cache in [&mut lru as &mut dyn ChunkCache, &mut fifo, &mut lfu] {
                if !cache.access(chunk, write) {
                    cache.insert(chunk, write);
                }
                assert!(cache.len() <= cap);
            }
        }
    });
}

#[test]
fn stats_account_for_every_access() {
    cases(0xCAC4_E002, 96, |g| {
        let trace = arb_trace(g, 64, 400);
        let cap = g.usize_in(1, 32);
        let mut lru = LruCache::new(cap);
        drive(&mut lru, &trace);
        assert_eq!(lru.stats().accesses() as usize, trace.len());
    });
}

#[test]
fn lru_matches_reference_model() {
    cases(0xCAC4_E003, 96, |g| {
        let trace = arb_trace(g, 64, 400);
        let cap = g.usize_in(1, 16);
        let mut lru = LruCache::new(cap);
        let mut model: Vec<usize> = Vec::new(); // front = MRU
        for &(chunk, write) in &trace {
            let hit = lru.access(chunk, write);
            let model_hit = model.contains(&chunk);
            assert_eq!(hit, model_hit);
            model.retain(|&x| x != chunk);
            if !hit {
                lru.insert(chunk, write);
                if model.len() == cap {
                    model.pop();
                }
            }
            model.insert(0, chunk);
        }
    });
}

#[test]
fn bigger_lru_never_hits_less() {
    cases(0xCAC4_E004, 96, |g| {
        // LRU has the inclusion property: hits are monotone in capacity.
        let trace = arb_trace(g, 64, 400);
        let cap = g.usize_in(1, 16);
        let mut small = LruCache::new(cap);
        let mut big = LruCache::new(cap * 2);
        drive(&mut small, &trace);
        drive(&mut big, &trace);
        assert!(big.stats().hits >= small.stats().hits);
    });
}

#[test]
fn engine_funnel_invariants_hold() {
    cases(0xCAC4_E005, 64, |g| {
        let seeds = arb_trace(g, 128, 200);
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        let mut prog = MappedProgram::new(cfg.num_clients);
        for (k, &(chunk, write)) in seeds.iter().enumerate() {
            prog.per_client[k % cfg.num_clients].push(ClientOp::Access { chunk, write });
        }
        let rep = Simulator::new(cfg).unwrap().run(&prog).unwrap();
        assert_eq!(rep.l1.accesses() as usize, seeds.len());
        assert_eq!(rep.l2.accesses(), rep.l1.misses);
        assert_eq!(rep.l3.accesses(), rep.l2.misses);
        assert_eq!(rep.disk_reads, rep.l3.misses);
        assert!(rep.exec_time_ns > 0);
        let _ = tree;
    });
}

#[test]
fn interleaving_cannot_create_more_hits_than_accesses() {
    cases(0xCAC4_E006, 64, |g| {
        let cfg = PlatformConfig::tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        for c in 0..cfg.num_clients {
            let len = g.usize_in(0, 60);
            prog.per_client[c] = (0..len)
                .map(|_| ClientOp::Access {
                    chunk: g.usize_in(0, 32),
                    write: false,
                })
                .collect();
        }
        let rep = Simulator::new(cfg).unwrap().run(&prog).unwrap();
        assert!(rep.l1.hits <= rep.l1.accesses());
        assert!(rep.disk_writes == 0, "read-only run must not write back");
    });
}
