//! The storage cache hierarchy tree (Figure 1 / Section 4.3).
//!
//! The mapper's clustering algorithm descends this tree level by level:
//! the root is the (possibly dummy) top of the storage layer, its
//! children are storage-node caches, then I/O-node caches, and the leaves
//! are the client-node (L1) caches. Two clients *have affinity at cache
//! level ℓ* when the same level-ℓ cache sits on both of their paths to
//! the root — the central definition of Section 3.

use crate::config::{ConfigError, PlatformConfig};

/// Index of a node in the hierarchy tree.
pub type NodeId = usize;

/// Why a [`HierarchyTree::prune_clients`] call could not produce a
/// degraded tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PruneError {
    /// A failed-client index does not exist in this tree.
    UnknownClient {
        /// The offending client index.
        client: usize,
        /// Number of clients in the tree.
        num_clients: usize,
    },
    /// Every client was marked failed; no survivors remain to remap onto.
    NoSurvivors,
}

impl std::fmt::Display for PruneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PruneError::UnknownClient {
                client,
                num_clients,
            } => write!(
                f,
                "failed client {client} out of range (tree has {num_clients} clients)"
            ),
            PruneError::NoSurvivors => write!(f, "all clients failed; nothing to remap onto"),
        }
    }
}

impl std::error::Error for PruneError {}

/// Which layer of the storage hierarchy a cache belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// Client-node cache (the paper's L1).
    Client,
    /// I/O-node cache (L2).
    Io,
    /// Storage-node cache (L3).
    Storage,
    /// Hypothetical unified root inserted when there are multiple storage
    /// nodes (Section 4.3: "we create a dummy node as the root node").
    DummyRoot,
}

impl CacheLevel {
    /// Index of this level in per-level `[L1, L2, L3]` arrays such as
    /// [`PlatformConfig::policies`](crate::config::PlatformConfig) and
    /// the engine's eviction tallies; `None` for the dummy root, which
    /// holds no cache.
    pub fn cache_index(self) -> Option<usize> {
        match self {
            CacheLevel::Client => Some(0),
            CacheLevel::Io => Some(1),
            CacheLevel::Storage => Some(2),
            CacheLevel::DummyRoot => None,
        }
    }
}

/// One node of the hierarchy tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Node id (index into the tree's node table).
    pub id: NodeId,
    /// Which hierarchy layer this cache lives in.
    pub level: CacheLevel,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children in the tree (empty for leaves).
    pub children: Vec<NodeId>,
    /// For `Client` leaves: the client index `0..w`.
    /// For `Io`/`Storage` nodes: the node index within its layer.
    pub layer_index: usize,
}

/// The storage cache hierarchy tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyTree {
    nodes: Vec<TreeNode>,
    root: NodeId,
    clients: Vec<NodeId>,       // leaf node id per client index
    io_nodes: Vec<NodeId>,      // node id per I/O-node index
    storage_nodes: Vec<NodeId>, // node id per storage-node index
}

impl HierarchyTree {
    /// Builds the three-level tree of a [`PlatformConfig`]: clients are
    /// divided contiguously over I/O nodes, and I/O nodes contiguously
    /// over storage nodes (the Blue Gene/P-style partitioning Section 3
    /// describes). A dummy root is added when there are multiple storage
    /// nodes.
    ///
    /// # Errors
    /// Returns the [`ConfigError`] of [`PlatformConfig::validate`] when
    /// the config is structurally invalid.
    pub fn from_config(cfg: &PlatformConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut alloc = |level, parent, layer_index| {
            let id = nodes.len();
            nodes.push(TreeNode {
                id,
                level,
                parent,
                children: Vec::new(),
                layer_index,
            });
            id
        };

        let root = if cfg.num_storage_nodes > 1 {
            Some(alloc(CacheLevel::DummyRoot, None, 0))
        } else {
            None
        };

        let mut storage_nodes = Vec::with_capacity(cfg.num_storage_nodes);
        for s in 0..cfg.num_storage_nodes {
            let id = alloc(CacheLevel::Storage, root, s);
            storage_nodes.push(id);
        }
        let mut io_nodes = Vec::with_capacity(cfg.num_io_nodes);
        for i in 0..cfg.num_io_nodes {
            let parent = storage_nodes[i / cfg.ios_per_storage()];
            let id = alloc(CacheLevel::Io, Some(parent), i);
            io_nodes.push(id);
        }
        let mut clients = Vec::with_capacity(cfg.num_clients);
        for c in 0..cfg.num_clients {
            let parent = io_nodes[c / cfg.clients_per_io()];
            let id = alloc(CacheLevel::Client, Some(parent), c);
            clients.push(id);
        }

        // Wire children.
        for id in 0..nodes.len() {
            if let Some(p) = nodes[id].parent {
                nodes[p].children.push(id);
            }
        }

        let root = root.unwrap_or(storage_nodes[0]);
        Ok(HierarchyTree {
            nodes,
            root,
            clients,
            io_nodes,
            storage_nodes,
        })
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id]
    }

    /// Number of clients (leaves).
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Leaf node id of a client index.
    pub fn client_leaf(&self, client: usize) -> NodeId {
        self.clients[client]
    }

    /// Node id of an I/O node index.
    pub fn io_node(&self, io: usize) -> NodeId {
        self.io_nodes[io]
    }

    /// Node id of a storage node index.
    pub fn storage_node(&self, s: usize) -> NodeId {
        self.storage_nodes[s]
    }

    /// Index of the I/O node serving a client.
    ///
    /// Invariant: construction (and pruning) always wires every client
    /// leaf under an I/O node, so the parent lookup cannot fail.
    pub fn io_of_client(&self, client: usize) -> usize {
        let leaf = self.clients[client];
        match self.nodes[leaf].parent {
            Some(io) => self.nodes[io].layer_index,
            None => {
                debug_assert!(false, "client leaf {client} has no I/O parent");
                0
            }
        }
    }

    /// Index of the storage node serving a client (via its I/O node).
    ///
    /// Invariant: every I/O node is wired under a storage node by
    /// construction, so the parent lookup cannot fail.
    pub fn storage_of_client(&self, client: usize) -> usize {
        self.storage_of_io(self.io_of_client(client))
    }

    /// Index of the storage node above an I/O node.
    ///
    /// Invariant: every I/O node has a storage parent by construction.
    pub fn storage_of_io(&self, io: usize) -> usize {
        let io_id = self.io_nodes[io];
        match self.nodes[io_id].parent {
            Some(s) => self.nodes[s].layer_index,
            None => {
                debug_assert!(false, "I/O node {io} has no storage parent");
                0
            }
        }
    }

    /// Layer indices of the I/O nodes sharing a storage parent with `io`
    /// (excluding `io` itself), in increasing order. These are the
    /// failover candidates when I/O node `io` crashes.
    pub fn io_siblings(&self, io: usize) -> Vec<usize> {
        let io_id = self.io_nodes[io];
        let Some(parent) = self.nodes[io_id].parent else {
            return Vec::new();
        };
        self.nodes[parent]
            .children
            .iter()
            .map(|&c| self.nodes[c].layer_index)
            .filter(|&i| i != io)
            .collect()
    }

    /// Client indices under an arbitrary tree node (in increasing order).
    pub fn clients_under(&self, id: NodeId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if node.level == CacheLevel::Client {
                out.push(node.layer_index);
            } else {
                stack.extend(node.children.iter().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// Path of node ids from a client leaf up to (and including) the root.
    pub fn path_to_root(&self, client: usize) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cursor = self.clients[client];
        loop {
            path.push(cursor);
            match self.nodes[cursor].parent {
                Some(p) => cursor = p,
                None => return path,
            }
        }
    }

    /// Builds the degraded tree left after the given clients fail: the
    /// failed leaves are removed, along with any internal node that no
    /// longer has a surviving client beneath it. Returns the pruned tree
    /// plus the survivor map — `map[new_client] = original_client` — so a
    /// distribution over the pruned tree can be translated back to
    /// original client indices.
    ///
    /// Node and layer indices are renumbered contiguously (in original
    /// order), keeping every [`HierarchyTree`] invariant intact, so the
    /// clustering algorithms run on a pruned tree unchanged.
    ///
    /// # Errors
    /// [`PruneError::UnknownClient`] if a failed index is out of range,
    /// [`PruneError::NoSurvivors`] if no client remains.
    pub fn prune_clients(
        &self,
        failed: &[usize],
    ) -> Result<(HierarchyTree, Vec<usize>), PruneError> {
        let n = self.clients.len();
        let mut is_failed = vec![false; n];
        for &c in failed {
            if c >= n {
                return Err(PruneError::UnknownClient {
                    client: c,
                    num_clients: n,
                });
            }
            is_failed[c] = true;
        }
        let survivors: Vec<usize> = (0..n).filter(|&c| !is_failed[c]).collect();
        if survivors.is_empty() {
            return Err(PruneError::NoSurvivors);
        }

        // Keep every surviving leaf and its ancestor chain.
        let mut keep = vec![false; self.nodes.len()];
        for &c in &survivors {
            let mut cursor = Some(self.clients[c]);
            while let Some(id) = cursor {
                if keep[id] {
                    break;
                }
                keep[id] = true;
                cursor = self.nodes[id].parent;
            }
        }

        // Renumber kept nodes in original id order (deterministic).
        let mut new_id = vec![usize::MAX; self.nodes.len()];
        let mut kept_ids = Vec::new();
        for id in 0..self.nodes.len() {
            if keep[id] {
                new_id[id] = kept_ids.len();
                kept_ids.push(id);
            }
        }

        let mut nodes = Vec::with_capacity(kept_ids.len());
        let mut clients = Vec::new();
        let mut io_nodes = Vec::new();
        let mut storage_nodes = Vec::new();
        for &old in &kept_ids {
            let src = &self.nodes[old];
            let id = new_id[old];
            let layer_index = match src.level {
                CacheLevel::Client => {
                    clients.push(id);
                    clients.len() - 1
                }
                CacheLevel::Io => {
                    io_nodes.push(id);
                    io_nodes.len() - 1
                }
                CacheLevel::Storage => {
                    storage_nodes.push(id);
                    storage_nodes.len() - 1
                }
                CacheLevel::DummyRoot => 0,
            };
            nodes.push(TreeNode {
                id,
                level: src.level,
                parent: src.parent.map(|p| new_id[p]),
                children: src
                    .children
                    .iter()
                    .filter(|&&c| keep[c])
                    .map(|&c| new_id[c])
                    .collect(),
                layer_index,
            });
        }

        Ok((
            HierarchyTree {
                nodes,
                root: new_id[self.root],
                clients,
                io_nodes,
                storage_nodes,
            },
            survivors,
        ))
    }

    /// True if the two clients have affinity at a cache of the given
    /// level: some level-`level` cache lies on both root paths
    /// (Section 3's affinity definition).
    pub fn have_affinity_at(&self, c1: usize, c2: usize, level: CacheLevel) -> bool {
        let p1 = self.path_to_root(c1);
        let p2 = self.path_to_root(c2);
        p1.iter()
            .any(|&n| self.nodes[n].level == level && p2.contains(&n))
    }

    /// The deepest shared cache level of two clients, or `None` if they
    /// share nothing but a dummy root.
    pub fn deepest_shared_level(&self, c1: usize, c2: usize) -> Option<CacheLevel> {
        let p2: Vec<NodeId> = self.path_to_root(c2);
        for &n in &self.path_to_root(c1) {
            if p2.contains(&n) && self.nodes[n].level != CacheLevel::DummyRoot {
                return Some(self.nodes[n].level);
            }
        }
        None
    }

    /// The levels of the clustering descent, root-first, each with the
    /// list of nodes at that level. The mapper's hierarchical algorithm
    /// iterates these from just below the root down to the client leaves.
    pub fn levels(&self) -> Vec<(CacheLevel, Vec<NodeId>)> {
        let mut out: Vec<(CacheLevel, Vec<NodeId>)> = Vec::new();
        let mut frontier = vec![self.root];
        loop {
            let level = self.nodes[frontier[0]].level;
            out.push((level, frontier.clone()));
            let next: Vec<NodeId> = frontier
                .iter()
                .flat_map(|&n| self.nodes[n].children.iter().copied())
                .collect();
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure7_tree() -> HierarchyTree {
        // 4 clients, 2 I/O nodes, 1 storage node — Figure 7.
        HierarchyTree::from_config(&PlatformConfig::tiny()).unwrap()
    }

    fn paper_tree() -> HierarchyTree {
        HierarchyTree::from_config(&PlatformConfig::paper_default()).unwrap()
    }

    #[test]
    fn figure7_structure() {
        let t = figure7_tree();
        assert_eq!(t.num_clients(), 4);
        // Single storage node is the root (no dummy).
        assert_eq!(t.node(t.root()).level, CacheLevel::Storage);
        assert_eq!(t.io_of_client(0), 0);
        assert_eq!(t.io_of_client(1), 0);
        assert_eq!(t.io_of_client(2), 1);
        assert_eq!(t.io_of_client(3), 1);
        assert_eq!(t.storage_of_client(3), 0);
    }

    #[test]
    fn figure1_affinity() {
        // Paper default: each L2 shared by 2 clients, each L3 by 4.
        let t = paper_tree();
        assert!(t.have_affinity_at(0, 1, CacheLevel::Io));
        assert!(!t.have_affinity_at(0, 2, CacheLevel::Io));
        assert!(t.have_affinity_at(0, 3, CacheLevel::Storage));
        assert!(!t.have_affinity_at(0, 4, CacheLevel::Storage));
        assert_eq!(t.deepest_shared_level(0, 1), Some(CacheLevel::Io));
        assert_eq!(t.deepest_shared_level(0, 2), Some(CacheLevel::Storage));
        assert_eq!(t.deepest_shared_level(0, 63), None);
        assert_eq!(t.deepest_shared_level(5, 5), Some(CacheLevel::Client));
    }

    #[test]
    fn cache_index_addresses_per_level_policies() {
        use crate::config::PolicyKind;
        let cfg = PlatformConfig::tiny().with_level_policies(
            PolicyKind::Slru,
            PolicyKind::Lfuda,
            PolicyKind::Gdsf,
        );
        let t = HierarchyTree::from_config(&cfg).unwrap();
        for node in t.nodes() {
            let policy = node.level.cache_index().map(|i| cfg.policies[i]);
            match node.level {
                CacheLevel::Client => assert_eq!(policy, Some(PolicyKind::Slru)),
                CacheLevel::Io => assert_eq!(policy, Some(PolicyKind::Lfuda)),
                CacheLevel::Storage => assert_eq!(policy, Some(PolicyKind::Gdsf)),
                CacheLevel::DummyRoot => assert_eq!(policy, None),
            }
        }
    }

    #[test]
    fn dummy_root_added_for_multiple_storage_nodes() {
        let t = paper_tree();
        assert_eq!(t.node(t.root()).level, CacheLevel::DummyRoot);
        assert_eq!(t.node(t.root()).children.len(), 16);
    }

    #[test]
    fn clients_under_nodes() {
        let t = figure7_tree();
        assert_eq!(t.clients_under(t.io_node(0)), vec![0, 1]);
        assert_eq!(t.clients_under(t.io_node(1)), vec![2, 3]);
        assert_eq!(t.clients_under(t.root()), vec![0, 1, 2, 3]);
        assert_eq!(t.clients_under(t.client_leaf(2)), vec![2]);
    }

    #[test]
    fn levels_descend_root_to_clients() {
        let t = figure7_tree();
        let levels = t.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].0, CacheLevel::Storage);
        assert_eq!(levels[1].0, CacheLevel::Io);
        assert_eq!(levels[1].1.len(), 2);
        assert_eq!(levels[2].0, CacheLevel::Client);
        assert_eq!(levels[2].1.len(), 4);
    }

    #[test]
    fn levels_with_dummy_root() {
        let t = paper_tree();
        let levels = t.levels();
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[0].0, CacheLevel::DummyRoot);
        assert_eq!(levels[3].1.len(), 64);
    }

    #[test]
    fn path_to_root_lengths() {
        let t = paper_tree();
        assert_eq!(t.path_to_root(17).len(), 4); // client, io, storage, dummy
        let t2 = figure7_tree();
        assert_eq!(t2.path_to_root(0).len(), 3);
    }

    #[test]
    fn contiguous_partitioning() {
        let t = paper_tree();
        // Client 10 → I/O node 5 → storage node 2.
        assert_eq!(t.io_of_client(10), 5);
        assert_eq!(t.storage_of_client(10), 2);
        assert_eq!(t.clients_under(t.storage_node(2)), vec![8, 9, 10, 11]);
    }

    #[test]
    fn io_siblings_share_the_storage_parent() {
        let t = paper_tree();
        // 32 I/O nodes over 16 storage nodes → pairs {0,1}, {2,3}, …
        assert_eq!(t.io_siblings(0), vec![1]);
        assert_eq!(t.io_siblings(1), vec![0]);
        assert_eq!(t.io_siblings(5), vec![4]);
        let t2 = figure7_tree(); // 2 I/O nodes under 1 storage node
        assert_eq!(t2.io_siblings(0), vec![1]);
        assert_eq!(t2.storage_of_io(1), 0);
    }

    #[test]
    fn prune_removes_failed_subtrees_and_maps_survivors() {
        let t = figure7_tree();
        // Clients 0 and 1 fail → I/O node 0 loses all leaves and is
        // pruned; survivors 2, 3 renumber to 0, 1.
        let (pruned, map) = t.prune_clients(&[0, 1]).unwrap();
        assert_eq!(pruned.num_clients(), 2);
        assert_eq!(map, vec![2, 3]);
        assert_eq!(pruned.io_of_client(0), 0); // old io 1, renumbered
        assert_eq!(pruned.clients_under(pruned.root()), vec![0, 1]);
        assert_eq!(pruned.levels().len(), 3);
    }

    #[test]
    fn prune_keeps_partial_subtrees() {
        let t = figure7_tree();
        let (pruned, map) = t.prune_clients(&[1]).unwrap();
        assert_eq!(map, vec![0, 2, 3]);
        // I/O node 0 survives with one client; io 1 keeps two.
        assert_eq!(pruned.io_of_client(0), 0);
        assert_eq!(pruned.io_of_client(1), 1);
        assert_eq!(pruned.io_of_client(2), 1);
        assert_eq!(pruned.deepest_shared_level(1, 2), Some(CacheLevel::Io));
    }

    #[test]
    fn prune_rejects_bad_inputs() {
        let t = figure7_tree();
        assert_eq!(
            t.prune_clients(&[7]),
            Err(PruneError::UnknownClient {
                client: 7,
                num_clients: 4
            })
        );
        assert_eq!(t.prune_clients(&[0, 1, 2, 3]), Err(PruneError::NoSurvivors));
    }

    #[test]
    fn prune_drops_empty_storage_nodes_and_dummy_root_logic_holds() {
        let t = paper_tree();
        // Fail every client except the four under storage node 0: the
        // pruned tree keeps the dummy root only if >1 storage node
        // survives — here exactly one survives, but the dummy root is
        // retained as the ancestor chain (still a valid tree).
        let failed: Vec<usize> = (4..64).collect();
        let (pruned, map) = t.prune_clients(&failed).unwrap();
        assert_eq!(pruned.num_clients(), 4);
        assert_eq!(map, vec![0, 1, 2, 3]);
        assert_eq!(pruned.storage_of_client(3), 0);
        assert_eq!(pruned.clients_under(pruned.root()), vec![0, 1, 2, 3]);
    }
}
