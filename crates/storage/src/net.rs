//! Network link model.
//!
//! The platform has two link layers: client ↔ I/O node and I/O node ↔
//! storage node (the latter is the 10 GigE link of the Blue Gene/P
//! description in Section 3). A chunk transfer costs a fixed per-hop
//! latency plus serialization at the link bandwidth; the simulator
//! serializes concurrent transfers on the same endpoint through the
//! engine's resource clocks.

use crate::config::PlatformConfig;

/// Which hop a transfer crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hop {
    /// Client node ↔ I/O node.
    ClientIo,
    /// I/O node ↔ storage node.
    IoStorage,
    /// Storage node ↔ storage node (peer forwarding when the tree-route
    /// storage node is not the striping owner of a chunk).
    StoragePeer,
}

/// Time in ns to move one control message (no payload) across a hop.
pub fn control_ns(_hop: Hop, cfg: &PlatformConfig) -> u64 {
    cfg.net_hop_ns
}

/// Time in ns to move one data chunk across a hop.
pub fn chunk_transfer_ns(hop: Hop, cfg: &PlatformConfig) -> u64 {
    match hop {
        Hop::ClientIo | Hop::IoStorage => cfg.net_chunk_ns(),
        // Peer forwarding shares the storage fabric; same cost model.
        Hop::StoragePeer => cfg.net_chunk_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_transfer_includes_serialization() {
        let cfg = PlatformConfig::paper_default();
        let t = chunk_transfer_ns(Hop::ClientIo, &cfg);
        assert!(t > cfg.net_hop_ns);
        assert_eq!(t, cfg.net_chunk_ns());
    }

    #[test]
    fn control_message_is_latency_only() {
        let cfg = PlatformConfig::paper_default();
        assert_eq!(control_ns(Hop::IoStorage, &cfg), cfg.net_hop_ns);
    }
}
