//! Access-trace capture and reuse-distance analysis.
//!
//! The engine can record every chunk access with the level that served
//! it. Traces feed two consumers:
//!
//! * **calibration** — LRU stack-distance (reuse-distance) profiles
//!   explain *why* a level's miss rate is what it is: an access hits in
//!   a cache of capacity `C` iff its reuse distance is `< C`, so the
//!   profile directly predicts miss rates across capacities (the
//!   Figure 13 axis) without re-simulation;
//! * **debugging** — per-client traces make mapping pathologies (lost
//!   streaming, scattered families) visible.

use crate::cache::Chunk;
use cachemap_util::FxHashMap;

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// Client-local cache hit.
    L1,
    /// I/O-node cache hit.
    L2,
    /// Storage-node cache hit.
    L3,
    /// Fetched from disk.
    Disk,
}

/// One recorded chunk access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated start time of the access, ns.
    pub time_ns: u64,
    /// Issuing client.
    pub client: usize,
    /// Global chunk id.
    pub chunk: Chunk,
    /// Write access?
    pub write: bool,
    /// Level that supplied the data.
    pub served_by: ServedBy,
}

/// A full run trace (in global simulated-time order).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events ordered by issue time.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one client, in order.
    pub fn client(&self, client: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.client == client)
    }

    /// How many accesses each level served.
    pub fn served_histogram(&self) -> FxHashMap<ServedBy, u64> {
        let mut h = FxHashMap::default();
        for e in &self.events {
            *h.entry(e.served_by).or_insert(0) += 1;
        }
        h
    }

    /// Reuse-distance profile of the interleaved global chunk stream
    /// (what a single shared cache of any capacity would see).
    pub fn global_reuse_profile(&self) -> ReuseProfile {
        ReuseProfile::from_chunks(self.events.iter().map(|e| e.chunk))
    }

    /// Reuse-distance profile of one client's private stream (what its
    /// L1 sees).
    pub fn client_reuse_profile(&self, client: usize) -> ReuseProfile {
        ReuseProfile::from_chunks(self.client(client).map(|e| e.chunk))
    }
}

/// An LRU stack-distance histogram.
///
/// `histogram[d]` counts accesses whose reuse distance (number of
/// distinct chunks touched since the previous access to the same chunk)
/// is `d`; cold first-touches are counted separately. For an LRU cache
/// of capacity `C`, the hit count is exactly
/// `Σ_{d < C} histogram[d]` — the classical Mattson stack analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseProfile {
    /// Count per exact reuse distance.
    pub histogram: Vec<u64>,
    /// First-touch (compulsory) accesses.
    pub cold: u64,
    /// Total accesses analyzed.
    pub total: u64,
}

impl ReuseProfile {
    /// Computes the profile of a chunk-id stream with a Mattson LRU
    /// stack (`O(n·u)` with `u` distinct chunks — fine at harness scale).
    pub fn from_chunks<I: IntoIterator<Item = Chunk>>(stream: I) -> Self {
        let mut stack: Vec<Chunk> = Vec::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        let mut total = 0u64;
        for chunk in stream {
            total += 1;
            match stack.iter().rposition(|&c| c == chunk) {
                Some(pos) => {
                    let depth = stack.len() - 1 - pos;
                    if histogram.len() <= depth {
                        histogram.resize(depth + 1, 0);
                    }
                    histogram[depth] += 1;
                    stack.remove(pos);
                }
                None => cold += 1,
            }
            stack.push(chunk);
        }
        ReuseProfile {
            histogram,
            cold,
            total,
        }
    }

    /// Predicted hit count for an LRU cache of `capacity` chunks.
    pub fn hits_at_capacity(&self, capacity: usize) -> u64 {
        self.histogram.iter().take(capacity).sum()
    }

    /// Predicted miss rate for an LRU cache of `capacity` chunks.
    pub fn miss_rate_at_capacity(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.hits_at_capacity(capacity) as f64 / self.total as f64
    }

    /// Mean finite reuse distance (ignoring cold misses), or `None` if
    /// nothing was reused.
    pub fn mean_distance(&self) -> Option<f64> {
        let reused: u64 = self.histogram.iter().sum();
        if reused == 0 {
            return None;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        Some(weighted as f64 / reused as f64)
    }

    /// Merges another profile (histograms summed).
    pub fn merge(&mut self, other: &ReuseProfile) {
        if self.histogram.len() < other.histogram.len() {
            self.histogram.resize(other.histogram.len(), 0);
        }
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += b;
        }
        self.cold += other.cold;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_profile_of_simple_stream() {
        // Stream: a b a b c a — distances: a:1 (b between), b:1, a:2 (b,c).
        let p = ReuseProfile::from_chunks([0usize, 1, 0, 1, 2, 0]);
        assert_eq!(p.total, 6);
        assert_eq!(p.cold, 3);
        assert_eq!(p.histogram, vec![0, 2, 1]);
    }

    #[test]
    fn hits_predict_lru_exactly() {
        // Verify Mattson's identity against a real LRU for a pseudo
        // stream and several capacities.
        let stream: Vec<usize> = (0..500).map(|i| (i * 7 + i / 13) % 40).collect();
        let profile = ReuseProfile::from_chunks(stream.iter().copied());
        for cap in [1usize, 2, 4, 8, 16, 64] {
            let mut lru = crate::cache::LruCache::new(cap);
            use crate::cache::ChunkCache;
            for &c in &stream {
                if !lru.access(c, false) {
                    lru.insert(c, false);
                }
            }
            assert_eq!(
                profile.hits_at_capacity(cap),
                lru.stats().hits,
                "capacity {cap}"
            );
        }
    }

    #[test]
    fn sequential_stream_never_reuses() {
        let p = ReuseProfile::from_chunks(0usize..100);
        assert_eq!(p.cold, 100);
        assert!(p.histogram.is_empty());
        assert_eq!(p.mean_distance(), None);
        assert!((p.miss_rate_at_capacity(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_loop_has_distance_footprint_minus_one() {
        // Cycling over 4 chunks: after warmup every access has distance 3.
        let stream: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let p = ReuseProfile::from_chunks(stream);
        assert_eq!(p.cold, 4);
        assert_eq!(p.histogram[3], 36);
        assert_eq!(p.hits_at_capacity(4), 36);
        assert_eq!(p.hits_at_capacity(3), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ReuseProfile::from_chunks([0usize, 0]);
        let b = ReuseProfile::from_chunks([1usize, 2, 1]);
        a.merge(&b);
        assert_eq!(a.total, 5);
        assert_eq!(a.cold, 3);
        assert_eq!(a.histogram[0], 1);
        assert_eq!(a.histogram[1], 1);
    }
}
