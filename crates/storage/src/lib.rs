//! Multi-level storage cache hierarchy simulator.
//!
//! The HPDC'10 paper evaluates its mapping scheme on a real cluster
//! (64 client nodes, 32 I/O nodes, 16 storage nodes, MPI-IO over PVFS,
//! LRU storage caches at every layer — Table 1). This crate is the
//! simulated substitute for that platform:
//!
//! * [`config`] — the Table 1 platform parameters, with a scaling knob so
//!   a several-hundred-GB experiment shrinks to seconds while preserving
//!   cache:data ratios;
//! * [`topology`] — the storage cache hierarchy tree of Figure 1/Section 4.3
//!   (client L1 → I/O node L2 → storage node L3, dummy root when there are
//!   multiple storage nodes), with the affinity queries the mapper needs;
//! * [`cache`] — chunk-granularity caches with pluggable replacement
//!   (LRU as in the paper, FIFO/LFU for ablations), write-allocate and
//!   write-back dirty eviction;
//! * [`disk`] — seek + rotational-delay + transfer disk model with
//!   sequential-access detection, PVFS-style striping across storage
//!   nodes;
//! * [`net`] — per-hop link latency/bandwidth between layers;
//! * [`engine`] — a deterministic discrete-event engine that interleaves
//!   the per-client operation streams in global time order, modelling
//!   contention at shared caches and disks;
//! * [`trace`] — optional access-trace capture and Mattson
//!   reuse-distance analysis (drives the calibration discussion in
//!   EXPERIMENTS.md);
//! * [`faults`] — a serializable fault-injection plan (node crashes,
//!   disk/cache degradation, seeded transient errors) applied inside the
//!   engine's global clock so degraded runs stay reproducible;
//! * [`l2store`] — a crash-durable, append-only fingerprint→bytes store
//!   with per-record checksums, torn-tail-tolerant recovery, TTL, and
//!   durable (tombstoned) invalidation — the mapping service's disk L2;
//! * [`sim`] — the top-level [`sim::Simulator`] producing a
//!   [`sim::SimReport`] with per-level hit/miss statistics, I/O latency,
//!   execution time — exactly the three result types Section 5.1
//!   reports — plus the degraded-mode counters.
//! * [`supervisor`] — the storage-side half of the online resilience
//!   layer: epoch options, checkpoints, and a failure detector that
//!   infers crashes/degradation from the recorder's per-node series and
//!   client-side distress events, never from the fault plan.
//!
//! Simulated time is integer **nanoseconds** (`u64`) for reproducibility.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod disk;
pub mod engine;
pub mod faults;
pub mod l2store;
pub mod net;
pub mod sim;
pub mod supervisor;
pub mod topology;
pub mod trace;
pub mod wire;

pub use config::{ConfigError, PlatformConfig, PolicyKind};
pub use engine::{
    CacheSnapshot, ClientOp, EngineError, EvictionTally, MappedProgram, PolicyStats, RequestPolicy,
};
pub use faults::{
    DegradeLevel, FaultEvent, FaultPlan, FaultPlanError, FaultStats, TransientFaults,
};
pub use l2store::{L2Config, L2Store, RecoveryStats};
pub use sim::{SimError, SimReport, Simulator};
pub use supervisor::{Checkpoint, Detection, DetectorConfig, EpochOptions, Verdict};
pub use topology::{CacheLevel, HierarchyTree, NodeId, PruneError};
