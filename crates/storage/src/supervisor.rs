//! Storage-side half of the online resilience supervisor.
//!
//! The supervisor (whose epoch loop lives in the mapping crate, next to
//! the clustering code it re-invokes) runs a program as a sequence of
//! **epochs**: each epoch is one engine run over the not-yet-executed
//! slice of every client's work, started at the clients' carried-over
//! clocks so absolute simulated time stays continuous. At each epoch
//! boundary it snapshots a [`Checkpoint`] and feeds the epoch's
//! [`EngineObs`] into [`detect`], which infers node failures **from
//! engine signals only** — per-node hit/miss series going silent plus
//! client-side distress events (failovers, missed deadlines). It never
//! reads the [`crate::faults::FaultPlan`]: the plan is the experiment's
//! ground truth, not an input to detection.
//!
//! Epoch boundaries have checkpoint-flush semantics: all surviving
//! dirty lines are considered written back at the boundary, and dirty
//! lines lost to a crash are replayed from storage on first use (the
//! engine re-fetches them on demand and counts them in
//! `FaultStats::lost_dirty_chunks`). Clean residency is *not* wiped:
//! [`crate::Simulator::run_epoch`] returns a
//! [`crate::engine::CacheSnapshot`] of the (now clean) lines left in
//! every cache, and the supervisor feeds it back through
//! [`EpochOptions::resume_caches`] so the next epoch starts warm.

use crate::engine::{CacheSnapshot, RequestPolicy};
use crate::topology::HierarchyTree;
use cachemap_obs::{EngineObs, Level};

/// Per-epoch engine options handed to [`crate::Simulator::run_epoch`].
#[derive(Debug, Clone, Default)]
pub struct EpochOptions {
    /// Request-level robustness policy for the epoch (disabled = off).
    pub policy: RequestPolicy,
    /// Per-client starting clocks carried over from the previous epoch
    /// (`None` starts everyone at zero — the first epoch).
    pub start_clocks: Option<Vec<u64>>,
    /// Clean cache residency carried over from the previous epoch's
    /// returned snapshot (`None` starts all caches cold — the first
    /// epoch). Crash events re-fire at the epoch start, so seeded state
    /// on already-dead nodes is drained before it can serve a hit.
    pub resume_caches: Option<CacheSnapshot>,
}

/// Progress snapshot taken at an epoch boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Simulated time of the boundary (latest client clock).
    pub at_ns: u64,
    /// Chunk accesses completed in this epoch.
    pub completed_accesses: u64,
    /// Dirty-line manifest: chunks written during the epoch (sorted,
    /// deduplicated). At the boundary these count as flushed; a crash
    /// inside the epoch loses the unflushed subset, which the engine
    /// replays from storage on first re-use.
    pub dirty_manifest: Vec<u64>,
    /// Dirty lines lost to crashes during this epoch.
    pub lost_dirty_chunks: u64,
}

/// What [`detect`] concluded about one I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The node's cache series went silent while its home clients kept
    /// raising failovers: the node is considered crashed.
    Down,
    /// The node still serves requests but its mean queue wait exceeds
    /// the sustained-degradation threshold.
    Degraded,
}

/// One detection produced from an epoch's observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// The suspected I/O node.
    pub io: usize,
    /// Crash or sustained degradation.
    pub verdict: Verdict,
    /// When the supervisor reached the conclusion — the epoch boundary,
    /// since that is when it inspects the series.
    pub detected_at_ns: u64,
    /// Earliest distress signal (failover/deadline event) that fed the
    /// verdict, ns.
    pub first_evidence_ns: u64,
    /// Distress events attributed to the node within the epoch.
    pub distress_events: u64,
}

/// Detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Minimum distress events (failover or missed-deadline, raised by
    /// the node's home clients) before a crash verdict is considered.
    pub min_distress_events: u64,
    /// Mean L2 queue wait per access above which a node counts as
    /// sustainedly degraded, ns.
    pub degraded_queue_ns: u64,
    /// Minimum L2 accesses in the epoch before a degradation verdict
    /// (guards against noisy near-idle series).
    pub min_accesses: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_distress_events: 3,
            degraded_queue_ns: 100_000,
            min_accesses: 16,
        }
    }
}

/// Infers I/O-node failures from one epoch's observations.
///
/// A node is declared [`Verdict::Down`] when (a) at least
/// `min_distress_events` failover/deadline events were raised by
/// clients whose *home* I/O node it is, and (b) the node's own L2
/// hit/miss series has been silent since before the first such distress
/// signal — a crashed node records nothing, while a node that merely
/// lost its storage parent keeps serving L2 lookups and so stays loud.
/// A loud node with a mean queue wait above `degraded_queue_ns` is
/// [`Verdict::Degraded`].
///
/// `known_down[io]` suppresses re-detection of nodes already handled in
/// an earlier epoch; `window_end_ns` is the epoch boundary used as the
/// detection timestamp.
pub fn detect(
    obs: &EngineObs,
    tree: &HierarchyTree,
    window_end_ns: u64,
    known_down: &[bool],
    cfg: &DetectorConfig,
) -> Vec<Detection> {
    let num_io = known_down.len();
    // Distress evidence per home I/O node: count + earliest time.
    let mut distress = vec![(0u64, u64::MAX); num_io];
    for ev in &obs.events {
        if ev.kind != "failover" && ev.kind != "deadline" {
            continue;
        }
        let client = ev.subject as usize;
        if client >= tree.num_clients() {
            continue;
        }
        let io = tree.io_of_client(client);
        if io < num_io {
            distress[io].0 += 1;
            distress[io].1 = distress[io].1.min(ev.t_ns);
        }
    }

    let mut out = Vec::new();
    for io in 0..num_io {
        if known_down[io] {
            continue;
        }
        let series = obs.nodes.get(&(Level::L2, io));
        let (count, first_t) = distress[io];
        if count >= cfg.min_distress_events {
            // Last simulated time the node itself recorded any activity.
            let last_active_ns = series
                .into_iter()
                .flatten()
                .filter(|(_, s)| s.hits + s.misses > 0)
                .map(|(&b, _)| (b + 1) * obs.bucket_ns)
                .max()
                .unwrap_or(0);
            if last_active_ns <= first_t {
                out.push(Detection {
                    io,
                    verdict: Verdict::Down,
                    detected_at_ns: window_end_ns,
                    first_evidence_ns: first_t,
                    distress_events: count,
                });
                continue;
            }
        }
        if let Some(series) = series {
            let accesses: u64 = series.values().map(|s| s.hits + s.misses).sum();
            let queue_ns: u64 = series.values().map(|s| s.queue_ns).sum();
            if accesses >= cfg.min_accesses && queue_ns / accesses > cfg.degraded_queue_ns {
                out.push(Detection {
                    io,
                    verdict: Verdict::Degraded,
                    detected_at_ns: window_end_ns,
                    first_evidence_ns: series
                        .iter()
                        .find(|(_, s)| s.queue_ns > 0)
                        .map(|(&b, _)| b * obs.bucket_ns)
                        .unwrap_or(window_end_ns),
                    distress_events: count,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use crate::engine::{ClientOp, MappedProgram};
    use crate::faults::{FaultEvent, FaultPlan};
    use crate::sim::Simulator;
    use cachemap_obs::Recorder;

    fn tiny_sim(plan: Option<FaultPlan>) -> Simulator {
        let sim = Simulator::new(PlatformConfig::tiny()).unwrap();
        match plan {
            Some(p) => sim.with_fault_plan(p).unwrap(),
            None => sim,
        }
    }

    fn chatty_program(chunks: usize) -> MappedProgram {
        let mut prog = MappedProgram::new(4);
        for c in 0..4 {
            prog.per_client[c] = (0..chunks)
                .map(|i| ClientOp::Access {
                    chunk: i * 4 + c,
                    write: false,
                })
                .collect();
        }
        prog
    }

    #[test]
    fn clean_run_produces_no_detections() {
        let sim = tiny_sim(None);
        let prog = chatty_program(32);
        let mut rec = Recorder::enabled(10_000);
        let (rep, _) = sim
            .run_epoch(&prog, &mut rec, &EpochOptions::default())
            .unwrap();
        let obs = rec.finish().unwrap();
        let found = detect(
            &obs,
            sim.tree(),
            rep.exec_time_ns,
            &[false, false],
            &DetectorConfig::default(),
        );
        assert!(found.is_empty(), "clean run must not trigger: {found:?}");
    }

    #[test]
    fn crashed_io_node_is_detected_without_reading_the_plan() {
        let plan = FaultPlan::new().with_event(FaultEvent::IoNodeCrash {
            io: 0,
            at_ns: 200_000,
        });
        let sim = tiny_sim(Some(plan));
        let prog = chatty_program(64);
        let mut rec = Recorder::enabled(10_000);
        let (rep, _) = sim
            .run_epoch(&prog, &mut rec, &EpochOptions::default())
            .unwrap();
        assert!(rep.faults.failovers > 0, "crash must cause failovers");
        let obs = rec.finish().unwrap();
        let found = detect(
            &obs,
            sim.tree(),
            rep.exec_time_ns,
            &[false, false],
            &DetectorConfig::default(),
        );
        assert_eq!(found.len(), 1, "exactly the crashed node: {found:?}");
        assert_eq!(found[0].io, 0);
        assert_eq!(found[0].verdict, Verdict::Down);
        assert!(found[0].detected_at_ns >= 200_000);
        assert!(found[0].first_evidence_ns >= 200_000);
    }

    #[test]
    fn storage_crash_does_not_frame_the_io_node() {
        // With the storage node dead the I/O caches keep serving; the
        // failover events alone must not convict a loud node.
        let plan = FaultPlan::new().with_event(FaultEvent::StorageNodeCrash {
            storage: 0,
            at_ns: 0,
        });
        let sim = tiny_sim(Some(plan));
        let prog = chatty_program(64);
        let mut rec = Recorder::enabled(10_000);
        let (rep, _) = sim
            .run_epoch(&prog, &mut rec, &EpochOptions::default())
            .unwrap();
        assert!(rep.faults.failovers > 0);
        let obs = rec.finish().unwrap();
        let found = detect(
            &obs,
            sim.tree(),
            rep.exec_time_ns,
            &[false, false],
            &DetectorConfig::default(),
        );
        assert!(
            found.iter().all(|d| d.verdict != Verdict::Down),
            "no I/O node may be declared down: {found:?}"
        );
    }

    #[test]
    fn known_down_nodes_are_not_redetected() {
        let plan = FaultPlan::new().with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: 0 });
        let sim = tiny_sim(Some(plan));
        let prog = chatty_program(64);
        let mut rec = Recorder::enabled(10_000);
        let (rep, _) = sim
            .run_epoch(&prog, &mut rec, &EpochOptions::default())
            .unwrap();
        let obs = rec.finish().unwrap();
        let found = detect(
            &obs,
            sim.tree(),
            rep.exec_time_ns,
            &[true, false],
            &DetectorConfig::default(),
        );
        assert!(found.iter().all(|d| d.io != 0), "{found:?}");
    }

    #[test]
    fn epoch_start_clocks_shift_absolute_time() {
        let sim = tiny_sim(None);
        let prog = chatty_program(8);
        let mut rec = Recorder::enabled(10_000);
        let (base, _) = sim
            .run_epoch(&prog, &mut rec, &EpochOptions::default())
            .unwrap();
        let mut rec2 = Recorder::enabled(10_000);
        let (shifted, _) = sim
            .run_epoch(
                &prog,
                &mut rec2,
                &EpochOptions {
                    policy: RequestPolicy::default(),
                    start_clocks: Some(vec![1_000_000; 4]),
                    resume_caches: None,
                },
            )
            .unwrap();
        for c in 0..4 {
            assert_eq!(
                shifted.per_client_finish_ns[c],
                base.per_client_finish_ns[c] + 1_000_000,
                "client {c}: a uniform clock shift must translate finish times"
            );
        }
    }
}
